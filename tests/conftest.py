"""Shared fixtures for the test suite.

The suite honors two environment knobs the CI matrix sweeps:

* ``REPRO_WORKERS`` — the default parallelism degree of every manager
  (``resolve_workers``), so ``workers=4`` runs the whole subset through
  the encode/decode thread pools;
* ``REPRO_BACKEND`` — the default storage backend spec of every
  manager (``resolve_backend``), so ``object`` runs the same subset
  against the S3-style object path (ranged GETs, multipart staging);
* ``REPRO_FUSE`` — the default fused-chain-decode setting of every
  manager (``resolve_fuse``), so ``0`` runs the whole subset down the
  stepwise delta-decode path and ``1`` (the default) down the fused
  single-apply path;
* ``REPRO_ENCODE_PLANNER`` — the default write-path planner setting of
  every manager (``resolve_planner``), so ``0`` runs the whole subset
  through the exhaustive two-pass ``choose_encoding`` and ``1`` (the
  default) through the single-pass encode planner.

All are validated once, up front: a matrix cell with a typo must fail
the whole session loudly, not silently test the serial/local path
under a parallel/object label.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.storage.backend import ensure_backend_spec
from repro.storage.pipeline import (
    resolve_fuse,
    resolve_planner,
    resolve_workers,
)


@pytest.fixture(scope="session", autouse=True)
def _validate_matrix_env() -> None:
    """Fail fast on a malformed ``REPRO_BACKEND`` / ``REPRO_WORKERS``
    / ``REPRO_FUSE`` / ``REPRO_ENCODE_PLANNER``."""
    spec = os.environ.get("REPRO_BACKEND")
    if spec:
        ensure_backend_spec(spec)
    resolve_workers(None)
    resolve_fuse(None)
    resolve_planner(None)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared across tests."""
    return np.random.default_rng(20120401)


@pytest.fixture
def smooth_field(rng: np.random.Generator) -> np.ndarray:
    """A smooth 2-D float field resembling the NOAA rasters."""
    x = np.linspace(0, 4 * np.pi, 64)
    y = np.linspace(0, 2 * np.pi, 48)
    base = np.sin(x)[None, :] * np.cos(y)[:, None]
    return (base * 100 + rng.normal(0, 0.1, size=(48, 64))).astype(np.float32)
