"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared across tests."""
    return np.random.default_rng(20120401)


@pytest.fixture
def smooth_field(rng: np.random.Generator) -> np.ndarray:
    """A smooth 2-D float field resembling the NOAA rasters."""
    x = np.linspace(0, 4 * np.pi, 64)
    y = np.linspace(0, 2 * np.pi, 48)
    base = np.sin(x)[None, :] * np.cos(y)[:, None]
    return (base * 100 + rng.normal(0, 0.1, size=(48, 64))).astype(np.float32)
