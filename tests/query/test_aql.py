"""Tests for the AQL parser and executor — the Appendix A walk-through."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    AQLExecutionError,
    AQLSyntaxError,
    ArrayNotFoundError,
)
from repro.query import Database, parse, tokenize
from repro.query.aql import (
    BranchStatement,
    CreateArrayStatement,
    LoadStatement,
    MergeStatement,
    SelectStatement,
    VersionsStatement,
)


@pytest.fixture
def db(tmp_path) -> Database:
    return Database(tmp_path / "db", chunk_bytes=4096)


def _example_versions():
    """The Appendix A example data: 3x3 integers, scaled per version."""
    base = np.arange(1, 10, dtype=np.int32).reshape(3, 3)
    return [base, base * 2, base * 3]


class TestTokenizer:
    def test_statement_tokens(self):
        tokens = tokenize("SELECT * FROM Example@2;")
        kinds = [(t.kind, t.text) for t in tokens]
        assert kinds == [("ident", "SELECT"), ("symbol", "*"),
                        ("ident", "FROM"), ("ident", "Example"),
                        ("symbol", "@"), ("number", "2"),
                        ("symbol", ";")]

    def test_string_literal(self):
        tokens = tokenize("LOAD A FROM 'file.dat'")
        assert tokens[-1].kind == "string"
        assert tokens[-1].text == "file.dat"

    def test_double_colon(self):
        tokens = tokenize("A::INTEGER")
        assert [t.text for t in tokens] == ["A", "::", "INTEGER"]

    def test_unexpected_character(self):
        with pytest.raises(AQLSyntaxError):
            tokenize("SELECT % FROM A")


class TestParser:
    def test_create_array(self):
        statement = parse("CREATE UPDATABLE ARRAY Example "
                          "( A::INTEGER ) [ I=0:2, J=0:2 ];")
        assert isinstance(statement, CreateArrayStatement)
        assert statement.name == "Example"
        assert statement.schema.shape == (3, 3)
        assert statement.schema.attributes[0].dtype == np.dtype(np.int32)

    def test_create_with_paper_extra_e_spelling(self):
        statement = parse("CREATE UPDATEABLE ARRAY X "
                          "( A::DOUBLE ) [ I=0:9 ];")
        assert statement.name == "X"

    def test_create_multi_attribute_multi_dim(self):
        statement = parse(
            "CREATE UPDATABLE ARRAY Big ( A::INTEGER, B::DOUBLE ) "
            "[ I=0:2, J=0:2, K=1:15, L=0:360 ];")
        assert len(statement.schema.attributes) == 2
        assert statement.schema.ndim == 4
        assert statement.schema.dimensions[2].lo == 1

    def test_load(self):
        statement = parse("LOAD Example FROM 'array_file.dat';")
        assert isinstance(statement, LoadStatement)
        assert statement.path == "array_file.dat"

    def test_versions(self):
        statement = parse("VERSIONS(Example);")
        assert isinstance(statement, VersionsStatement)
        assert statement.name == "Example"

    def test_select_by_id(self):
        statement = parse("SELECT * FROM Example@3;")
        assert isinstance(statement, SelectStatement)
        assert statement.spec.version == 3

    def test_select_by_date(self):
        statement = parse("SELECT * FROM Example@'1-5-2011';")
        assert statement.spec.date == "1-5-2011"

    def test_select_star_versions(self):
        statement = parse("SELECT * FROM Example@*;")
        assert statement.spec.all_versions

    def test_select_subsample(self):
        statement = parse(
            "SELECT * FROM SUBSAMPLE(Example@*, 0, 1, 1, 2, 2, 3);")
        assert statement.subsample == (0, 1, 1, 2, 2, 3)
        assert statement.spec.all_versions

    def test_branch(self):
        statement = parse("BRANCH(Example@2 NewBranch);")
        assert isinstance(statement, BranchStatement)
        assert statement.source.version == 2
        assert statement.new_name == "NewBranch"

    def test_merge(self):
        statement = parse("MERGE(A@3, B@1, Combined);")
        assert isinstance(statement, MergeStatement)
        assert [s.array for s in statement.parents] == ["A", "B"]
        assert statement.new_name == "Combined"

    def test_syntax_errors(self):
        bad = [
            "SELECT FROM Example@1;",
            "CREATE ARRAY X ( A::INTEGER ) [ I=0:2 ];",
            "CREATE UPDATABLE ARRAY X ( A:INTEGER ) [ I=0:2 ];",
            "SELECT * FROM Example;",
            "SELECT * FROM SUBSAMPLE(Example@*, 0, 1, 1);",
            "VERSIONS Example;",
            "LOAD Example FROM file.dat;",
            "EXPLAIN SELECT * FROM A@1;",
            "SELECT * FROM A@1 garbage",
        ]
        for statement in bad:
            with pytest.raises(AQLSyntaxError):
                parse(statement)


class TestAppendixAWalkthrough:
    """Execute the Appendix A session end to end."""

    def test_full_session(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY Example "
                   "( A::INTEGER ) [ I=0:2, J=0:2 ];")

        for index, contents in enumerate(_example_versions(), 1):
            path = tmp_path / "db" / f"v{index}.npy"
            np.save(path, contents)
            result = db.execute(f"LOAD Example FROM 'v{index}.npy';")
            assert result.value == index

        versions = db.execute("VERSIONS(Example);")
        assert versions.value == ["Example@1", "Example@2", "Example@3"]

        # SELECT * FROM Example@3 returns the tripled array.
        third = db.execute("SELECT * FROM Example@3;").value
        np.testing.assert_array_equal(third, _example_versions()[2])

        # SELECT * FROM Example@* stacks all versions on a new axis.
        stack = db.execute("SELECT * FROM Example@*;").value
        assert stack.shape == (3, 3, 3)
        np.testing.assert_array_equal(stack[1], _example_versions()[1])

        # The paper's SUBSAMPLE example: rows 0-1, cols 1-2, versions 2-3
        # (time indices 2..3 are 1-based in the paper's prose; our time
        # pair indexes the stacked axis zero-based, so 1..2).
        cube = db.execute(
            "SELECT * FROM SUBSAMPLE(Example@*, 0, 1, 1, 2, 1, 2);").value
        assert cube.shape == (2, 2, 2)
        expected = np.stack([v[0:2, 1:3] for v in _example_versions()[1:]])
        np.testing.assert_array_equal(cube, expected)

    def test_branching_session(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY Example "
                   "( A::INTEGER ) [ I=0:2, J=0:2 ];")
        for index, contents in enumerate(_example_versions(), 1):
            np.save(tmp_path / "db" / f"v{index}.npy", contents)
            db.execute(f"LOAD Example FROM 'v{index}.npy';")

        db.execute("BRANCH(Example@2 NewBranch);")
        branch_contents = db.execute("SELECT * FROM NewBranch@1;").value
        np.testing.assert_array_equal(branch_contents,
                                      _example_versions()[1])

        other = _example_versions()[0] + 100
        np.save(tmp_path / "db" / "other.npy", other)
        db.execute("LOAD NewBranch FROM 'other.npy';")
        assert db.execute("VERSIONS(NewBranch);").value == \
            ["NewBranch@1", "NewBranch@2"]
        # The trunk is untouched.
        assert db.execute("VERSIONS(Example);").value == \
            ["Example@1", "Example@2", "Example@3"]

    def test_merge_session(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY Example "
                   "( A::INTEGER ) [ I=0:2, J=0:2 ];")
        for index, contents in enumerate(_example_versions(), 1):
            np.save(tmp_path / "db" / f"v{index}.npy", contents)
            db.execute(f"LOAD Example FROM 'v{index}.npy';")
        db.execute("BRANCH(Example@1 Side);")
        db.execute("MERGE(Example@3, Side@1, Combined);")
        merged = db.execute("SELECT * FROM Combined@*;").value
        assert merged.shape == (2, 3, 3)
        np.testing.assert_array_equal(merged[0], _example_versions()[2])
        np.testing.assert_array_equal(merged[1], _example_versions()[0])

    def test_select_by_date(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY Example "
                   "( A::INTEGER ) [ I=0:2, J=0:2 ];")
        from repro.query.processor import parse_date

        first, second = _example_versions()[:2]
        db.manager.insert("Example", first,
                          timestamp=parse_date("1-4-2011 10:00"))
        db.manager.insert("Example", second,
                          timestamp=parse_date("1-5-2011 10:00"))
        on_the_fifth = db.execute(
            "SELECT * FROM Example@'1-5-2011';").value
        np.testing.assert_array_equal(on_the_fifth, second)
        on_the_fourth = db.execute(
            "SELECT * FROM Example@'1-4-2011';").value
        np.testing.assert_array_equal(on_the_fourth, first)

    def test_drop_and_delete_version(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY Example "
                   "( A::INTEGER ) [ I=0:2, J=0:2 ];")
        for index, contents in enumerate(_example_versions(), 1):
            np.save(tmp_path / "db" / f"v{index}.npy", contents)
            db.execute(f"LOAD Example FROM 'v{index}.npy';")
        db.execute("DELETE VERSION Example@2;")
        assert db.execute("VERSIONS(Example);").value == \
            ["Example@1", "Example@3"]
        np.testing.assert_array_equal(
            db.execute("SELECT * FROM Example@3;").value,
            _example_versions()[2])
        db.execute("DROP ARRAY Example;")
        with pytest.raises(ArrayNotFoundError):
            db.execute("VERSIONS(Example);")


class TestLoadErrors:
    def test_missing_file(self, db):
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) [ I=0:2 ];")
        with pytest.raises(AQLExecutionError):
            db.execute("LOAD A FROM 'nope.npy';")

    def test_raw_binary_load(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) [ I=0:3 ];")
        data = np.array([5, 6, 7, 8], dtype=np.int32)
        (tmp_path / "db" / "raw.dat").write_bytes(data.tobytes())
        db.execute("LOAD A FROM 'raw.dat';")
        np.testing.assert_array_equal(
            db.execute("SELECT * FROM A@1;").value, data)

    def test_raw_binary_wrong_size(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) [ I=0:3 ];")
        (tmp_path / "db" / "raw.dat").write_bytes(b"12")
        with pytest.raises(AQLExecutionError):
            db.execute("LOAD A FROM 'raw.dat';")


class TestSubsampleValidation:
    def test_wrong_pair_count(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                   "[ I=0:2, J=0:2 ];")
        np.save(tmp_path / "db" / "x.npy",
                np.zeros((3, 3), dtype=np.int32))
        db.execute("LOAD A FROM 'x.npy';")
        with pytest.raises(AQLExecutionError):
            db.execute("SELECT * FROM SUBSAMPLE(A@*, 0, 1);")

    def test_time_range_out_of_bounds(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                   "[ I=0:2, J=0:2 ];")
        np.save(tmp_path / "db" / "x.npy",
                np.zeros((3, 3), dtype=np.int32))
        db.execute("LOAD A FROM 'x.npy';")
        with pytest.raises(AQLExecutionError):
            db.execute("SELECT * FROM SUBSAMPLE(A@*, 0, 1, 0, 1, 5, 9);")

    def test_subsample_single_version(self, db, tmp_path):
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                   "[ I=0:2, J=0:2 ];")
        data = np.arange(9, dtype=np.int32).reshape(3, 3)
        np.save(tmp_path / "db" / "x.npy", data)
        db.execute("LOAD A FROM 'x.npy';")
        window = db.execute(
            "SELECT * FROM SUBSAMPLE(A@1, 1, 2, 0, 1);").value
        np.testing.assert_array_equal(window, data[1:3, 0:2])
