"""Tests for version labels — Appendix A's "under development" feature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import VersionNotFoundError
from repro.query import Database


@pytest.fixture
def db(tmp_path) -> Database:
    db = Database(tmp_path / "db", chunk_bytes=4096)
    db.execute("CREATE UPDATABLE ARRAY Example "
               "( A::INTEGER ) [ I=0:2, J=0:2 ];")
    base = np.arange(9, dtype=np.int32).reshape(3, 3)
    for multiplier in (1, 2, 3):
        db.insert("Example", base * multiplier)
    return db


class TestManagerLabels:
    def test_set_and_resolve(self, db):
        db.manager.label_version("Example", 2, "calibrated")
        assert db.manager.version_for_label("Example", "calibrated") == 2

    def test_label_moves_on_reassign(self, db):
        db.manager.label_version("Example", 1, "best")
        db.manager.label_version("Example", 3, "best")
        assert db.manager.version_for_label("Example", "best") == 3

    def test_multiple_labels_one_version(self, db):
        db.manager.label_version("Example", 2, "calibrated")
        db.manager.label_version("Example", 2, "release")
        assert db.manager.labels("Example") == [("calibrated", 2),
                                                ("release", 2)]

    def test_unknown_label(self, db):
        with pytest.raises(VersionNotFoundError):
            db.manager.version_for_label("Example", "ghost")

    def test_label_requires_existing_version(self, db):
        with pytest.raises(VersionNotFoundError):
            db.manager.label_version("Example", 99, "nope")

    def test_delete_version_drops_labels(self, db):
        db.manager.label_version("Example", 2, "calibrated")
        db.manager.delete_version("Example", 2)
        with pytest.raises(VersionNotFoundError):
            db.manager.version_for_label("Example", "calibrated")


class TestAQLLabels:
    def test_label_statement_and_select(self, db):
        db.execute("LABEL(Example@2 calibrated);")
        out = db.execute("SELECT * FROM Example@calibrated;").value
        expected = 2 * np.arange(9, dtype=np.int32).reshape(3, 3)
        np.testing.assert_array_equal(out, expected)

    def test_label_via_date_spec_chain(self, db):
        # Labels compose with the other select machinery (SUBSAMPLE).
        db.execute("LABEL(Example@3 final);")
        window = db.execute(
            "SELECT * FROM SUBSAMPLE(Example@final, 0, 1, 0, 1);").value
        expected = (3 * np.arange(9, dtype=np.int32).reshape(3, 3))[0:2,
                                                                    0:2]
        np.testing.assert_array_equal(window, expected)

    def test_branch_from_label(self, db):
        db.execute("LABEL(Example@1 raw);")
        db.execute("BRANCH(Example@raw Rework);")
        out = db.execute("SELECT * FROM Rework@1;").value
        np.testing.assert_array_equal(
            out, np.arange(9, dtype=np.int32).reshape(3, 3))

    def test_select_unknown_label(self, db):
        with pytest.raises(VersionNotFoundError):
            db.execute("SELECT * FROM Example@ghost;")

    def test_facade_spec_string(self, db):
        db.manager.label_version("Example", 3, "final")
        out = db.select("Example@final")
        np.testing.assert_array_equal(
            out, 3 * np.arange(9, dtype=np.int32).reshape(3, 3))
