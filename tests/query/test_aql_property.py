"""Property tests: AQL rendering and parsing are inverse operations."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.query import parse
from repro.query.aql import CreateArrayStatement

_NAMES = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True)
_TYPES = st.sampled_from(["INTEGER", "DOUBLE", "FLOAT", "INT64",
                          "UINT8", "INT16"])


@st.composite
def schemas(draw):
    dim_count = draw(st.integers(1, 4))
    attr_count = draw(st.integers(1, 3))
    names = draw(st.lists(_NAMES, min_size=dim_count + attr_count,
                          max_size=dim_count + attr_count,
                          unique_by=lambda n: n.lower()))
    dims = []
    for index in range(dim_count):
        lo = draw(st.integers(-100, 100))
        hi = lo + draw(st.integers(0, 500))
        dims.append(Dimension(names[index], lo, hi))
    from repro.core.schema import dtype_for_aql_type

    attrs = [
        Attribute(names[dim_count + index],
                  dtype_for_aql_type(draw(_TYPES)))
        for index in range(attr_count)
    ]
    return ArraySchema(dimensions=tuple(dims), attributes=tuple(attrs))


@settings(max_examples=60, deadline=None)
@given(name=_NAMES, schema=schemas())
def test_create_statement_roundtrip(name, schema):
    """Render a schema to AQL, parse it back: identical schema."""
    statement = f"CREATE UPDATABLE ARRAY {name} {schema.to_aql()};"
    parsed = parse(statement)
    assert isinstance(parsed, CreateArrayStatement)
    assert parsed.name == name
    assert parsed.schema == schema


@settings(max_examples=40, deadline=None)
@given(name=_NAMES, version=st.integers(1, 10 ** 6))
def test_select_by_id_roundtrip(name, version):
    parsed = parse(f"SELECT * FROM {name}@{version};")
    assert parsed.spec.array == name
    assert parsed.spec.version == version


@settings(max_examples=40, deadline=None)
@given(name=_NAMES, label=_NAMES)
def test_select_by_label_roundtrip(name, label):
    parsed = parse(f"SELECT * FROM {name}@{label};")
    assert parsed.spec.array == name
    assert parsed.spec.label == label


@settings(max_examples=40, deadline=None)
@given(name=_NAMES,
       pairs=st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                      min_size=1, max_size=4))
def test_subsample_roundtrip(name, pairs):
    flat = ", ".join(f"{min(a, b)}, {max(a, b)}" for a, b in pairs)
    parsed = parse(f"SELECT * FROM SUBSAMPLE({name}@*, {flat});")
    assert parsed.spec.all_versions
    assert len(parsed.subsample) == 2 * len(pairs)
