"""Tests for the Database facade and spec-string parsing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import AQLSyntaxError
from repro.query import Database, spec_from_string


class TestSpecFromString:
    def test_by_id(self):
        spec = spec_from_string("Example@3")
        assert spec.array == "Example"
        assert spec.version == 3

    def test_all(self):
        assert spec_from_string("Example@*").all_versions

    def test_by_date(self):
        spec = spec_from_string("Example@'1-5-2011'")
        assert spec.date == "1-5-2011"

    def test_whitespace_tolerated(self):
        spec = spec_from_string("  Example @ 7 ")
        assert spec.array == "Example"
        assert spec.version == 7

    def test_missing_at(self):
        with pytest.raises(AQLSyntaxError):
            spec_from_string("Example")

    def test_label_spec(self):
        spec = spec_from_string("Example@calibrated")
        assert spec.label == "calibrated"

    def test_garbage_version(self):
        with pytest.raises(AQLSyntaxError):
            spec_from_string("Example@3.5%")


class TestDatabaseFacade:
    @pytest.fixture
    def db(self, tmp_path):
        db = Database(tmp_path / "db", chunk_bytes=4096)
        db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                   "[ I=0:3, J=0:3 ];")
        return db

    def test_insert_and_select_spec_string(self, db, rng):
        data = rng.integers(0, 99, (4, 4)).astype(np.int32)
        assert db.insert("A", data) == 1
        np.testing.assert_array_equal(db.select("A@1"), data)

    def test_select_with_window(self, db, rng):
        data = rng.integers(0, 99, (4, 4)).astype(np.int32)
        db.insert("A", data)
        out = db.select("A@1", window=((1, 1), (2, 2)))
        np.testing.assert_array_equal(out, data[1:3, 1:3])

    def test_versions_and_properties(self, db, rng):
        db.insert("A", rng.integers(0, 9, (4, 4)).astype(np.int32))
        db.insert("A", rng.integers(0, 9, (4, 4)).astype(np.int32))
        assert db.versions("A") == [1, 2]
        assert db.properties("A")["versions"] == 2

    def test_branch_via_facade(self, db, rng):
        data = rng.integers(0, 9, (4, 4)).astype(np.int32)
        db.insert("A", data)
        db.branch("A", 1, "B")
        np.testing.assert_array_equal(db.select("B@1"), data)

    def test_configuration_forwarded(self, tmp_path):
        db = Database(tmp_path / "cfg", compressor="lz",
                      delta_codec="hybrid+lz", delta_policy="auto",
                      placement="per-version")
        assert db.manager.compressor_name == "lz"
        assert db.manager.delta_codec_name == "hybrid+lz"
        assert db.manager.store.placement == "per-version"
        db.close()

    def test_context_manager_closes(self, tmp_path, rng):
        data = rng.integers(0, 9, (4, 4)).astype(np.int32)
        with Database(tmp_path / "ctx", chunk_bytes=4096) as db:
            db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                       "[ I=0:3, J=0:3 ];")
            db.insert("A", data)
            np.testing.assert_array_equal(db.select("A@1"), data)
        # The catalog connection is released; reopening sees the data.
        with Database(tmp_path / "ctx") as reopened:
            np.testing.assert_array_equal(reopened.select("A@1"), data)

    def test_cache_knobs_and_stats_exposed(self, tmp_path, rng):
        data = rng.integers(0, 9, (4, 4)).astype(np.int32)
        with Database(tmp_path / "cached", chunk_bytes=4096,
                      cache_chunks=8) as db:
            db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                       "[ I=0:3, J=0:3 ];")
            db.insert("A", data)
            db.select("A@1")
            before = db.stats.chunks_read
            db.select("A@1")
            assert db.stats.chunks_read == before  # cache absorbed it
            info = db.cache_info()
            assert info["capacity"] == 8
            assert info["hits"] > 0

    def test_memory_backend_leaves_no_files(self, tmp_path, rng):
        data = rng.integers(0, 9, (4, 4)).astype(np.int32)
        with Database(tmp_path / "mem", backend="memory") as db:
            db.execute("CREATE UPDATABLE ARRAY A ( V::INTEGER ) "
                       "[ I=0:3, J=0:3 ];")
            db.insert("A", data)
            np.testing.assert_array_equal(db.select("A@1"), data)
        assert not (tmp_path / "mem").exists()
