"""Tests for the query processor's select primitives (Section II-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import AQLExecutionError, VersionNotFoundError
from repro.core.schema import ArraySchema
from repro.query.processor import QueryProcessor, VersionSpec, parse_date
from repro.storage import VersionedStorageManager


@pytest.fixture
def loaded(tmp_path, rng):
    manager = VersionedStorageManager(tmp_path, chunk_bytes=4096)
    manager.create_array("A", ArraySchema.simple((6, 6), dtype=np.int32))
    versions = []
    for v in range(3):
        data = rng.integers(0, 100, (6, 6)).astype(np.int32)
        versions.append(data)
        manager.insert("A", data, timestamp=float(1000 + v))
    return QueryProcessor(manager), versions


class TestVersionSpec:
    def test_exactly_one_selector(self):
        with pytest.raises(AQLExecutionError):
            VersionSpec(array="A")
        with pytest.raises(AQLExecutionError):
            VersionSpec(array="A", version=1, all_versions=True)

    def test_valid_specs(self):
        assert VersionSpec(array="A", version=2).version == 2
        assert VersionSpec(array="A", all_versions=True).all_versions
        assert VersionSpec(array="A", date="1-1-2020").date == "1-1-2020"


class TestParseDate:
    def test_paper_format(self):
        stamp = parse_date("1-5-2011")
        # End-of-day semantics: later than any same-day insert.
        assert stamp > parse_date("1-5-2011 12:00")

    def test_with_time(self):
        assert parse_date("1-5-2011 10:30") < parse_date("1-5-2011 10:31")
        assert parse_date("1-5-2011 10:30:05") > \
            parse_date("1-5-2011 10:30")

    def test_invalid(self):
        with pytest.raises(AQLExecutionError):
            parse_date("2011/01/05")


class TestResolve:
    def test_by_id(self, loaded):
        processor, _ = loaded
        assert processor.resolve(VersionSpec(array="A", version=2)) == [2]

    def test_all(self, loaded):
        processor, _ = loaded
        spec = VersionSpec(array="A", all_versions=True)
        assert processor.resolve(spec) == [1, 2, 3]

    def test_empty_array(self, loaded, tmp_path):
        processor, _ = loaded
        processor.manager.create_array(
            "Empty", ArraySchema.simple((2, 2), dtype=np.int32))
        with pytest.raises(VersionNotFoundError):
            processor.resolve(VersionSpec(array="Empty",
                                          all_versions=True))


class TestSelectForms:
    def test_form1(self, loaded):
        processor, versions = loaded
        out = processor.select_version("A", 2)
        np.testing.assert_array_equal(out.single(), versions[1])

    def test_form2(self, loaded):
        processor, versions = loaded
        out = processor.select_window("A", 3, (1, 1), (4, 4))
        np.testing.assert_array_equal(out.single(), versions[2][1:5, 1:5])

    def test_form3(self, loaded):
        processor, versions = loaded
        out = processor.select_stack("A", [3, 1])  # ordered as given
        assert out.shape == (2, 6, 6)
        np.testing.assert_array_equal(out[0], versions[2])
        np.testing.assert_array_equal(out[1], versions[0])

    def test_form4(self, loaded):
        processor, versions = loaded
        out = processor.select_stack_window("A", [1, 2], (0, 0), (2, 2))
        assert out.shape == (2, 3, 3)
        np.testing.assert_array_equal(out[1], versions[1][0:3, 0:3])


class TestSpecDrivenSelect:
    def test_single_with_window(self, loaded):
        processor, versions = loaded
        out = processor.select(VersionSpec(array="A", version=1),
                               window=((0, 0), (1, 1)))
        np.testing.assert_array_equal(out, versions[0][0:2, 0:2])

    def test_all_with_time_range(self, loaded):
        processor, versions = loaded
        out = processor.select(VersionSpec(array="A", all_versions=True),
                               time_range=(1, 2))
        assert out.shape == (2, 6, 6)
        np.testing.assert_array_equal(out[0], versions[1])

    def test_time_range_validation(self, loaded):
        processor, _ = loaded
        with pytest.raises(AQLExecutionError):
            processor.select(VersionSpec(array="A", all_versions=True),
                             time_range=(0, 9))
