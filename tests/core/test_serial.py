"""Tests for the shared binary header format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serial
from repro.core.errors import CodecError


class TestArrayHeader:
    def test_roundtrip(self):
        header = serial.pack_array_header(np.dtype(np.float32), (3, 4, 5))
        dtype, shape, offset = serial.unpack_array_header(header)
        assert dtype == np.dtype(np.float32)
        assert shape == (3, 4, 5)
        assert offset == len(header)

    def test_scalar_shape(self):
        header = serial.pack_array_header(np.dtype(np.int8), ())
        dtype, shape, _ = serial.unpack_array_header(header)
        assert shape == ()

    def test_with_offset_and_trailer(self):
        header = serial.pack_array_header(np.dtype(np.int64), (7,))
        blob = b"xx" + header + b"payload"
        dtype, shape, offset = serial.unpack_array_header(blob, 2)
        assert shape == (7,)
        assert blob[offset:] == b"payload"

    def test_corrupt_header(self):
        with pytest.raises(CodecError):
            serial.unpack_array_header(b"\x05ab")
        with pytest.raises(CodecError):
            serial.unpack_array_header(b"")

    def test_too_many_dims_rejected(self):
        with pytest.raises(CodecError):
            serial.pack_array_header(np.dtype(np.int8), (1,) * 300)

    @settings(max_examples=50, deadline=None)
    @given(shape=st.lists(st.integers(0, 10 ** 6), max_size=8),
           dtype=st.sampled_from(["<i4", "<f8", "<u2", "<i8"]))
    def test_roundtrip_property(self, shape, dtype):
        header = serial.pack_array_header(np.dtype(dtype), tuple(shape))
        out_dtype, out_shape, _ = serial.unpack_array_header(header)
        assert out_dtype == np.dtype(dtype)
        assert out_shape == tuple(shape)


class TestLengthPrefixedBytes:
    def test_roundtrip(self):
        blob = serial.pack_bytes(b"hello") + serial.pack_bytes(b"")
        first, offset = serial.unpack_bytes(blob)
        second, offset = serial.unpack_bytes(blob, offset)
        assert first == b"hello"
        assert second == b""
        assert offset == len(blob)

    def test_truncated(self):
        blob = serial.pack_bytes(b"hello")
        with pytest.raises(CodecError):
            serial.unpack_bytes(blob[:-1])
        with pytest.raises(CodecError):
            serial.unpack_bytes(b"\x01")


class TestScalars:
    def test_u8_roundtrip(self):
        blob = serial.pack_u8(200)
        value, offset = serial.unpack_u8(blob)
        assert value == 200
        assert offset == 1

    def test_i64_roundtrip(self):
        for value in (0, -1, 2 ** 62, -(2 ** 62)):
            blob = serial.pack_i64(value)
            out, offset = serial.unpack_i64(blob)
            assert out == value
            assert offset == 8

    def test_truncated_scalars(self):
        with pytest.raises(CodecError):
            serial.unpack_u8(b"")
        with pytest.raises(CodecError):
            serial.unpack_i64(b"\x00\x01")
