"""Tests for the array schema model (Section II-A Create semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionError, SchemaError
from repro.core.schema import (
    ArraySchema,
    Attribute,
    Dimension,
    aql_type_for_dtype,
    dtype_for_aql_type,
)


class TestDimension:
    def test_length_inclusive(self):
        # The paper's example [I=0:2] has three cells.
        assert Dimension("I", 0, 2).length == 3

    def test_contains(self):
        dim = Dimension("X", 5, 10)
        assert dim.contains(5)
        assert dim.contains(10)
        assert not dim.contains(4)
        assert not dim.contains(11)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(DimensionError):
            Dimension("I", 3, 2)

    def test_bad_name_rejected(self):
        with pytest.raises(DimensionError):
            Dimension("2bad", 0, 1)

    def test_aql_rendering(self):
        assert Dimension("I", 0, 2).to_aql() == "I=0:2"


class TestAttribute:
    def test_default_normalized_to_dtype(self):
        attr = Attribute("A", np.int32, default=3.0)
        assert attr.default == 3
        assert isinstance(attr.default, int)

    def test_itemsize(self):
        assert Attribute("A", np.float64).itemsize == 8
        assert Attribute("A", np.int8).itemsize == 1

    def test_aql_rendering(self):
        assert Attribute("A", np.int32).to_aql() == "A::INTEGER"
        assert Attribute("B", np.float64).to_aql() == "B::DOUBLE"


class TestAqlTypes:
    def test_integer_maps_to_int32(self):
        assert dtype_for_aql_type("INTEGER") == np.dtype(np.int32)

    def test_case_insensitive(self):
        assert dtype_for_aql_type("double") == np.dtype(np.float64)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            dtype_for_aql_type("VARCHAR")

    def test_roundtrip(self):
        for name in ("INTEGER", "DOUBLE", "FLOAT", "INT64", "UINT8"):
            assert aql_type_for_dtype(dtype_for_aql_type(name)) == name


class TestArraySchema:
    @pytest.fixture
    def schema(self) -> ArraySchema:
        return ArraySchema(
            dimensions=(Dimension("I", 0, 2), Dimension("J", 10, 14)),
            attributes=(Attribute("A", np.int32),
                        Attribute("B", np.float64)),
        )

    def test_shape_and_counts(self, schema):
        assert schema.shape == (3, 5)
        assert schema.cell_count == 15
        assert schema.cell_size == 12
        assert schema.dense_size == 180

    def test_origin(self, schema):
        assert schema.origin == (0, 10)

    def test_needs_dimension(self):
        with pytest.raises(SchemaError):
            ArraySchema(dimensions=(), attributes=(Attribute("A", np.int8),))

    def test_needs_attribute(self):
        with pytest.raises(SchemaError):
            ArraySchema(dimensions=(Dimension("I", 0, 1),), attributes=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema(
                dimensions=(Dimension("A", 0, 1),),
                attributes=(Attribute("A", np.int8),),
            )

    def test_attribute_lookup(self, schema):
        assert schema.attribute("B").dtype == np.dtype(np.float64)
        assert schema.attribute_index("B") == 1
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_zero_based_translation(self, schema):
        assert schema.to_zero_based((0, 10)) == (0, 0)
        assert schema.to_zero_based((2, 14)) == (2, 4)
        with pytest.raises(DimensionError):
            schema.to_zero_based((0, 9))
        with pytest.raises(DimensionError):
            schema.to_zero_based((0,))

    def test_flatten_roundtrip(self, schema):
        for flat in range(schema.cell_count):
            coords = schema.unflatten_index(flat)
            assert schema.flatten_index(coords) == flat
        with pytest.raises(DimensionError):
            schema.unflatten_index(schema.cell_count)

    def test_contains_point(self, schema):
        assert schema.contains_point((1, 12))
        assert not schema.contains_point((3, 12))
        assert not schema.contains_point((1,))

    def test_dict_roundtrip(self, schema):
        rebuilt = ArraySchema.from_dict(schema.to_dict())
        assert rebuilt == schema

    def test_aql_rendering(self, schema):
        text = schema.to_aql()
        assert "A::INTEGER" in text
        assert "I=0:2" in text

    def test_simple_constructor(self):
        schema = ArraySchema.simple((4, 6), dtype=np.float32)
        assert schema.shape == (4, 6)
        assert schema.attributes[0].name == "value"
        assert schema.dimensions[0].name == "I"

    def test_simple_many_dims(self):
        schema = ArraySchema.simple((2,) * 8, dtype=np.int8)
        assert schema.ndim == 8
        assert len({d.name for d in schema.dimensions}) == 8

    def test_simple_dim_names_mismatch(self):
        with pytest.raises(SchemaError):
            ArraySchema.simple((2, 3), dim_names=("X",))
