"""Unit and property tests for D-bit packing (Section III-B.3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitpack
from repro.core.errors import CodecError


class TestRequiredBits:
    def test_zero_needs_zero_bits(self):
        assert bitpack.required_bits(0) == 0

    def test_one_needs_one_bit(self):
        assert bitpack.required_bits(1) == 1

    def test_byte_boundary(self):
        assert bitpack.required_bits(255) == 8
        assert bitpack.required_bits(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            bitpack.required_bits(-1)

    def test_required_bits_for_empty_array(self):
        assert bitpack.required_bits_for(np.array([], dtype=np.uint64)) == 0

    def test_required_bits_for_array(self):
        values = np.array([0, 3, 17], dtype=np.uint64)
        assert bitpack.required_bits_for(values) == 5


class TestPackUnsigned:
    def test_roundtrip_simple(self):
        values = np.array([1, 2, 3, 4, 5], dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 3)
        out = bitpack.unpack_unsigned(packed, 3, 5)
        np.testing.assert_array_equal(out, values)

    def test_zero_bits_all_zero(self):
        values = np.zeros(10, dtype=np.uint64)
        assert bitpack.pack_unsigned(values, 0) == b""
        out = bitpack.unpack_unsigned(b"", 0, 10)
        np.testing.assert_array_equal(out, values)

    def test_zero_bits_rejects_nonzero(self):
        with pytest.raises(CodecError):
            bitpack.pack_unsigned(np.array([1], dtype=np.uint64), 0)

    def test_value_too_wide_rejected(self):
        with pytest.raises(CodecError):
            bitpack.pack_unsigned(np.array([8], dtype=np.uint64), 3)

    def test_empty_input(self):
        assert bitpack.pack_unsigned(np.array([], dtype=np.uint64), 7) == b""
        out = bitpack.unpack_unsigned(b"", 7, 0)
        assert out.size == 0

    def test_truncated_stream_rejected(self):
        values = np.arange(100, dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 7)
        with pytest.raises(CodecError):
            bitpack.unpack_unsigned(packed[:-1], 7, 100)

    def test_64_bit_values(self):
        values = np.array([2**64 - 1, 0, 2**63], dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 64)
        out = bitpack.unpack_unsigned(packed, 64, 3)
        np.testing.assert_array_equal(out, values)

    def test_packed_size_matches_output(self):
        values = np.arange(33, dtype=np.uint64)
        bits = bitpack.required_bits_for(values)
        packed = bitpack.pack_unsigned(values, bits)
        assert len(packed) == bitpack.packed_size(33, bits)

    def test_invalid_bits_rejected(self):
        with pytest.raises(CodecError):
            bitpack.pack_unsigned(np.array([1], dtype=np.uint64), 65)
        with pytest.raises(CodecError):
            bitpack.unpack_unsigned(b"", -1, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=2**40 - 1),
                        max_size=200),
    )
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.uint64)
        bits = bitpack.required_bits_for(array)
        packed = bitpack.pack_unsigned(array, bits)
        out = bitpack.unpack_unsigned(packed, bits, len(values))
        np.testing.assert_array_equal(out, array)


def _oracle_pack(values: np.ndarray, bits: int) -> bytes:
    """The seed's bit-matrix packer, kept verbatim as a test oracle.

    Expands every value to a row of ``bits`` single-bit bytes and packs
    the flattened matrix LSB-first — slow but transparently correct, so
    the word-level kernels are checked against it byte for byte.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64).ravel()
    if bits == 0 or values.size == 0:
        return b""
    shifts = np.arange(bits, dtype=np.uint64)
    bit_matrix = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bit_matrix.ravel(), bitorder="little").tobytes()


def _oracle_unpack(data: bytes, bits: int, count: int) -> np.ndarray:
    """The seed's bit-matrix unpacker, kept verbatim as a test oracle."""
    if bits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    raw = np.frombuffer(data, dtype=np.uint8, count=(count * bits + 7) // 8)
    flat_bits = np.unpackbits(raw, bitorder="little", count=count * bits)
    bit_matrix = flat_bits.reshape(count, bits).astype(np.uint64)
    weights = np.uint64(1) << np.arange(bits, dtype=np.uint64)
    return bit_matrix @ weights


def _random_codes(rng, bits: int, size: int) -> np.ndarray:
    """Uniform random codes of exactly ``bits`` width (0..2**bits - 1)."""
    if bits == 0:
        return np.zeros(size, dtype=np.uint64)
    if bits == 64:
        return rng.integers(0, 2**64 - 1, size=size, dtype=np.uint64,
                            endpoint=True)
    return rng.integers(0, 2**bits, size=size, dtype=np.uint64)


#: Sizes that straddle every kernel boundary: empty, sub-word, word
#: edges (7/8/9 values and the 63/64/65 lane block), and both sides of
#: the scatter-vs-blocked threshold (8192).
_ORACLE_SIZES = (0, 1, 7, 8, 9, 63, 64, 65, 4096, 8191, 8192, 8193)


class TestWordKernelsAgainstBitMatrixOracle:
    """The word-level kernels must match the seed's bit-matrix packing
    byte for byte — the stored format is frozen by committed benchmark
    fingerprints, so this is an equivalence proof, not a round-trip."""

    @pytest.mark.parametrize("bits", range(0, 65))
    def test_all_widths_random_values(self, bits):
        rng = np.random.default_rng(bits)
        for size in _ORACLE_SIZES:
            values = _random_codes(rng, bits, size)
            packed = bitpack.pack_unsigned(values, bits)
            assert packed == _oracle_pack(values, bits), \
                f"pack mismatch at bits={bits} size={size}"
            out = bitpack.unpack_unsigned(packed, bits, size)
            np.testing.assert_array_equal(
                out, _oracle_unpack(packed, bits, size),
                err_msg=f"unpack mismatch at bits={bits} size={size}")
            np.testing.assert_array_equal(out, values)

    @pytest.mark.parametrize("bits", range(1, 65))
    def test_boundary_values(self, bits):
        """All-max-value streams exercise every carry/spill path."""
        top = np.uint64(2**bits - 1)
        for size in (1, 9, 65, 8193):
            values = np.full(size, top, dtype=np.uint64)
            packed = bitpack.pack_unsigned(values, bits)
            assert packed == _oracle_pack(values, bits)
            np.testing.assert_array_equal(
                bitpack.unpack_unsigned(packed, bits, size), values)

    @settings(max_examples=100, deadline=None)
    @given(bits=st.integers(min_value=1, max_value=64),
           size=st.sampled_from((0, 1, 7, 8, 9, 4096)),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_width_equivalence_property(self, bits, size, seed):
        rng = np.random.default_rng(seed)
        values = _random_codes(rng, bits, size)
        packed = bitpack.pack_unsigned(values, bits)
        assert packed == _oracle_pack(values, bits)
        out = bitpack.unpack_unsigned(packed, bits, size)
        np.testing.assert_array_equal(out, values)

    def test_unpack_accepts_memoryview(self):
        for bits in (7, 10, 16, 64):
            values = np.arange(1000, dtype=np.uint64) \
                % np.uint64(1 << min(bits, 63))
            packed = bitpack.pack_unsigned(values, bits)
            out = bitpack.unpack_unsigned(memoryview(packed), bits, 1000)
            np.testing.assert_array_equal(out, values)

    @pytest.mark.parametrize("bits", (7, 8, 13, 32, 64))
    @pytest.mark.parametrize("size", (5, 9000))
    def test_unpack_returns_writable_array(self, bits, size):
        """decode_hybrid patches outlier codes in place, so every
        unpack path — fast, gather, blocked — must return an array it
        owns, never a read-only frombuffer view."""
        values = np.ones(size, dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, bits)
        out = bitpack.unpack_unsigned(packed, bits, size)
        assert out.flags.writeable
        out[0] = 0  # must not raise
        assert bitpack.unpack_unsigned(packed, bits, size)[0] == 1


class TestStrictStreamLength:
    @pytest.mark.parametrize("bits", (1, 7, 8, 13, 64))
    def test_trailing_bytes_rejected(self, bits):
        values = np.arange(50, dtype=np.uint64) % (1 << min(bits, 40))
        packed = bitpack.pack_unsigned(values, bits)
        with pytest.raises(CodecError, match="trailing"):
            bitpack.unpack_unsigned(packed + b"\x00", bits, 50)

    def test_trailing_bytes_rejected_zero_bits(self):
        with pytest.raises(CodecError, match="trailing"):
            bitpack.unpack_unsigned(b"\x00", 0, 10)

    def test_exact_length_accepted(self):
        values = np.arange(50, dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 6)
        assert len(packed) == bitpack.packed_size(50, 6)
        np.testing.assert_array_equal(
            bitpack.unpack_unsigned(packed, 6, 50), values)


class TestZigzag:
    def test_small_values(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        codes = bitpack.zigzag_encode(values)
        np.testing.assert_array_equal(codes,
                                      np.array([0, 1, 2, 3, 4],
                                               dtype=np.uint64))

    def test_roundtrip_extremes(self):
        values = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0],
                          dtype=np.int64)
        out = bitpack.zigzag_decode(bitpack.zigzag_encode(values))
        np.testing.assert_array_equal(out, values)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.integers(min_value=-2**62, max_value=2**62),
                           max_size=100))
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        out = bitpack.zigzag_decode(bitpack.zigzag_encode(array))
        np.testing.assert_array_equal(out, array)

    def test_pack_signed_roundtrip(self):
        values = np.array([-5, 0, 5, 1000, -1000], dtype=np.int64)
        data, bits = bitpack.pack_signed(values)
        out = bitpack.unpack_signed(data, bits, 5)
        np.testing.assert_array_equal(out, values)

    def test_pack_signed_identical_values_zero_bits(self):
        values = np.zeros(100, dtype=np.int64)
        data, bits = bitpack.pack_signed(values)
        assert bits == 0
        assert data == b""


class TestTiledUnpackEquivalence:
    """The tiled (transposed) block-unpack dispatches by element count;
    tiling only reorders independent per-lane operations, so its output
    must be byte-identical to the straight-line kernel."""

    @pytest.mark.parametrize("bits", (1, 13, 21, 47, 63, 64))
    def test_tiled_matches_straight(self, monkeypatch, bits):
        rng = np.random.default_rng(bits)
        # Odd count: the final partial block crosses a tile boundary.
        size = 64 * 3 * 5 + 17
        values = _random_codes(rng, bits, size)
        packed = bitpack.pack_unsigned(values, bits)
        straight = bitpack.unpack_unsigned(packed, bits, size)
        # Force the large-array path (tiny threshold and tile) so the
        # tiled kernel runs over many partial tiles.
        monkeypatch.setattr(bitpack, "_TRANSPOSE_THRESHOLD", 1)
        monkeypatch.setattr(bitpack, "_TILE_BLOCKS", 3)
        tiled = bitpack.unpack_unsigned(packed, bits, size)
        assert tiled.tobytes() == straight.tobytes()
        np.testing.assert_array_equal(tiled, values)

    def test_real_threshold_roundtrip(self):
        """One genuinely large array exercises the production dispatch
        (count past ``_TRANSPOSE_THRESHOLD``) without monkeypatching."""
        rng = np.random.default_rng(42)
        size = bitpack._TRANSPOSE_THRESHOLD + 777
        values = _random_codes(rng, 21, size)
        packed = bitpack.pack_unsigned(values, 21)
        out = bitpack.unpack_unsigned(packed, 21, size)
        np.testing.assert_array_equal(out, values)
