"""Unit and property tests for D-bit packing (Section III-B.3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitpack
from repro.core.errors import CodecError


class TestRequiredBits:
    def test_zero_needs_zero_bits(self):
        assert bitpack.required_bits(0) == 0

    def test_one_needs_one_bit(self):
        assert bitpack.required_bits(1) == 1

    def test_byte_boundary(self):
        assert bitpack.required_bits(255) == 8
        assert bitpack.required_bits(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            bitpack.required_bits(-1)

    def test_required_bits_for_empty_array(self):
        assert bitpack.required_bits_for(np.array([], dtype=np.uint64)) == 0

    def test_required_bits_for_array(self):
        values = np.array([0, 3, 17], dtype=np.uint64)
        assert bitpack.required_bits_for(values) == 5


class TestPackUnsigned:
    def test_roundtrip_simple(self):
        values = np.array([1, 2, 3, 4, 5], dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 3)
        out = bitpack.unpack_unsigned(packed, 3, 5)
        np.testing.assert_array_equal(out, values)

    def test_zero_bits_all_zero(self):
        values = np.zeros(10, dtype=np.uint64)
        assert bitpack.pack_unsigned(values, 0) == b""
        out = bitpack.unpack_unsigned(b"", 0, 10)
        np.testing.assert_array_equal(out, values)

    def test_zero_bits_rejects_nonzero(self):
        with pytest.raises(CodecError):
            bitpack.pack_unsigned(np.array([1], dtype=np.uint64), 0)

    def test_value_too_wide_rejected(self):
        with pytest.raises(CodecError):
            bitpack.pack_unsigned(np.array([8], dtype=np.uint64), 3)

    def test_empty_input(self):
        assert bitpack.pack_unsigned(np.array([], dtype=np.uint64), 7) == b""
        out = bitpack.unpack_unsigned(b"", 7, 0)
        assert out.size == 0

    def test_truncated_stream_rejected(self):
        values = np.arange(100, dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 7)
        with pytest.raises(CodecError):
            bitpack.unpack_unsigned(packed[:-1], 7, 100)

    def test_64_bit_values(self):
        values = np.array([2**64 - 1, 0, 2**63], dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 64)
        out = bitpack.unpack_unsigned(packed, 64, 3)
        np.testing.assert_array_equal(out, values)

    def test_packed_size_matches_output(self):
        values = np.arange(33, dtype=np.uint64)
        bits = bitpack.required_bits_for(values)
        packed = bitpack.pack_unsigned(values, bits)
        assert len(packed) == bitpack.packed_size(33, bits)

    def test_invalid_bits_rejected(self):
        with pytest.raises(CodecError):
            bitpack.pack_unsigned(np.array([1], dtype=np.uint64), 65)
        with pytest.raises(CodecError):
            bitpack.unpack_unsigned(b"", -1, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=2**40 - 1),
                        max_size=200),
    )
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.uint64)
        bits = bitpack.required_bits_for(array)
        packed = bitpack.pack_unsigned(array, bits)
        out = bitpack.unpack_unsigned(packed, bits, len(values))
        np.testing.assert_array_equal(out, array)


class TestZigzag:
    def test_small_values(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        codes = bitpack.zigzag_encode(values)
        np.testing.assert_array_equal(codes,
                                      np.array([0, 1, 2, 3, 4],
                                               dtype=np.uint64))

    def test_roundtrip_extremes(self):
        values = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0],
                          dtype=np.int64)
        out = bitpack.zigzag_decode(bitpack.zigzag_encode(values))
        np.testing.assert_array_equal(out, values)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.integers(min_value=-2**62, max_value=2**62),
                           max_size=100))
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        out = bitpack.zigzag_decode(bitpack.zigzag_encode(array))
        np.testing.assert_array_equal(out, array)

    def test_pack_signed_roundtrip(self):
        values = np.array([-5, 0, 5, 1000, -1000], dtype=np.int64)
        data, bits = bitpack.pack_signed(values)
        out = bitpack.unpack_signed(data, bits, 5)
        np.testing.assert_array_equal(out, values)

    def test_pack_signed_identical_values_zero_bits(self):
        values = np.zeros(100, dtype=np.int64)
        data, bits = bitpack.pack_signed(values)
        assert bits == 0
        assert data == b""
