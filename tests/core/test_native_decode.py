"""Native decode kernels vs their numpy references, byte for byte.

The encode-side kernels are covered next to the planner
(``tests/delta/test_planner.py``); this file owns the decode side:
zigzag decode, D-bit unpack across every width, the O(nnz) scatter
kernels, the fused 64-bit apply, and the delta-of-delta re-base
statistics.  Every kernel's contract is the same — byte-identical to
the numpy fallback, returning ``None``/``False`` (so the caller falls
back) on any dtype, layout, or size it does not handle — and every
test here asserts both halves of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitpack, native
from repro.delta.codes import CodeStats, delta_to_codes

pytestmark = pytest.mark.skipif(not native.available(),
                                reason="native kernels did not compile")


class TestZigzagDecode:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 5000))
    def test_matches_numpy(self, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.integers(-2**62, 2**62, n, dtype=np.int64)
        codes = bitpack.zigzag_encode(values)
        got = native.zigzag_decode(codes)
        assert got is not None
        assert got.dtype == np.int64
        assert np.array_equal(got, values)
        assert np.array_equal(got, bitpack.zigzag_decode(codes))

    def test_boundary_values(self):
        values = np.array([0, 1, -1, 2**63 - 1, -2**63, 2**62,
                           -2**62], dtype=np.int64)
        codes = bitpack.zigzag_encode(values)
        got = native.zigzag_decode(codes)
        assert got is not None
        assert np.array_equal(got, values)

    def test_rejects_layouts(self):
        codes = np.arange(16, dtype=np.uint64)
        assert native.zigzag_decode(codes[::2]) is None
        assert native.zigzag_decode(codes.astype(np.int64)) is None
        assert native.zigzag_decode(
            np.zeros(0, dtype=np.uint64)) is None
        assert native.zigzag_decode(codes.tolist()) is None


class TestUnpackBits:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), bits=st.integers(1, 63),
           n=st.integers(1, 3000))
    def test_every_width_matches_numpy(self, seed, bits, n):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << bits, n, dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, bits)
        got = native.unpack_bits(packed, bits, n)
        assert got is not None
        assert np.array_equal(got, values)
        with native.disabled():
            assert np.array_equal(
                got, bitpack.unpack_unsigned(packed, bits, n))

    def test_rejects_widths_outside_carry_loop(self):
        # Width 0 and 64 are handled upstream (no payload / dtype
        # reinterpret); the kernel must refuse them.
        assert native.unpack_bits(b"", 0, 4) is None
        assert native.unpack_bits(b"\x00" * 32, 64, 4) is None
        assert native.unpack_bits(b"\x00" * 8, 7, 0) is None

    def test_full_pipeline_is_gated(self):
        # End to end: bitpack.unpack_unsigned dispatches to the kernel
        # when active and to the word kernels inside disabled(), with
        # identical results.
        rng = np.random.default_rng(2012)
        values = rng.integers(0, 1 << 29, 4096, dtype=np.uint64)
        packed = bitpack.pack_unsigned(values, 29)
        hot = bitpack.unpack_unsigned(packed, 29, values.size)
        with native.disabled():
            cold = bitpack.unpack_unsigned(packed, 29, values.size)
        assert np.array_equal(hot, cold)
        assert np.array_equal(hot, values)


class TestScatterKernels:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 2000),
           nnz=st.integers(1, 500))
    def test_add_matches_fancy_indexing(self, seed, n, nnz):
        rng = np.random.default_rng(seed)
        acc = rng.integers(-2**40, 2**40, n, dtype=np.int64)
        index = rng.integers(0, n, nnz, dtype=np.int64)
        # Unique positions so the numpy reference semantics match.
        index = np.unique(index)
        delta = rng.integers(-2**40, 2**40, index.size,
                             dtype=np.int64)
        expected = acc.copy()
        expected[index] += delta
        assert native.scatter_add(acc, index, delta) is True
        assert np.array_equal(acc, expected)

    def test_add_is_exact_under_duplicates(self):
        # The property the batched multi-level scatter depends on and
        # numpy fancy indexing lacks: duplicates accumulate.
        acc = np.zeros(4, dtype=np.int64)
        index = np.array([1, 1, 1, 3], dtype=np.int64)
        delta = np.array([5, 7, -2, 9], dtype=np.int64)
        assert native.scatter_add(acc, index, delta) is True
        assert acc.tolist() == [0, 10, 0, 9]

    def test_xor_matches_fancy_indexing(self):
        rng = np.random.default_rng(7)
        acc = rng.integers(0, 2**63, 64, dtype=np.uint64)
        index = np.unique(rng.integers(0, 64, 16, dtype=np.int64))
        delta = rng.integers(0, 2**63, index.size, dtype=np.uint64)
        expected = acc.copy()
        expected[index] ^= delta
        assert native.scatter_xor(acc, index, delta) is True
        assert np.array_equal(acc, expected)

    def test_rejects_layouts(self):
        acc = np.zeros(8, dtype=np.int64)
        index = np.array([0, 1], dtype=np.int64)
        delta = np.array([1, 2], dtype=np.int64)
        assert native.scatter_add(np.zeros(8, dtype=np.int32), index,
                                  delta) is False
        assert native.scatter_add(acc, index.astype(np.uint64),
                                  delta) is False
        assert native.scatter_add(acc, index,
                                  delta[:1]) is False
        assert native.scatter_add(acc[::2], index, delta) is False
        ro = np.zeros(8, dtype=np.int64)
        ro.flags.writeable = False
        assert native.scatter_add(ro, index, delta) is False
        assert native.scatter_add(acc, np.zeros(0, dtype=np.int64),
                                  np.zeros(0, dtype=np.int64)) is False


class TestApplyAdd64:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 3000))
    def test_matches_wrapping_add(self, seed, n):
        rng = np.random.default_rng(seed)
        base = rng.integers(-2**62, 2**62, n, dtype=np.int64)
        acc = rng.integers(-2**62, 2**62, n, dtype=np.int64)
        with np.errstate(over="ignore"):
            expected = base + acc
        assert native.apply_add64(base, acc) is True
        assert np.array_equal(acc, expected)

    def test_rejects_layouts(self):
        base = np.zeros(8, dtype=np.int64)
        acc = np.zeros(8, dtype=np.int64)
        assert native.apply_add64(base.astype(np.float64),
                                  acc) is False
        assert native.apply_add64(base[:4], acc) is False
        assert native.apply_add64(base[::2], acc[::2]) is False
        ro = np.zeros(8, dtype=np.int64)
        ro.flags.writeable = False
        assert native.apply_add64(base, ro) is False


class TestRebaseStats:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 3000))
    def test_matches_numpy_rebase(self, seed, n):
        rng = np.random.default_rng(seed)
        root = rng.integers(-2**40, 2**40, n, dtype=np.int64)
        prior = rng.integers(-2**20, 2**20, n, dtype=np.int64)
        target = rng.integers(-2**40, 2**40, n, dtype=np.int64)
        fused = native.rebase_zigzag_stats(target, root, prior)
        assert fused is not None
        codes, hist = fused
        with np.errstate(over="ignore"):
            delta = target - (root + prior)
        expected = delta_to_codes(delta, "arith")
        assert np.array_equal(codes, expected)
        assert np.array_equal(
            hist, CodeStats.from_codes(expected).width_counts)

    def test_rejects_layouts(self):
        a = np.zeros(8, dtype=np.int64)
        assert native.rebase_zigzag_stats(a.astype(np.int32), a,
                                          a) is None
        assert native.rebase_zigzag_stats(a, a[:4], a) is None
        assert native.rebase_zigzag_stats(a[::2], a[::2],
                                          a[::2]) is None
        empty = np.zeros(0, dtype=np.int64)
        assert native.rebase_zigzag_stats(empty, empty, empty) is None


class TestDisabledScope:
    def test_disabled_turns_every_kernel_off(self):
        codes = np.arange(8, dtype=np.uint64)
        acc = np.zeros(8, dtype=np.int64)
        idx = np.array([0], dtype=np.int64)
        one = np.array([1], dtype=np.int64)
        with native.disabled():
            assert native.zigzag_decode(codes) is None
            assert native.unpack_bits(b"\x00" * 8, 7, 4) is None
            assert native.scatter_add(acc, idx, one) is False
            assert native.scatter_xor(acc, idx, one) is False
            assert native.apply_add64(acc, acc.copy()) is False
            assert native.rebase_zigzag_stats(acc, acc, acc) is None
        assert native.zigzag_decode(codes) is not None

    def test_disabled_nests(self):
        codes = np.arange(8, dtype=np.uint64)
        with native.disabled():
            with native.disabled():
                assert native.zigzag_decode(codes) is None
            assert native.zigzag_decode(codes) is None
        assert native.zigzag_decode(codes) is not None

    def test_env_gate(self):
        # REPRO_NATIVE is latched at first load, so the =0 path needs
        # a fresh interpreter: every wrapper must report the fallback.
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_NATIVE="0")
        probe = (
            "import numpy as np\n"
            "from repro.core import native\n"
            "codes = np.arange(8, dtype=np.uint64)\n"
            "assert not native.available()\n"
            "assert native.zigzag_decode(codes) is None\n"
            "assert native.unpack_bits(b'\\x00' * 8, 7, 4) is None\n"
            "acc = np.zeros(8, dtype=np.int64)\n"
            "idx = np.array([0], dtype=np.int64)\n"
            "one = np.array([1], dtype=np.int64)\n"
            "assert native.scatter_add(acc, idx, one) is False\n"
            "assert native.rebase_zigzag_stats(acc, acc, acc) is None\n"
        )
        subprocess.run([sys.executable, "-c", probe], check=True,
                       env=env)
