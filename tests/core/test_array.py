"""Tests for ArrayData and the three insert payload forms (Section II-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.array import (
    ArrayData,
    DeltaListPayload,
    DensePayload,
    SparsePayload,
    coords_and_values_from_dense,
)
from repro.core.errors import DimensionError, SchemaError
from repro.core.schema import ArraySchema, Attribute, Dimension


@pytest.fixture
def schema() -> ArraySchema:
    return ArraySchema.simple((3, 4), dtype=np.int32)


@pytest.fixture
def multi_schema() -> ArraySchema:
    return ArraySchema(
        dimensions=(Dimension("I", 0, 2), Dimension("J", 0, 3)),
        attributes=(Attribute("temp", np.float64, default=np.nan),
                    Attribute("count", np.int32, default=0)),
    )


class TestArrayData:
    def test_wraps_and_freezes(self, schema):
        values = np.arange(12, dtype=np.int32).reshape(3, 4)
        data = ArrayData.from_single(schema, values)
        stored = data.single()
        assert not stored.flags.writeable
        np.testing.assert_array_equal(stored, values)

    def test_shape_mismatch_rejected(self, schema):
        with pytest.raises(DimensionError):
            ArrayData.from_single(schema, np.zeros((4, 3), dtype=np.int32))

    def test_missing_attribute_rejected(self, multi_schema):
        with pytest.raises(SchemaError):
            ArrayData(multi_schema, {"temp": np.zeros((3, 4))})

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(SchemaError):
            ArrayData(schema, {
                "value": np.zeros((3, 4), dtype=np.int32),
                "bogus": np.zeros((3, 4), dtype=np.int32),
            })

    def test_safe_casting(self, schema):
        # int64 -> int32 is same-kind and allowed.
        data = ArrayData.from_single(
            schema, np.arange(12, dtype=np.int64).reshape(3, 4))
        assert data.single().dtype == np.int32

    def test_defaults_fill(self, multi_schema):
        data = ArrayData.filled_with_defaults(multi_schema)
        assert np.isnan(data.attribute("temp")).all()
        assert (data.attribute("count") == 0).all()

    def test_nbytes(self, schema):
        data = ArrayData.from_single(
            schema, np.zeros((3, 4), dtype=np.int32))
        assert data.nbytes() == 48

    def test_slice_inclusive_corners(self, schema):
        values = np.arange(12, dtype=np.int32).reshape(3, 4)
        data = ArrayData.from_single(schema, values)
        sub = data.slice((1, 1), (2, 3))
        np.testing.assert_array_equal(sub.single(), values[1:3, 1:4])

    def test_slice_single_cell(self, schema):
        values = np.arange(12, dtype=np.int32).reshape(3, 4)
        data = ArrayData.from_single(schema, values)
        sub = data.slice((2, 3), (2, 3))
        assert sub.single().shape == (1, 1)
        assert sub.single()[0, 0] == values[2, 3]

    def test_slice_bad_corners(self, schema):
        data = ArrayData.from_single(
            schema, np.zeros((3, 4), dtype=np.int32))
        with pytest.raises(DimensionError):
            data.slice((2, 2), (1, 1))

    def test_equals(self, schema):
        values = np.arange(12, dtype=np.int32).reshape(3, 4)
        a = ArrayData.from_single(schema, values)
        b = ArrayData.from_single(schema, values.copy())
        c = ArrayData.from_single(schema, values + 1)
        assert a.equals(b)
        assert not a.equals(c)

    def test_single_requires_single_attribute(self, multi_schema):
        data = ArrayData.filled_with_defaults(multi_schema)
        with pytest.raises(SchemaError):
            data.single()


class TestDensePayload:
    def test_normalizes(self, schema):
        payload = DensePayload.of(np.ones((3, 4), dtype=np.int32))
        data = payload.to_array_data(schema)
        assert (data.single() == 1).all()


class TestSparsePayload:
    def test_defaults_and_scatter(self, schema):
        payload = SparsePayload.of(
            coords=np.array([[0, 0], [2, 3]]),
            values=np.array([7, 9], dtype=np.int32),
        )
        data = payload.to_array_data(schema)
        assert data.single()[0, 0] == 7
        assert data.single()[2, 3] == 9
        assert data.single()[1, 1] == 0  # schema default

    def test_out_of_bounds_rejected(self, schema):
        payload = SparsePayload.of(
            coords=np.array([[5, 0]]), values=np.array([1], dtype=np.int32))
        with pytest.raises(DimensionError):
            payload.to_array_data(schema)

    def test_count_mismatch_rejected(self, schema):
        payload = SparsePayload.of(
            coords=np.array([[0, 0], [1, 1]]),
            values=np.array([1], dtype=np.int32))
        with pytest.raises(DimensionError):
            payload.to_array_data(schema)

    def test_unknown_attribute_rejected(self, schema):
        payload = SparsePayload(cells={
            "nope": (np.array([[0, 0]]), np.array([1], dtype=np.int32))})
        with pytest.raises(SchemaError):
            payload.to_array_data(schema)

    def test_nonzero_origin(self):
        schema = ArraySchema(
            dimensions=(Dimension("X", 10, 12),),
            attributes=(Attribute("value", np.int32, default=-1),),
        )
        payload = SparsePayload.of(
            coords=np.array([[11]]), values=np.array([5], dtype=np.int32))
        data = payload.to_array_data(schema)
        np.testing.assert_array_equal(data.single(),
                                      np.array([-1, 5, -1], dtype=np.int32))


class TestDeltaListPayload:
    def test_inherits_from_base(self, schema):
        base = ArrayData.from_single(
            schema, np.arange(12, dtype=np.int32).reshape(3, 4))
        payload = DeltaListPayload.of(
            coords=np.array([[1, 1]]), values=np.array([99], dtype=np.int32),
            base_version=1)
        data = payload.to_array_data(schema, base=base)
        assert data.single()[1, 1] == 99
        assert data.single()[0, 0] == 0
        assert data.single()[2, 3] == 11

    def test_requires_base(self, schema):
        payload = DeltaListPayload.of(
            coords=np.array([[0, 0]]), values=np.array([1], dtype=np.int32),
            base_version=1)
        with pytest.raises(SchemaError):
            payload.to_array_data(schema, base=None)


class TestCoordsFromDense:
    def test_extracts_non_default_cells(self, schema):
        values = np.zeros((3, 4), dtype=np.int32)
        values[1, 2] = 5
        values[0, 3] = -1
        coords, extracted = coords_and_values_from_dense(schema, values, 0)
        assert len(coords) == 2
        rebuilt = SparsePayload.of(coords, extracted).to_array_data(schema)
        np.testing.assert_array_equal(rebuilt.single(), values)

    def test_nan_default(self):
        schema = ArraySchema.simple((2, 2), dtype=np.float64)
        values = np.full((2, 2), np.nan)
        values[0, 1] = 3.5
        coords, extracted = coords_and_values_from_dense(
            schema, values, np.nan)
        assert len(coords) == 1
        assert extracted[0] == 3.5
