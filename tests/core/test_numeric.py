"""Tests for lossless numeric differencing (Section III-B.3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import numeric
from repro.core.errors import CodecError, DeltaShapeMismatchError


INT_DTYPES = [np.int8, np.int16, np.int32, np.int64,
              np.uint8, np.uint16, np.uint32, np.uint64]
FLOAT_DTYPES = [np.float32, np.float64]


class TestModeSelection:
    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_integers_use_arithmetic(self, dtype):
        assert numeric.delta_mode_for(dtype) == numeric.ARITHMETIC

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_floats_use_xor(self, dtype):
        assert numeric.delta_mode_for(dtype) == numeric.XOR

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(CodecError):
            numeric.delta_mode_for(np.dtype("complex128"))


class TestShapeChecks:
    def test_shape_mismatch(self):
        with pytest.raises(DeltaShapeMismatchError):
            numeric.compute_delta(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_dtype_mismatch(self):
        with pytest.raises(DeltaShapeMismatchError):
            numeric.compute_delta(np.zeros(3, dtype=np.int32),
                                  np.zeros(3, dtype=np.int64))


class TestRoundTrips:
    @pytest.mark.parametrize("dtype", INT_DTYPES + FLOAT_DTYPES)
    def test_identical_arrays_zero_delta(self, dtype, rng):
        a = (rng.normal(0, 50, size=(5, 7)) if np.dtype(dtype).kind == "f"
             else rng.integers(0, 100, size=(5, 7))).astype(dtype)
        delta, mode = numeric.compute_delta(a, a)
        assert not delta.any()
        recovered = numeric.apply_delta_forward(a, delta, mode, a.dtype)
        np.testing.assert_array_equal(recovered, a)

    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_integer_forward_backward(self, dtype, rng):
        info = np.iinfo(dtype)
        a = rng.integers(info.min, info.max, size=40,
                         endpoint=True, dtype=dtype)
        b = rng.integers(info.min, info.max, size=40,
                         endpoint=True, dtype=dtype)
        delta, mode = numeric.compute_delta(a, b)
        np.testing.assert_array_equal(
            numeric.apply_delta_forward(b, delta, mode, a.dtype), a)
        np.testing.assert_array_equal(
            numeric.apply_delta_backward(a, delta, mode, a.dtype), b)

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_float_forward_backward_bit_exact(self, dtype, rng):
        a = rng.normal(0, 1e10, size=40).astype(dtype)
        b = rng.normal(0, 1e-10, size=40).astype(dtype)
        # Include the awkward IEEE citizens.
        a[0], a[1], a[2] = np.nan, np.inf, -0.0
        b[0], b[1], b[2] = 1.0, -np.inf, 0.0
        delta, mode = numeric.compute_delta(a, b)
        forward = numeric.apply_delta_forward(b, delta, mode, a.dtype)
        backward = numeric.apply_delta_backward(a, delta, mode, a.dtype)
        np.testing.assert_array_equal(forward.view(np.uint8).tobytes(),
                                      a.view(np.uint8).tobytes())
        np.testing.assert_array_equal(backward.view(np.uint8).tobytes(),
                                      b.view(np.uint8).tobytes())

    def test_similar_floats_give_small_codes(self):
        # The XOR of close floats must zero the high bits — this is the
        # property that makes dense bit-packed float deltas small.
        a = np.array([1.0, 2.0, 3.0], dtype=np.float64)
        b = a + 1e-12
        delta, mode = numeric.compute_delta(b, a)
        assert mode == numeric.XOR
        assert int(delta.max()) < 2**30

    def test_unknown_mode_rejected(self):
        with pytest.raises(CodecError):
            numeric.apply_delta_forward(
                np.zeros(3), np.zeros(3, dtype=np.uint64), "bogus",
                np.float64)
        with pytest.raises(CodecError):
            numeric.apply_delta_backward(
                np.zeros(3), np.zeros(3, dtype=np.uint64), "bogus",
                np.float64)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(),
           dtype=st.sampled_from([np.int16, np.int64, np.float32,
                                  np.float64]))
    def test_roundtrip_property(self, data, dtype):
        shape = data.draw(hnp.array_shapes(max_dims=3, max_side=8))
        elements = (
            st.floats(width=np.dtype(dtype).itemsize * 8,
                      allow_nan=False)
            if np.dtype(dtype).kind == "f"
            else st.integers(np.iinfo(dtype).min, np.iinfo(dtype).max)
        )
        a = data.draw(hnp.arrays(dtype, shape, elements=elements))
        b = data.draw(hnp.arrays(dtype, shape, elements=elements))
        delta, mode = numeric.compute_delta(a, b)
        forward = numeric.apply_delta_forward(b, delta, mode, a.dtype)
        backward = numeric.apply_delta_backward(a, delta, mode, a.dtype)
        assert forward.tobytes() == a.tobytes()
        assert backward.tobytes() == b.tobytes()
