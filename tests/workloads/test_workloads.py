"""Tests for the Table V workload generators and execution harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import ArraySchema
from repro.materialize.workload_opt import RangeQuery, SnapshotQuery
from repro.storage import VersionedStorageManager
from repro.workloads import (
    RANGE,
    SNAPSHOT,
    UPDATE,
    Operation,
    head_workload,
    mixed_workload,
    random_workload,
    range_workload,
    run_workload,
    to_optimizer_workload,
    update_workload,
    workload_by_name,
)

VERSIONS = 30


class TestGenerators:
    def test_head_mostly_latest(self):
        operations = head_workload(VERSIONS, repetitions=200, seed=1)
        latest = sum(1 for op in operations if op.first == VERSIONS)
        assert len(operations) == 200
        assert 0.8 < latest / 200 < 1.0
        assert all(op.kind == SNAPSHOT for op in operations)

    def test_random_uniform_singletons(self):
        operations = random_workload(VERSIONS, repetitions=300, seed=2)
        assert all(op.kind == SNAPSHOT for op in operations)
        versions = {op.first for op in operations}
        assert len(versions) > VERSIONS // 2
        assert all(1 <= op.first <= VERSIONS for op in operations)

    def test_range_mix(self):
        operations = range_workload(VERSIONS, repetitions=300, seed=3)
        ranges = [op for op in operations if op.kind == RANGE]
        singles = [op for op in operations if op.kind == SNAPSHOT]
        assert 0.8 < len(ranges) / 300 <= 1.0
        assert len(singles) + len(ranges) == 300
        lengths = [op.last - op.first + 1 for op in ranges]
        assert 3 < np.std(lengths) < 20  # sigma ~ 10, clipped
        assert all(op.last <= VERSIONS for op in ranges)

    def test_mixed_contains_all_types(self):
        operations = mixed_workload(VERSIONS, repetitions=300, seed=4)
        kinds = {op.kind for op in operations}
        assert kinds == {SNAPSHOT, RANGE}

    def test_update_distinct_versions(self):
        operations = update_workload(VERSIONS, repetitions=5, seed=5)
        assert len(operations) == 5
        assert all(op.kind == UPDATE for op in operations)
        assert len({op.first for op in operations}) == 5

    def test_workload_by_name(self):
        for name in ("head", "random", "range", "mixed", "update"):
            assert workload_by_name(name, VERSIONS)
        with pytest.raises(ValueError):
            workload_by_name("bogus", VERSIONS)

    def test_deterministic_by_seed(self):
        a = range_workload(VERSIONS, seed=7)
        b = range_workload(VERSIONS, seed=7)
        assert a == b


class TestRunWorkload:
    @pytest.fixture
    def loaded_manager(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=2048)
        manager.create_array(
            "A", ArraySchema.simple((16, 16), dtype=np.int32))
        data = rng.integers(0, 100, (16, 16)).astype(np.int32)
        for _ in range(5):
            manager.insert("A", data)
            data = data + 1
        return manager

    def test_reads_reported(self, loaded_manager):
        operations = [Operation(SNAPSHOT, 5, 5),
                      Operation(RANGE, 1, 3)]
        report = run_workload(loaded_manager, "A", operations,
                              name="smoke")
        assert report.operations == 2
        assert report.bytes_read > 0
        assert report.seconds >= 0
        assert report.name == "smoke"

    def test_update_creates_new_version(self, loaded_manager):
        before = loaded_manager.get_versions("A")
        run_workload(loaded_manager, "A",
                     [Operation(UPDATE, 2, 2)], update_cells=4)
        after = loaded_manager.get_versions("A")
        assert len(after) == len(before) + 1
        # The new version inherits version 2's contents except the
        # modified cells.
        newest = loaded_manager.select("A", after[-1]).single()
        base = loaded_manager.select("A", 2).single()
        assert np.sum(newest != base) <= 4

    def test_unknown_kind_rejected(self, loaded_manager):
        with pytest.raises(ValueError):
            run_workload(loaded_manager, "A",
                         [Operation("scan", 1, 1)])


class TestOptimizerBridge:
    def test_aggregates_weights(self):
        operations = [Operation(SNAPSHOT, 3, 3),
                      Operation(SNAPSHOT, 3, 3),
                      Operation(RANGE, 1, 4),
                      Operation(UPDATE, 2, 2)]
        workload = to_optimizer_workload(operations)
        assert len(workload) == 2  # updates excluded, snapshots merged
        snapshot = next(w for w in workload
                        if isinstance(w.query, SnapshotQuery))
        assert snapshot.weight == 2.0
        range_query = next(w for w in workload
                           if isinstance(w.query, RangeQuery))
        assert range_query.query.versions() == (1, 2, 3, 4)
