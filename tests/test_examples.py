"""Smoke tests: every shipped example must run cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script), str(tmp_path)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, \
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_example_inventory():
    """The README promises at least these walk-throughs."""
    names = {path.stem for path in EXAMPLES}
    for expected in ("quickstart", "weather_versions",
                     "astronomy_branching", "sparse_conceptnet",
                     "optimizer_tour", "distributed_cluster"):
        assert expected in names
