"""Property suite: the single-pass planner against the two-pass oracle.

:func:`repro.delta.auto.plan_encoding` must be *decision- and
byte-equivalent* to :func:`repro.delta.auto.choose_encoding` — same
winner under the same first-strictly-smaller tie-break, same size, same
payload bytes — while encoding at most one representation.  The suite
drives both through randomized dtypes, sparsity profiles, outlier
mixes and degenerate shapes, and separately pins the exactness of the
plan-fed size estimators, the shared width statistics (including the
fused native kernel when it compiled), and the planner plumbing in the
write pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LempelZivCodec
from repro.core import bitpack, native
from repro.core.errors import StorageError
from repro.core.numeric import compute_delta
from repro.core.schema import ArraySchema
from repro.delta import (
    CodeStats,
    DenseDeltaCodec,
    HybridDeltaCodec,
    SparseDeltaCodec,
    choose_encoding,
)
from repro.delta.auto import CodePlan, plan_encoding
from repro.delta.codes import delta_to_codes
from repro.storage import VersionedStorageManager
from repro.storage.pipeline import resolve_planner

_DTYPES = (np.int64, np.int32, np.uint16, np.int8,
           np.float64, np.float32, np.bool_)


@st.composite
def _version_pair(draw):
    """A (target, base) pair spanning the interesting encode regimes."""
    dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
    shape = draw(st.sampled_from(
        [(), (1,), (7,), (64,), (9, 13), (3, 5, 7), (2000,)]))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    if dtype.kind == "f":
        base = rng.normal(0, 100, size=shape).astype(dtype)
    elif dtype.kind == "b":
        base = (rng.integers(0, 2, size=shape) > 0).astype(dtype)
    else:
        info = np.iinfo(dtype)
        base = rng.integers(info.min, int(info.max) + 1,
                            size=shape).astype(dtype)
    profile = draw(st.sampled_from(
        ["identical", "sparse", "smooth", "outliers", "random"]))
    target = base.copy()
    if profile == "sparse" and base.size:
        n_hits = draw(st.integers(1, max(1, base.size // 8)))
        flat = target.reshape(-1)
        hits = rng.choice(base.size, size=min(n_hits, base.size),
                          replace=False)
        if dtype.kind == "b":
            flat[hits] = ~flat[hits]
        else:
            flat[hits] = base.reshape(-1)[hits] // 2 + 1
    elif profile == "smooth" and base.size:
        if dtype.kind == "f":
            target = (base + rng.normal(0, 0.5,
                                        size=shape)).astype(dtype)
        elif dtype.kind != "b":
            noise = rng.integers(-3, 4, size=shape)
            with np.errstate(over="ignore"):
                target = (base + noise.astype(dtype)).astype(dtype)
    elif profile == "outliers" and base.size:
        flat = target.reshape(-1)
        n_out = draw(st.integers(1, max(1, base.size // 16)))
        hits = rng.choice(base.size, size=min(n_out, base.size),
                          replace=False)
        if dtype.kind == "f":
            flat[hits] = -flat[hits] * 1e30
        elif dtype.kind != "b":
            info = np.iinfo(dtype)
            flat[hits] = info.max
    elif profile == "random":
        if dtype.kind == "f":
            target = rng.normal(0, 100, size=shape).astype(dtype)
        elif dtype.kind == "b":
            target = (rng.integers(0, 2, size=shape) > 0).astype(dtype)
        else:
            info = np.iinfo(dtype)
            target = rng.integers(info.min, int(info.max) + 1,
                                  size=shape).astype(dtype)
    return target, base


version_pairs = _version_pair()


candidate_sets = st.sampled_from([
    None,                                   # default hybrid + sparse
    (HybridDeltaCodec(),),                  # the chain-policy shape
    (SparseDeltaCodec(),),
    (DenseDeltaCodec(),),
    (HybridDeltaCodec(lz=True),),           # sized only by encoding
    (HybridDeltaCodec(), SparseDeltaCodec(), DenseDeltaCodec()),
])


class TestPlannerMatchesOracle:
    @settings(max_examples=120, deadline=None)
    @given(pair=version_pairs, candidates=candidate_sets,
           lz_materialized=st.booleans())
    def test_decision_equivalence(self, pair, candidates,
                                  lz_materialized):
        target, base = pair
        compressor = LempelZivCodec() if lz_materialized else None
        oracle = choose_encoding(target, base, compressor=compressor,
                                 candidates=candidates)
        planned = plan_encoding(target, base, compressor=compressor,
                                candidates=candidates)
        assert planned.decision.delta_codec == oracle.delta_codec
        assert planned.decision.size == oracle.size
        assert planned.decision.payload == oracle.payload

    @settings(max_examples=60, deadline=None)
    @given(pair=version_pairs, candidates=candidate_sets)
    def test_no_base_equivalence(self, pair, candidates):
        target, _ = pair
        oracle = choose_encoding(target, None, candidates=candidates)
        planned = plan_encoding(target, None, candidates=candidates)
        assert not planned.decision.is_delta
        assert planned.decision.payload == oracle.payload

    def test_payload_join_is_cached(self, rng):
        base = rng.integers(0, 100, size=(16, 16)).astype(np.int64)
        planned = plan_encoding(base + 1, base)
        assert planned.decision.payload is planned.decision.payload

    def test_savings_accounting(self, rng):
        base = rng.integers(0, 100, size=(64, 64)).astype(np.int64)
        planned = plan_encoding(base + 1, base)
        # Small deltas: a delta codec wins, so the materialized payload
        # and the losing candidate were sized but never produced.
        assert planned.decision.is_delta
        assert planned.encodes_avoided >= 2
        assert planned.bytes_saved > base.nbytes


class TestEstimatorsExact:
    @settings(max_examples=80, deadline=None)
    @given(pair=version_pairs)
    def test_plan_size_equals_encoded_length(self, pair):
        target, base = pair
        plan = CodePlan.build(target, base)
        for codec in (HybridDeltaCodec(), SparseDeltaCodec(),
                      DenseDeltaCodec()):
            size = codec.plan_size(plan)
            assert size is not None
            payload = b"".join(codec.encode_from_plan(plan))
            assert size == len(payload), codec.name

    @settings(max_examples=40, deadline=None)
    @given(pair=version_pairs)
    def test_lz_hybrid_has_no_analytic_size(self, pair):
        target, base = pair
        plan = CodePlan.build(target, base)
        codec = HybridDeltaCodec(lz=True)
        assert codec.plan_size(plan) is None
        # encoded_size (the estimator API) must still match reality.
        payload = b"".join(codec.encode_from_plan(plan))
        assert codec.encoded_size(target, base) == len(payload)


class TestSharedStats:
    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(
        st.one_of(st.integers(0, 2**64 - 1), st.integers(0, 40),
                  st.sampled_from([0, 1, 2**31, 2**53 - 1, 2**53,
                                   2**63, 2**64 - 1])),
        min_size=0, max_size=300))
    def test_width_histogram_is_exact(self, values):
        codes = np.array(values, dtype=np.uint64)
        stats = CodeStats.from_codes(codes)
        expected = np.zeros(65, dtype=np.int64)
        for value in values:
            expected[int(value).bit_length()] += 1
        assert np.array_equal(stats.width_counts, expected)
        assert stats.nonzero == sum(1 for v in values if v)
        assert stats.max_bits == max(
            (int(v).bit_length() for v in values), default=0)

    def test_split_curve_is_cached(self, rng):
        codes = rng.integers(0, 2**30, 512, dtype=np.uint64)
        stats = CodeStats.from_codes(codes)
        assert stats.split_curve() is stats.split_curve()

    @settings(max_examples=60, deadline=None)
    @given(pair=version_pairs)
    def test_lazy_delta_roundtrip(self, pair):
        target, base = pair
        plan = CodePlan.build(target, base)
        delta, mode = compute_delta(target, base)
        assert plan.mode == mode
        assert plan.delta.dtype == delta.dtype
        assert np.array_equal(plan.delta, delta)


@pytest.mark.skipif(not native.available(),
                    reason="native kernels did not compile")
class TestNativeKernels:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 5000))
    def test_fused_delta_matches_numpy(self, seed, n):
        rng = np.random.default_rng(seed)
        target = rng.integers(-2**62, 2**62, n, dtype=np.int64)
        base = rng.integers(-2**62, 2**62, n, dtype=np.int64)
        fused = native.delta_zigzag_stats(target, base)
        assert fused is not None
        codes, hist = fused
        delta, mode = compute_delta(target, base)
        expected = delta_to_codes(delta, mode)
        assert np.array_equal(codes, expected)
        assert np.array_equal(
            hist, CodeStats.from_codes(expected).width_counts)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), bits=st.integers(1, 64),
           n=st.integers(1, 3000))
    def test_pack_matches_numpy_kernels(self, seed, bits, n):
        rng = np.random.default_rng(seed)
        if bits < 64:
            values = rng.integers(0, 1 << bits, n, dtype=np.uint64)
        else:
            values = rng.integers(0, 2**63, n, dtype=np.uint64) * 2 \
                + rng.integers(0, 2, n, dtype=np.uint64)
        words = native.pack_bits(values, bits)
        assert words is not None
        needed = (n * bits + 7) // 8
        got = words.view(np.uint8)[:needed].tobytes()
        n_words = (n * bits + 63) // 64
        ref_blocked = bitpack._pack_words_blocked(values, bits)
        ref_scatter = bitpack._pack_words_scatter(values, bits, n_words)
        assert got == ref_blocked.view(np.uint8)[:needed].tobytes()
        assert got == ref_scatter.view(np.uint8)[:needed].tobytes()

    def test_gated_off_by_dtype_and_layout(self, rng):
        f = rng.normal(size=8)
        assert native.delta_zigzag_stats(f, f) is None
        ints = rng.integers(0, 9, (8, 8), dtype=np.int64)
        assert native.delta_zigzag_stats(ints[:, ::2],
                                         ints[:, ::2]) is None
        empty = np.zeros(0, dtype=np.int64)
        assert native.delta_zigzag_stats(empty, empty) is None


class TestResolvePlanner:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENCODE_PLANNER", raising=False)
        assert resolve_planner(None) is True

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_PLANNER", "0")
        assert resolve_planner(None) is False

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_PLANNER", "0")
        assert resolve_planner(True) is True

    def test_malformed_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_PLANNER", "maybe")
        with pytest.raises(StorageError):
            resolve_planner(None)


class TestPipelinePlanner:
    @pytest.mark.parametrize("delta_policy", ["auto", "chain",
                                              "materialize"])
    def test_on_off_fingerprints_match(self, tmp_path, rng,
                                       delta_policy):
        datas = [rng.integers(0, 1 << 30, (40, 40)).astype(np.int64)]
        for _ in range(3):
            datas.append(datas[-1]
                         + rng.integers(0, 3, (40, 40)).astype(np.int64))
        prints = {}
        for planner in (True, False):
            root = tmp_path / f"planner-{planner}"
            manager = VersionedStorageManager(
                root, chunk_bytes=4000, delta_policy=delta_policy,
                planner=planner)
            manager.create_array("a", ArraySchema.simple(
                datas[0].shape, dtype=datas[0].dtype))
            for data in datas:
                manager.insert("a", data)
            prints[planner] = manager.fingerprint("a")
            stats = manager.stats
            if planner:
                assert stats.encode_plans == stats.encode_tasks
            else:
                assert stats.encode_plans == 0
                assert stats.codec_encodes_avoided == 0
                assert stats.planner_bytes_saved == 0
            manager.close()
        assert prints[True] == prints[False]

    def test_chain_policy_avoids_materialized_encodes(self, tmp_path,
                                                      rng):
        base = rng.integers(0, 100, (64, 64)).astype(np.int64)
        manager = VersionedStorageManager(
            tmp_path / "s", chunk_bytes=8192, delta_policy="chain",
            planner=True)
        manager.create_array("a", ArraySchema.simple(
            base.shape, dtype=base.dtype))
        manager.insert("a", base)
        manager.insert("a", base + 1)
        stats = manager.stats
        # Every delta task proved the hybrid smaller than materializing
        # without producing the materialized payload.
        assert stats.codec_encodes_avoided > 0
        assert stats.planner_bytes_saved > 0
        manager.close()
