"""Direct unit tests for the shared code-array encoders and estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import numeric
from repro.core.errors import CodecError
from repro.delta import codes


class TestDeltaToCodes:
    def test_arith_zigzag(self):
        delta = np.array([0, -1, 1, 100], dtype=np.int64)
        out = codes.delta_to_codes(delta, numeric.ARITHMETIC)
        np.testing.assert_array_equal(
            out, np.array([0, 1, 2, 200], dtype=np.uint64))

    def test_xor_passthrough(self):
        delta = np.array([0, 7, 2**40], dtype=np.uint64)
        out = codes.delta_to_codes(delta, numeric.XOR)
        np.testing.assert_array_equal(out, delta)

    def test_roundtrip_both_modes(self, rng):
        arith = rng.integers(-1000, 1000, 50).astype(np.int64)
        back = codes.codes_to_delta(
            codes.delta_to_codes(arith, numeric.ARITHMETIC),
            numeric.ARITHMETIC)
        np.testing.assert_array_equal(back, arith)

    def test_unknown_mode(self):
        with pytest.raises(CodecError):
            codes.delta_to_codes(np.zeros(1, dtype=np.int64), "nope")
        with pytest.raises(CodecError):
            codes.codes_to_delta(np.zeros(1, dtype=np.uint64), "nope")


class TestSizeEstimators:
    """The estimators feed the Materialization Matrix: they must equal
    the actual encoded sizes, not approximate them."""

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.integers(0, 2**40), min_size=1,
                           max_size=300))
    def test_dense_size_exact(self, values):
        array = np.array(values, dtype=np.uint64)
        assert codes.dense_size(array) == len(codes.encode_dense(array))

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.integers(0, 2**40), min_size=1,
                           max_size=300))
    def test_sparse_size_exact(self, values):
        array = np.array(values, dtype=np.uint64)
        assert codes.sparse_size(array) == len(codes.encode_sparse(array))

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.integers(0, 2**40), min_size=1,
                           max_size=300))
    def test_hybrid_size_exact(self, values):
        array = np.array(values, dtype=np.uint64)
        assert codes.hybrid_size(array) == len(codes.encode_hybrid(array))

    def test_hybrid_never_worse_than_dense_or_sparse_estimates(self, rng):
        for _ in range(20):
            mix = np.concatenate([
                rng.integers(0, 8, 200).astype(np.uint64),
                rng.integers(0, 2**50, rng.integers(0, 50))
                .astype(np.uint64),
            ])
            hybrid = codes.hybrid_size(mix)
            assert hybrid <= codes.dense_size(mix) + 16
            assert hybrid <= codes.sparse_size(mix) + 16


class TestHybridSplit:
    def test_all_zero_width_zero(self):
        array = np.zeros(100, dtype=np.uint64)
        assert codes.hybrid_split_width(array) == 0

    def test_uniform_small_codes_no_outliers(self):
        array = np.full(1000, 6, dtype=np.uint64)  # 3-bit codes
        assert codes.hybrid_split_width(array) == 3

    def test_outliers_split_off(self):
        # 990 tiny codes + 10 huge ones: the split width must track the
        # tiny population, not the maximum.
        array = np.concatenate([
            np.full(990, 3, dtype=np.uint64),
            np.full(10, 2**50, dtype=np.uint64),
        ])
        width = codes.hybrid_split_width(array)
        assert width <= 8

    def test_roundtrip_with_outliers(self, rng):
        array = np.concatenate([
            rng.integers(0, 16, 500).astype(np.uint64),
            rng.integers(2**30, 2**45, 25).astype(np.uint64),
        ])
        rng.shuffle(array)
        blob = codes.encode_hybrid(array)
        out, offset = codes.decode_hybrid(blob, 0, len(array))
        np.testing.assert_array_equal(out, array)
        assert offset == len(blob)

    def test_decode_rejects_bad_positions(self):
        array = np.array([1, 2**40], dtype=np.uint64)
        blob = codes.encode_hybrid(array)
        # Claim fewer cells than the outlier positions reference.
        with pytest.raises(CodecError):
            codes.decode_hybrid(blob, 0, 1)


class TestEmptyArrays:
    def test_dense_empty(self):
        empty = np.zeros(0, dtype=np.uint64)
        blob = codes.encode_dense(empty)
        out, _ = codes.decode_dense(blob, 0, 0)
        assert out.size == 0

    def test_sparse_empty(self):
        empty = np.zeros(0, dtype=np.uint64)
        blob = codes.encode_sparse(empty)
        out, _ = codes.decode_sparse(blob, 0, 0)
        assert out.size == 0
