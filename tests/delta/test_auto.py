"""Tests for automatic materialize-vs-delta selection (Section III-B.3)."""

from __future__ import annotations

import numpy as np

from repro.compression import LempelZivCodec
from repro.delta import HybridDeltaCodec, choose_encoding, get_delta_codec


class TestChooseEncoding:
    def test_no_base_materializes(self, rng):
        target = rng.normal(0, 1, size=(16, 16)).astype(np.float64)
        decision = choose_encoding(target, base=None)
        assert not decision.is_delta
        assert decision.size == len(decision.payload)

    def test_similar_base_deltas(self, rng):
        base = rng.integers(0, 2**24, size=(32, 32)).astype(np.int32)
        target = base.copy()
        target[0, 0] += 1
        decision = choose_encoding(target, base)
        assert decision.is_delta
        assert decision.size < base.nbytes / 10

    def test_dissimilar_base_materializes(self, rng):
        # When versions share nothing, delta coding cannot beat LZ'd
        # materialization by construction: deltas are as random as cells.
        target = rng.integers(0, 2**31, size=(32, 32)).astype(np.int32)
        base = rng.integers(0, 2**31, size=(32, 32)).astype(np.int32)
        decision = choose_encoding(target, base,
                                   compressor=LempelZivCodec())
        # The decision must simply pick the smaller of the two.
        materialized = len(LempelZivCodec().encode(target))
        assert decision.size <= materialized

    def test_payload_reconstructs(self, rng):
        base = rng.integers(0, 100, size=(16, 16)).astype(np.int32)
        target = base + 1
        decision = choose_encoding(target, base)
        assert decision.is_delta
        codec = get_delta_codec(decision.delta_codec)
        out = codec.decode_forward(decision.payload, base)
        assert out.tobytes() == target.tobytes()

    def test_custom_candidates(self, rng):
        base = rng.integers(0, 100, size=(8, 8)).astype(np.int32)
        target = base + 2
        decision = choose_encoding(
            target, base, candidates=(HybridDeltaCodec(lz=True),))
        assert decision.delta_codec == "hybrid+lz"
