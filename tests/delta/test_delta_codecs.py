"""Round-trip and behaviour tests for the delta codecs (Table I set)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import CodecError, DeltaShapeMismatchError
from repro.delta import (
    BSDiffDeltaCodec,
    DenseDeltaCodec,
    HybridDeltaCodec,
    MPEGLikeDeltaCodec,
    SparseDeltaCodec,
    delta_codec_names,
    get_delta_codec,
)

ALL_CODECS = [
    DenseDeltaCodec(),
    SparseDeltaCodec(),
    HybridDeltaCodec(),
    HybridDeltaCodec(lz=True),
    MPEGLikeDeltaCodec(block=8, radius=2),
    BSDiffDeltaCodec(),
]
BIDIRECTIONAL = [codec for codec in ALL_CODECS if codec.bidirectional]
DTYPES = [np.uint8, np.int16, np.int32, np.int64, np.float32, np.float64]


def _pair(dtype, shape, rng, similarity=0.95):
    """Two versions that agree on ~similarity of their cells."""
    if np.dtype(dtype).kind == "f":
        base = rng.normal(0, 100, size=shape).astype(dtype)
        noise = rng.normal(0, 1, size=shape).astype(dtype)
    else:
        info = np.iinfo(dtype)
        lo, hi = max(info.min, -1000), min(info.max, 1000)
        base = rng.integers(lo, hi, size=shape).astype(dtype)
        noise = rng.integers(-3, 4, size=shape).astype(dtype)
    mask = rng.random(size=shape) > similarity
    with np.errstate(over="ignore"):
        target = np.where(mask, base + noise, base).astype(dtype)
    return target, base


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestForwardRoundTrip:
    @pytest.mark.parametrize("dtype", DTYPES, ids=str)
    def test_similar_versions(self, codec, dtype, rng):
        target, base = _pair(dtype, (24, 32), rng)
        data = codec.encode(target, base)
        out = codec.decode_forward(data, base)
        assert out.tobytes() == target.tobytes()
        assert out.shape == target.shape
        assert out.dtype == target.dtype

    def test_identical_versions(self, codec, rng):
        base = rng.normal(0, 10, size=(16, 16)).astype(np.float32)
        data = codec.encode(base.copy(), base)
        out = codec.decode_forward(data, base)
        assert out.tobytes() == base.tobytes()

    def test_completely_different(self, codec, rng):
        target = rng.integers(0, 2**31, size=(8, 8)).astype(np.int32)
        base = rng.integers(0, 2**31, size=(8, 8)).astype(np.int32)
        data = codec.encode(target, base)
        out = codec.decode_forward(data, base)
        assert out.tobytes() == target.tobytes()

    def test_1d(self, codec, rng):
        target, base = _pair(np.int32, (100,), rng)
        data = codec.encode(target, base)
        assert codec.decode_forward(data, base).tobytes() == target.tobytes()

    def test_3d(self, codec, rng):
        target, base = _pair(np.int16, (4, 6, 8), rng)
        data = codec.encode(target, base)
        out = codec.decode_forward(data, base)
        assert out.tobytes() == target.tobytes()
        assert out.shape == target.shape

    def test_shape_mismatch_rejected(self, codec):
        with pytest.raises(DeltaShapeMismatchError):
            codec.encode(np.zeros((2, 2), dtype=np.int32),
                         np.zeros((2, 3), dtype=np.int32))

    def test_nan_inf_bit_exact(self, codec):
        base = np.array([[1.0, np.nan], [np.inf, -0.0]], dtype=np.float64)
        target = np.array([[np.nan, np.nan], [np.inf, 2.0]],
                          dtype=np.float64)
        data = codec.encode(target, base)
        out = codec.decode_forward(data, base)
        assert out.tobytes() == target.tobytes()


@pytest.mark.parametrize("codec", BIDIRECTIONAL, ids=lambda c: c.name)
class TestBackwardRoundTrip:
    @pytest.mark.parametrize("dtype", [np.int32, np.float64], ids=str)
    def test_base_from_target(self, codec, dtype, rng):
        target, base = _pair(dtype, (20, 20), rng)
        data = codec.encode(target, base)
        out = codec.decode_backward(data, target)
        assert out.tobytes() == base.tobytes()


class TestDirectionalCodecs:
    @pytest.mark.parametrize("codec",
                             [MPEGLikeDeltaCodec(), BSDiffDeltaCodec()],
                             ids=lambda c: c.name)
    def test_backward_rejected(self, codec, rng):
        target, base = _pair(np.int32, (8, 8), rng)
        data = codec.encode(target, base)
        with pytest.raises(CodecError):
            codec.decode_backward(data, target)


class TestSizes:
    def test_identical_versions_negligible_space(self, rng):
        # Section III-B.3: identical arrays must delta to ~nothing.
        base = rng.normal(0, 10, size=(64, 64)).astype(np.float64)
        for codec in (DenseDeltaCodec(), SparseDeltaCodec(),
                      HybridDeltaCodec()):
            size = len(codec.encode(base.copy(), base))
            assert size < 64, f"{codec.name} used {size} bytes"

    def test_sparse_wins_on_few_changes(self, rng):
        base = rng.integers(0, 2**20, size=(64, 64)).astype(np.int32)
        target = base.copy()
        target[5, 5] += 1  # a single changed cell
        sparse = len(SparseDeltaCodec().encode(target, base))
        dense = len(DenseDeltaCodec().encode(target, base))
        assert sparse < dense

    def test_dense_wins_on_small_everywhere_changes(self, rng):
        base = rng.integers(0, 2**20, size=(64, 64)).astype(np.int32)
        with np.errstate(over="ignore"):
            target = base + rng.integers(-2, 3, size=(64, 64)).astype(np.int32)
        sparse = len(SparseDeltaCodec().encode(target, base))
        dense = len(DenseDeltaCodec().encode(target, base))
        assert dense < sparse

    def test_hybrid_never_worse_than_dense_or_sparse(self, rng):
        # The hybrid cost search includes both extremes.
        for similarity in (0.5, 0.9, 0.99):
            target, base = _pair(np.int32, (48, 48), rng,
                                 similarity=similarity)
            hybrid = len(HybridDeltaCodec().encode(target, base))
            dense = len(DenseDeltaCodec().encode(target, base))
            sparse = len(SparseDeltaCodec().encode(target, base))
            assert hybrid <= min(dense, sparse) + 16

    def test_encoded_size_matches_actual(self, rng):
        target, base = _pair(np.int32, (32, 32), rng)
        for codec in (DenseDeltaCodec(), SparseDeltaCodec(),
                      HybridDeltaCodec()):
            assert codec.encoded_size(target, base) == \
                len(codec.encode(target, base))

    def test_mpeg_detects_shift(self, rng):
        # A pure translation must produce a much smaller residual with
        # motion compensation than with the plain hybrid delta.
        base = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        target = np.roll(base, shift=(3, 2), axis=(0, 1))
        mpeg = MPEGLikeDeltaCodec(block=16, radius=4)
        hybrid = HybridDeltaCodec()
        mpeg_size = len(mpeg.encode(target, base))
        hybrid_size = len(hybrid.encode(target, base))
        assert mpeg_size < hybrid_size / 4
        out = mpeg.decode_forward(mpeg.encode(target, base), base)
        assert out.tobytes() == target.tobytes()

    def test_bsdiff_compresses_mostly_equal_bytes(self, rng):
        base = rng.integers(0, 255, size=4096).astype(np.uint8)
        target = base.copy()
        target[100:120] += 1
        size = len(BSDiffDeltaCodec().encode(target, base))
        assert size < base.nbytes / 4


class TestSuffixArray:
    def test_small_known(self):
        from repro.delta import suffix_array

        data = np.frombuffer(b"banana", dtype=np.uint8)
        sa = suffix_array(data)
        suffixes = [bytes(data[i:]).decode() for i in sa]
        assert suffixes == sorted("banana"[i:] for i in range(6))

    def test_empty(self):
        from repro.delta import suffix_array

        assert suffix_array(np.zeros(0, dtype=np.uint8)).size == 0

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(min_size=1, max_size=200))
    def test_sorted_property(self, data):
        from repro.delta import suffix_array

        array = np.frombuffer(data, dtype=np.uint8)
        sa = suffix_array(array)
        suffixes = [data[i:] for i in sa]
        assert suffixes == sorted(data[i:] for i in range(len(data)))


class TestRegistry:
    def test_names(self):
        names = delta_codec_names()
        for expected in ("dense", "sparse", "hybrid", "hybrid+lz",
                         "mpeg-like", "bsdiff"):
            assert expected in names

    def test_get(self):
        assert get_delta_codec("hybrid").name == "hybrid"
        assert get_delta_codec("hybrid+lz").lz

    def test_unknown(self):
        with pytest.raises(CodecError):
            get_delta_codec("vcdiff")


@settings(max_examples=25, deadline=None)
@given(data=st.data(),
       codec_name=st.sampled_from(["dense", "sparse", "hybrid",
                                   "hybrid+lz"]))
def test_roundtrip_property(data, codec_name):
    codec = get_delta_codec(codec_name)
    dtype = data.draw(st.sampled_from([np.int32, np.float64]))
    shape = data.draw(hnp.array_shapes(min_dims=1, max_dims=3, max_side=10))
    elements = (
        st.floats(allow_nan=False, width=64)
        if np.dtype(dtype).kind == "f"
        else st.integers(np.iinfo(dtype).min, np.iinfo(dtype).max)
    )
    target = data.draw(hnp.arrays(dtype, shape, elements=elements))
    base = data.draw(hnp.arrays(dtype, shape, elements=elements))
    blob = codec.encode(target, base)
    assert codec.decode_forward(blob, base).tobytes() == target.tobytes()
    assert codec.decode_backward(blob, target).tobytes() == base.tobytes()


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestEncodeParts:
    """encode_parts is the zero-copy contract: the joined parts must be
    the exact bytes encode() produces, so the chunk store can defer the
    join to placement without moving a single stored byte."""

    @pytest.mark.parametrize("dtype", [np.int64, np.float32], ids=str)
    def test_parts_join_to_encode(self, codec, dtype, rng):
        target, base = _pair(dtype, (24, 32), rng)
        parts = codec.encode_parts(target, base)
        assert isinstance(parts, list)
        assert b"".join(parts) == codec.encode(target, base)

    def test_parts_sizes_sum(self, codec, rng):
        target, base = _pair(np.int64, (16, 16), rng)
        parts = codec.encode_parts(target, base)
        assert sum(len(part) for part in parts) == \
            len(codec.encode(target, base))


@pytest.mark.parametrize("codec", [DenseDeltaCodec(), SparseDeltaCodec(),
                                   HybridDeltaCodec(),
                                   HybridDeltaCodec(lz=True)],
                         ids=lambda c: c.name)
class TestStrictDecode:
    """Decoders consume exactly the payload they are handed — trailing
    garbage means a placement/addressing bug and must surface, not be
    silently ignored."""

    def test_trailing_bytes_rejected(self, codec, rng):
        target, base = _pair(np.int64, (16, 16), rng)
        blob = codec.encode(target, base)
        with pytest.raises(CodecError, match="trailing"):
            codec.decode_forward(blob + b"\x00", base)

    def test_memoryview_payload_accepted(self, codec, rng):
        """The read path hands zero-copy views, never joined copies."""
        target, base = _pair(np.int64, (16, 16), rng)
        blob = codec.encode(target, base)
        out = codec.decode_forward(memoryview(blob), base)
        np.testing.assert_array_equal(out, target)
