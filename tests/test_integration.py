"""End-to-end integration and property tests across the whole stack.

These exercise the full Figure 1 pipeline — AQL in, chunked delta
storage, optimizer re-organization, selects out — and a hypothesis
state-machine-style property: after any legal sequence of operations,
every stored version reads back byte-exact.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, MaterializationMatrix, optimal_layout
from repro.core.schema import ArraySchema
from repro.datasets import noaa_series, panorama_series
from repro.storage import VersionedStorageManager
from repro.storage.lineage import build_lineage


class TestFullPipeline:
    """The paper's architecture exercised end to end."""

    def test_weather_pipeline(self, tmp_path):
        frames = noaa_series(8, shape=(48, 48))["humidity"]
        db = Database(tmp_path / "db", chunk_bytes=4096,
                      compressor="lz", delta_codec="hybrid+lz")
        db.create_array("w", ArraySchema.simple((48, 48),
                                                dtype=np.float32))
        for frame in frames:
            db.insert("w", frame)

        # Every select form returns exact contents.
        np.testing.assert_array_equal(db.select("w@3"), frames[2])
        stack = db.select("w@*")
        assert stack.shape == (8, 48, 48)
        np.testing.assert_array_equal(stack[7], frames[7])
        window = db.manager.select_versions_region(
            "w", [2, 4, 6], (10, 10), (19, 19))
        np.testing.assert_array_equal(window[1], frames[3][10:20, 10:20])

        # Re-organize to the space optimum, then re-verify everything.
        db.manager.reorganize("w", mode="space")
        for number, frame in enumerate(frames, 1):
            np.testing.assert_array_equal(db.select(f"w@{number}"), frame)
        db.close()

    def test_branch_merge_reorganize_pipeline(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=4096)
        manager.create_array("a", ArraySchema.simple((16, 16),
                                                     dtype=np.int32))
        base = rng.integers(0, 99, (16, 16)).astype(np.int32)
        manager.insert("a", base)
        manager.insert("a", base + 1)
        manager.branch("a", 1, "b")
        manager.insert("b", base + 100)
        manager.merge([("a", 2), ("b", 2)], "m")

        graph = build_lineage(manager)
        assert not graph.is_tree()  # merges make it a DAG
        np.testing.assert_array_equal(manager.select("m", 1).single(),
                                      base + 1)
        np.testing.assert_array_equal(manager.select("m", 2).single(),
                                      base + 100)

        manager.reorganize("m", mode="space")
        np.testing.assert_array_equal(manager.select("m", 2).single(),
                                      base + 100)

    def test_optimizer_layout_applied_matches_prediction(self, tmp_path):
        """The matrix's predicted sizes must track actual stored bytes."""
        frames = panorama_series(10, shape=(32, 32), period=5)
        manager = VersionedStorageManager(tmp_path, chunk_bytes=64 * 1024)
        manager.create_array("p", ArraySchema.simple((32, 32),
                                                     dtype=np.uint8))
        for frame in frames:
            manager.insert("p", frame)
        matrix = MaterializationMatrix.from_manager(manager, "p")
        layout = optimal_layout(matrix)
        manager.apply_layout("p", dict(layout.parent_of))
        predicted = layout.total_size(matrix)
        actual = manager.stored_bytes("p")
        # Same order of magnitude: the matrix is the planning signal.
        assert 0.5 < actual / predicted < 2.0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_random_operation_sequences_stay_consistent(tmp_path_factory,
                                                    data):
    """Property: any legal op sequence keeps all versions byte-exact."""
    root = tmp_path_factory.mktemp("prop")
    manager = VersionedStorageManager(root, chunk_bytes=1024,
                                      cache_chunks=8)
    schema = ArraySchema.simple((8, 8), dtype=np.int32)
    manager.create_array("A", schema)

    expected: dict[int, np.ndarray] = {}
    rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 31)))
    current = rng.integers(0, 100, (8, 8)).astype(np.int32)

    operation_count = data.draw(st.integers(3, 12))
    for _ in range(operation_count):
        op = data.draw(st.sampled_from(
            ["insert", "select", "region", "delete", "reorganize"]))
        versions = sorted(expected)
        if op == "insert" or not versions:
            current = current + rng.integers(0, 3, (8, 8)).astype(np.int32)
            version = manager.insert("A", current)
            expected[version] = current.copy()
        elif op == "select":
            version = data.draw(st.sampled_from(versions))
            out = manager.select("A", version).single()
            np.testing.assert_array_equal(out, expected[version])
        elif op == "region":
            version = data.draw(st.sampled_from(versions))
            out = manager.select_region("A", version, (2, 2), (5, 5))
            np.testing.assert_array_equal(out.single(),
                                          expected[version][2:6, 2:6])
        elif op == "delete" and len(versions) > 1:
            version = data.draw(st.sampled_from(versions))
            manager.delete_version("A", version)
            del expected[version]
        elif op == "reorganize" and len(versions) > 1:
            manager.reorganize("A", mode="space")

    # Final sweep: every surviving version must read back exactly.
    for version, contents in expected.items():
        np.testing.assert_array_equal(
            manager.select("A", version).single(), contents)
    manager.catalog.close()
