"""Fast integration runs of every benchmark experiment at tiny scale.

These are not the benchmarks (see ``benchmarks/``); they verify the
experiment harness end to end — data generation, store construction,
measurement, row structure — in seconds, so harness regressions surface
in the unit suite.
"""

from __future__ import annotations


from repro.bench import (
    ablations,
    fig2,
    materialization,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    workload_aware,
)
from repro.bench.harness import fmt_bytes, fmt_seconds


class TestHarnessFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.00 KB"
        assert fmt_bytes(3 * 2**20) == "3.00 MB"
        assert fmt_bytes(5 * 2**30) == "5.00 GB"

    def test_fmt_seconds(self):
        assert fmt_seconds(0.001) == "1.00 ms"
        assert fmt_seconds(1.5) == "1.50 s"


class TestTableExperiments:
    def test_table1_small(self):
        rows = table1.run(versions=3, shape=(24, 24), mpeg_radius=1,
                          quiet=True)
        assert [row["algorithm"] for row in rows] == [
            "Uncompressed", "Dense", "Sparse", "Hybrid",
            "MPEG-2-like Matcher", "BSDiff"]
        assert all(row["size_bytes"] > 0 for row in rows)

    def test_table2_small(self):
        rows = table2.run(versions=3, shape=(24, 24), quiet=True)
        names = [row["compression"] for row in rows]
        assert "Lempel-Ziv" in names
        assert all(row["query_seconds"] >= 0 for row in rows)

    def test_table3_small(self, tmp_path):
        rows = table3.run(versions=3, shape=(64, 64),
                          chunk_bytes=1024, workdir=str(tmp_path),
                          quiet=True)
        assert len(rows) == 4
        by_name = {row["method"]: row for row in rows}
        assert by_name["Uncompressed"]["subselect_bytes"] >= \
            by_name["Chunks"]["subselect_bytes"]

    def test_table4_small(self, tmp_path):
        rows = table4.run(versions=3, shape=(64, 64),
                          chunk_bytes=1024, workdir=str(tmp_path),
                          quiet=True)
        by_name = {row["method"]: row for row in rows}
        assert by_name["Chunks + Deltas"]["select_bytes"] < \
            by_name["Chunks"]["select_bytes"]

    def test_table5_small(self, tmp_path):
        rows = table5.run(versions=4, noaa_shape=(24, 24),
                          cnet_size=64, cnet_nnz=100,
                          chunk_bytes=2048, workdir=str(tmp_path),
                          quiet=True)
        assert len(rows) == 6  # 2 datasets x 3 configurations
        for row in rows:
            for workload in ("head", "random", "range", "update",
                             "mixed"):
                assert row[f"{workload}_seconds"] >= 0

    def test_table6_small(self, tmp_path):
        # >= 9 versions so the Git repack window (10+1 objects) exceeds
        # the scaled 8-tile memory budget, as at full scale.
        rows = table6.run(versions=9, shape=(64, 64),
                          chunk_bytes=1024, workdir=str(tmp_path),
                          quiet=True)
        by_name = {row["method"]: row for row in rows}
        assert by_name["Git"].get("oom")
        assert by_name["SVN"]["size_bytes"] > \
            by_name["Hybrid+LZ"]["size_bytes"]

    def test_table7_small(self, tmp_path):
        rows = table7.run(versions=4, shape=(24, 24),
                          workdir=str(tmp_path), quiet=True)
        assert {row["method"] for row in rows} == \
            {"Uncompressed", "Hybrid+LZ", "SVN", "Git"}


class TestMaterializationExperiments:
    def test_panorama_small(self):
        result = materialization.run_panorama(count=12, shape=(32, 32),
                                              period=4, quiet=True)
        assert result["optimal_bytes"] < result["linear_bytes"]

    def test_periodic_small(self):
        results = materialization.run_periodic(total=12, shape=(16, 16),
                                               quiet=True)
        for result in results:
            assert result["correct_encoding"]
            assert result["optimal_bytes"] < result["linear_bytes"] / 2

    def test_loadtime_small(self):
        result = materialization.run_loadtime(total=10, shape=(16, 16),
                                              quiet=True)
        assert result["optimal_seconds"] > 0
        assert result["sampled_matches_exact"]

    def test_linear_confirm_small(self):
        result = materialization.run_linear_confirm(versions=6,
                                                    shape=(16, 16),
                                                    quiet=True)
        assert result["all_edges_adjacent"]

    def test_workload_aware_small(self, tmp_path):
        result = workload_aware.run(versions=12, shape=(24, 24),
                                    range_length=6, overlap=2, runs=2,
                                    chunk_bytes=2048,
                                    workdir=str(tmp_path), quiet=True)
        assert result["io_model_cost"] <= result["space_model_cost"]

    def test_overlapping_ranges_geometry(self):
        ranges = workload_aware.overlapping_ranges(22, length=10,
                                                   overlap=4)
        assert ranges == [(1, 10), (7, 16), (13, 22)]
        for (f1, l1), (f2, _) in zip(ranges, ranges[1:]):
            assert l1 - f2 + 1 == 4  # exact overlap


class TestFigureAndAblations:
    def test_fig2_small(self, tmp_path):
        rows = fig2.run(max_chain=3, workdir=str(tmp_path), quiet=True)
        assert rows[2]["chunks_read"] == 6

    def test_fig2_workers_axis_and_json(self, tmp_path):
        import json

        out = tmp_path / "BENCH_fig2.json"
        rows = fig2.run(max_chain=3, workers=(1, 2),
                        workdir=str(tmp_path), json_path=out,
                        quiet=True)
        assert {row["workers"] for row in rows} == {1, 2}
        # The workers axis changes wall-clock only, never the I/O.
        for degree in (1, 2):
            for row in rows:
                if row["workers"] != degree:
                    continue
                assert row["file_opens"] == \
                    row["chunks_overlapping_query"]
                assert row["chunks_read"] == \
                    row["chain_depth"] * row["chunks_overlapping_query"]
        assert json.loads(out.read_text()) == rows

    def test_ingest_small(self, tmp_path):
        import json

        from repro.bench import ingest

        out = tmp_path / "BENCH_ingest.json"
        rows = ingest.run(versions=3, shape=(32, 32), chunk_bytes=1024,
                          backends=("memory", "durable"), workers=(1, 2),
                          repeats=1, workdir=str(tmp_path),
                          json_path=out, quiet=True)
        assert {row["workers"] for row in rows} == {1, 2}
        # The workers axis changes wall-clock only: one fingerprint
        # over catalog rows + payload bytes for the whole grid.
        assert len({row["fingerprint"] for row in rows}) == 1
        assert all(row["identical_to_serial"] for row in rows)
        for row in rows:
            assert row["encode_tasks"] == row["chunks_written"]
            assert row["versions_per_sec"] > 0
        assert json.loads(out.read_text()) == rows

    def test_chunk_sweep_small(self, tmp_path):
        rows = ablations.run_chunk_sweep(
            versions=3, shape=(64, 64), budgets=(1024, 8192),
            workdir=str(tmp_path), quiet=True)
        assert rows[1]["subselect_bytes"] >= rows[0]["subselect_bytes"]

    def test_placement_small(self, tmp_path):
        rows = ablations.run_placement(versions=4, shape=(32, 32),
                                       workdir=str(tmp_path), quiet=True)
        by_name = {row["placement"]: row for row in rows}
        assert by_name["colocated"]["files"] < \
            by_name["per-version"]["files"]

    def test_hybrid_threshold_small(self):
        rows = ablations.run_hybrid_threshold(versions=3,
                                              shape=(32, 32), quiet=True)
        optimal = rows[0]["size_bytes"]
        assert all(optimal <= row["size_bytes"] for row in rows[1:])
