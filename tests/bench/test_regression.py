"""The bench-artifact fingerprint regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.regression import check_artifact, compare_rows, row_key


def _row(backend="local", workers=1, fingerprint="aa" * 32, **extra):
    return {"backend": backend, "workers": workers,
            "ingest_seconds": 0.5, "versions_per_sec": 24.0,
            "fingerprint": fingerprint, **extra}


class TestRowKey:
    def test_ignores_volatile_and_float_columns(self):
        fast = _row(ingest_seconds=0.1, versions_per_sec=120.0,
                    logical_mb=100.7)
        slow = _row(ingest_seconds=9.9, versions_per_sec=1.2,
                    logical_mb=100.7)
        assert row_key(fast) == row_key(slow)

    def test_distinguishes_identity_columns(self):
        assert row_key(_row(workers=1)) != row_key(_row(workers=4))
        assert row_key(_row(backend="local")) != \
            row_key(_row(backend="object"))

    def test_fingerprint_is_not_identity(self):
        assert row_key(_row(fingerprint="aa" * 32)) == \
            row_key(_row(fingerprint="bb" * 32))


class TestCompareRows:
    def test_identical_artifacts_pass(self):
        rows = [_row(workers=1), _row(workers=4)]
        assert compare_rows(rows, rows) == []

    def test_wall_clock_drift_passes(self):
        committed = [_row(ingest_seconds=0.5)]
        fresh = [_row(ingest_seconds=5.0)]
        assert compare_rows(committed, fresh) == []

    def test_fingerprint_mismatch_fails(self):
        committed = [_row(fingerprint="aa" * 32)]
        fresh = [_row(fingerprint="bb" * 32)]
        failures = compare_rows(committed, fresh)
        assert len(failures) == 1
        assert "mismatch" in failures[0]
        assert "backend=local" in failures[0]

    def test_missing_fresh_row_fails(self):
        committed = [_row(workers=1), _row(workers=4)]
        fresh = [_row(workers=1)]
        failures = compare_rows(committed, fresh)
        assert len(failures) == 1
        assert "no fresh counterpart" in failures[0]

    def test_grown_grid_passes(self):
        # New cells in the fresh artifact are fine: the same change
        # that grew the grid commits the enlarged artifact.
        committed = [_row(workers=1)]
        fresh = [_row(workers=1), _row(workers=4),
                 _row(backend="object")]
        assert compare_rows(committed, fresh) == []

    def test_committed_artifact_without_fingerprints_fails(self):
        # The gate must never vacuously pass against a stale artifact
        # that predates the fingerprint column.
        committed = [{"backend": "local", "workers": 1}]
        fresh = [_row()]
        failures = compare_rows(committed, fresh)
        assert len(failures) == 1
        assert "no 'fingerprint' column" in failures[0]


class TestCheckArtifact:
    def test_round_trip_through_files(self, tmp_path):
        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        committed.write_text(json.dumps([_row()]))
        fresh.write_text(json.dumps([_row()]))
        assert check_artifact(committed, fresh) == []
        fresh.write_text(json.dumps([_row(fingerprint="cc" * 32)]))
        assert len(check_artifact(committed, fresh)) == 1

    def test_real_committed_artifacts_self_compare(self):
        # The artifacts committed at the repo root must always pass
        # the gate against themselves (and must carry fingerprints —
        # a regenerated artifact that lost the column would disarm CI).
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for name in ("BENCH_fig2.json", "BENCH_ingest.json",
                     "BENCH_codec.json"):
            artifact = root / name
            if not artifact.exists():
                pytest.skip(f"{name} not present")
            assert check_artifact(artifact, artifact) == []
