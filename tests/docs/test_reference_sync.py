"""Drift gates for the reference pages under ``docs/``.

Documentation that can drift silently is worse than none, so the
reference pages are held to the code by tier-1 tests:

* the env-knob table in ``docs/reference/env-knobs.md`` must name
  exactly the ``REPRO_*`` variables the library reads — a knob added
  to ``src/`` without a row here (or a row whose knob was removed)
  fails the suite;
* the backend-spec table must cover every registry name and every
  parameterized spec form ``ensure_backend_spec`` accepts, and its
  example specs must actually validate;
* every relative link in ``README.md`` and ``docs/`` must resolve to
  a real file.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.storage.backend import BACKEND_NAMES, ensure_backend_spec

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"
KNOBS = DOCS / "reference" / "env-knobs.md"


def _src_knobs() -> set[str]:
    """Every REPRO_* name readable anywhere under src/."""
    found = set()
    for path in (REPO / "src").rglob("*.py"):
        found.update(re.findall(r"REPRO_[A-Z_]+", path.read_text()))
    return found


def _documented_knobs() -> set[str]:
    """Knob names from the reference table's rows (not prose)."""
    found = set()
    for line in KNOBS.read_text().splitlines():
        match = re.match(r"\|\s*`(REPRO_[A-Z_]+)`", line)
        if match:
            found.add(match.group(1))
    return found


class TestKnobTable:
    def test_table_matches_src_exactly(self):
        src = _src_knobs()
        documented = _documented_knobs()
        assert documented == src, (
            f"docs/reference/env-knobs.md table drifted: "
            f"missing rows for {sorted(src - documented)}, "
            f"stale rows for {sorted(documented - src)}")

    def test_fault_seed_is_footnoted_not_tabled(self):
        # REPRO_FAULT_SEED is a tests/CI convention, not a library
        # knob: it must be explained but must not claim a table row.
        text = KNOBS.read_text()
        assert "REPRO_FAULT_SEED" in text
        assert "REPRO_FAULT_SEED" not in _documented_knobs()
        assert not any("REPRO_FAULT_SEED" in p.read_text()
                       for p in (REPO / "src").rglob("*.py"))


class TestBackendSpecs:
    def test_registry_names_documented(self):
        text = KNOBS.read_text()
        for name in BACKEND_NAMES:
            assert re.search(rf"`{name}", text), \
                f"backend {name!r} missing from env-knobs.md"

    def test_spec_forms_documented(self):
        text = KNOBS.read_text()
        for form in ("object[:durable]", "striped:<n>[:<child>]",
                     "faulty:<seed>[:<inner>]"):
            assert form in text, \
                f"spec form {form!r} missing from env-knobs.md"

    def test_documented_examples_validate(self):
        # Every concrete backtick-quoted spec in the docs must be a
        # spec ensure_backend_spec actually accepts.
        text = KNOBS.read_text()
        specs = re.findall(
            r"`((?:local|durable|memory|object|striped|faulty)"
            r"(?::[A-Za-z0-9:]+)?)`", text)
        assert specs
        for spec in specs:
            assert ensure_backend_spec(spec) == spec


LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def _markdown_files():
    return [REPO / "README.md", *sorted(DOCS.rglob("*.md"))]


@pytest.mark.parametrize("path", _markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(path):
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # same-page anchor
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), \
            f"{path.relative_to(REPO)} links to missing {target!r}"
