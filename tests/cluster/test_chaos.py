"""Chaos suite: the replicated cluster under seeded fault schedules.

Property-style sweeps over node counts x replication factors x
deterministic fault schedules.  Every node (and every replica) runs its
own :class:`FaultInjectingBackend` with a seed derived from the sweep
seed and the node's name, so a cell replays the identical failure
sequence on every run — writes that tear mid-append, barriers that
error, whole nodes that go dark — and the suite asserts the three
cluster invariants the coordinator promises:

* **one fingerprint** — after every fault is retried through, the
  logical cluster fingerprint equals the fault-free reference, across
  every (nodes, replication, seed) cell, after killing a node (with a
  surviving quorum), and across a rebalance;
* **no partial versions** — at any observation point, every replica of
  every band agrees on every array's version list (the settle-all-
  then-compensate rollback never leaves a replica out of step);
* **exact counter accounting** — ``replica_writes`` counts exactly the
  redundant copies of successful cluster writes, ``failovers`` is zero
  until a copy is dead and positive after, and every injected fault
  the backends report was scheduled.

``REPRO_FAULT_SEED`` (the CI chaos matrix) adds one more seed to the
sweep without touching the defaults.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator
from repro.core.errors import ReproError, StorageError
from repro.core.schema import ArraySchema
from repro.storage import FaultInjectingBackend, InMemoryBackend

SHAPE = (12, 8)

#: Always-on sweep seeds (kept small so the tier-1 run stays fast);
#: the CI chaos job extends the sweep via REPRO_FAULT_SEED.
BASE_SEEDS = (5, 11)

GRID = [(2, 1), (3, 2), (4, 3)]


def _seeds() -> list[int]:
    seeds = list(BASE_SEEDS)
    env = os.environ.get("REPRO_FAULT_SEED")
    if env:
        extra = int(env)
        if extra not in seeds:
            seeds.append(extra)
    return seeds


def _derived_seed(seed: int, key: str) -> int:
    """A per-node fault seed: deterministic, distinct across nodes."""
    if seed == 0:
        return 0
    derived = (seed * 1000003 + zlib.crc32(key.encode())) % (1 << 31)
    return derived or 1


def _fault_factory(seed: int):
    """A backend factory giving every node its own seeded schedule.

    The key is the node directory relative to the cluster root (e.g.
    ``cluster/node2-r1`` or ``gen1/node0``), so the schedule depends
    only on the sweep seed and the cluster topology — never on where
    pytest put the tmp dir.  A node *rebuilt* at the same path (a
    retried rebalance) comes up fault-free: replacement hardware is
    healthy, and that is also what makes every retry loop terminate.
    """
    counts: dict[str, int] = {}

    def factory(root):
        key = f"{root.parent.parent.name}/{root.parent.name}"
        attempt = counts.get(key, 0)
        counts[key] = attempt + 1
        derived = _derived_seed(seed, key) if attempt == 0 else 0
        return FaultInjectingBackend(InMemoryBackend(), seed=derived)

    return factory


def _retry(op, attempts: int = 120):
    """Drive one cluster write through its finite fault schedule.

    Termination is provable, not hopeful: a failed attempt always
    means at least one scheduled fault *fired*, every (kind, index)
    fires at most once per backend (operation counters are monotonic),
    and a fleet of B backends schedules at most 9B faults — so the
    attempt budget (covering the largest sweep fleet, 12 backends)
    strictly outlasts any schedule.
    """
    last: ReproError | None = None
    for _ in range(attempts):
        try:
            return op()
        except ReproError as exc:
            last = exc
    raise AssertionError(
        f"operation never recovered from injected faults: {last}")


def _workload(cluster: ClusterCoordinator) -> dict[str, np.ndarray]:
    """The deterministic write mix every cell replays: inserts, a
    branch, and a follow-on insert on the branch (5 cluster versions).
    Returns the expected latest contents per array."""
    rng = np.random.default_rng(20120401)
    schema = ArraySchema.simple(SHAPE, dtype=np.int32)
    cluster.create_array("A", schema)
    data = rng.integers(0, 100, SHAPE).astype(np.int32)
    for step in range(3):
        payload = data + step
        _retry(lambda: cluster.insert("A", payload))
    _retry(lambda: cluster.branch("A", 2, "B"))
    branch_head = data * 2
    _retry(lambda: cluster.insert("B", branch_head))
    return {"A": data + 2, "B": branch_head}


#: Cluster versions the workload lands: 3 inserts + 1 branch root + 1
#: branch insert.
WORKLOAD_VERSIONS = 5


@pytest.fixture(scope="module")
def reference_fingerprint(tmp_path_factory) -> str:
    """The fault-free cluster fingerprint every chaos cell must hit."""
    cluster = ClusterCoordinator(
        tmp_path_factory.mktemp("reference") / "cluster", nodes=3,
        chunk_bytes=512, backend="memory")
    try:
        _workload(cluster)
        return cluster.fingerprint()
    finally:
        cluster.close()


def _assert_no_partial_versions(cluster: ClusterCoordinator) -> None:
    """Every replica of every band agrees on every version list."""
    for name in cluster.list_arrays():
        lists = {tuple(manager.get_versions(name))
                 for row in cluster.replicas for manager in row}
        assert len(lists) == 1, \
            f"replicas disagree on {name!r} versions: {lists}"


def _assert_faults_were_scheduled(cluster: ClusterCoordinator) -> None:
    """Exact fault accounting: every injected fault was scheduled, and
    the per-backend counters match the injection logs."""
    for row in cluster.replicas:
        for manager in row:
            backend = manager.backend
            assert isinstance(backend, FaultInjectingBackend)
            assert backend.faults_injected == len(backend.injected)
            for kind, index in backend.injected:
                assert index in backend.schedule[kind]


class TestChaosSweep:
    @pytest.mark.parametrize("nodes,replication", GRID)
    @pytest.mark.parametrize("seed", _seeds())
    def test_one_fingerprint_no_partial_versions(
            self, tmp_path, reference_fingerprint, nodes, replication,
            seed):
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=nodes, replication=replication,
            chunk_bytes=512, backend=_fault_factory(seed))
        try:
            heads = _workload(cluster)
            # The survivors serve exactly the fault-free bytes.
            assert cluster.fingerprint() == reference_fingerprint
            for name, expected in heads.items():
                latest = cluster.get_versions(name)[-1]
                np.testing.assert_array_equal(
                    cluster.select(name, latest).single(), expected)
            _assert_no_partial_versions(cluster)
            _assert_faults_were_scheduled(cluster)
            # Exact replication accounting: every successful cluster
            # version landed one redundant copy per extra replica per
            # band — compensated attempts count nothing.
            assert cluster.stats.replica_writes == \
                WORKLOAD_VERSIONS * nodes * (replication - 1)
            # No read ever needed a failover: injected faults target
            # writes, and no copy was dead.
            assert cluster.stats.failovers == 0
        finally:
            cluster.close()

    @pytest.mark.parametrize("seed", _seeds())
    def test_reads_survive_a_dead_node(self, tmp_path,
                                       reference_fingerprint, seed):
        """With replication=2, any single dead host leaves every band
        readable and the fingerprint intact."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=3, replication=2,
            chunk_bytes=512, backend=_fault_factory(seed))
        try:
            _workload(cluster)
            for host in range(cluster.nodes):
                cluster.mark_node_dead(host)
                before = cluster.stats.failovers
                assert cluster.fingerprint() == reference_fingerprint
                assert cluster.stats.failovers > before
                cluster.revive_node(host)
            _assert_no_partial_versions(cluster)
        finally:
            cluster.close()

    @pytest.mark.parametrize("nodes,replication", GRID)
    @pytest.mark.parametrize("seed", _seeds())
    def test_rebalance_under_faults(self, tmp_path,
                                    reference_fingerprint, nodes,
                                    replication, seed):
        """Resharding through faulty substrates either completes with
        an identical fingerprint or aborts without touching the old
        generation — and a retry (onto healthy replacements) lands."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=nodes, replication=replication,
            chunk_bytes=512, backend=_fault_factory(seed))
        try:
            _workload(cluster)
            migrated = _retry(
                lambda: cluster.rebalance(nodes + 1, seed=seed))
            assert cluster.nodes == nodes + 1
            assert migrated > 0
            assert cluster.stats.migrated_chunks == migrated
            assert cluster.fingerprint() == reference_fingerprint
            _assert_no_partial_versions(cluster)
        finally:
            cluster.close()


class TestRepairChaos:
    """Anti-entropy repair under injected faults and mid-repair
    deaths: the one-fingerprint invariant must hold under every
    schedule, and every retry loop must terminate."""

    @pytest.mark.parametrize("nodes,replication",
                             [cell for cell in GRID if cell[1] >= 2])
    @pytest.mark.parametrize("seed", _seeds())
    def test_replacement_resync_under_faults(
            self, tmp_path, reference_fingerprint, nodes, replication,
            seed):
        """A blank replacement repaired through faulty substrates ends
        byte-identical to its peers — the fault-free fingerprint, from
        the repaired copy alone."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=nodes, replication=replication,
            chunk_bytes=512, backend=_fault_factory(seed))
        try:
            _workload(cluster)
            versions_total = sum(len(cluster.get_versions(name))
                                 for name in cluster.list_arrays())
            cluster.replace_replica(0, 0)
            report = _retry(lambda: cluster.repair(0, 0))
            # Retries replay only what is still missing, but the sum
            # over all attempts covers exactly the band's versions.
            assert report["versions"] <= versions_total
            assert cluster.stats.repaired_versions == versions_total
            assert cluster.stats.repairs >= 1
            _retry(lambda: cluster.revive(0, 0))
            for replica in range(1, replication):
                cluster.mark_dead(0, replica)
            assert cluster.fingerprint() == reference_fingerprint
            _assert_no_partial_versions(cluster)
        finally:
            cluster.close()

    def test_peer_dies_mid_repair(self, tmp_path,
                                  reference_fingerprint):
        """The serving peer goes dark *during* the resync; repair
        fails over to the remaining replica and still converges to
        the fault-free fingerprint."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=3, replication=3,
            chunk_bytes=512, backend=_fault_factory(0))
        try:
            _workload(cluster)
            target = cluster.replace_replica(0, 0)
            original = target.replay_version
            state = {"replayed": 0}

            def dies_after_first(*args, **kwargs):
                state["replayed"] += 1
                if state["replayed"] == 2:
                    # The first peer (the digest/read source so far)
                    # goes dark mid-resync.
                    cluster.replicas[0][1].backend.mark_dead()
                return original(*args, **kwargs)

            target.replay_version = dies_after_first
            report = cluster.repair(0, 0)
            assert report["versions"] == sum(
                len(cluster.get_versions(name))
                for name in cluster.list_arrays())
            assert cluster.stats.failovers > 0
            # The repaired copy serves the band alone.
            cluster.mark_dead(0, 1)
            cluster.revive(0, 0)
            cluster.mark_dead(0, 2)
            assert cluster.fingerprint() == reference_fingerprint
            _assert_no_partial_versions(cluster)
        finally:
            cluster.close()


class TestRebalanceChaos:
    """Online rebalance under mid-migration deaths and concurrent
    writes."""

    def test_copy_dies_mid_rebalance(self, tmp_path,
                                     reference_fingerprint):
        """A band copy's substrate dies while its slabs migrate; the
        migration reads fail over to the surviving replica and the
        reshard still lands the fault-free fingerprint."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=3, replication=2,
            chunk_bytes=512, backend=_fault_factory(0))
        try:
            _workload(cluster)
            original = cluster._migrate_version
            state = {"calls": 0}

            def kill_then_migrate(*args, **kwargs):
                state["calls"] += 1
                if state["calls"] == 2:
                    cluster.replicas[0][0].backend.mark_dead()
                return original(*args, **kwargs)

            cluster._migrate_version = kill_then_migrate
            migrated = cluster.rebalance(4, seed=3)
            assert cluster.nodes == 4
            assert migrated > 0
            assert cluster.stats.migrated_chunks == migrated
            assert cluster.stats.failovers > 0
            assert cluster.fingerprint() == reference_fingerprint
            _assert_no_partial_versions(cluster)
        finally:
            cluster.close()

    def test_writes_during_rebalance_are_caught_up(self, tmp_path):
        """A version inserted *between* catch-up passes (the build is
        outside the write lock, so this is legal) must appear in the
        new generation — the copy-then-catch-up loop's whole point."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=2, replication=2,
            chunk_bytes=512, backend="memory")
        try:
            heads = _workload(cluster)
            late = heads["A"] + 77
            original = cluster._sync_generation
            state = {"fired": False}

            def insert_between_passes(fresh, seed):
                changed = original(fresh, seed)
                if not state["fired"]:
                    state["fired"] = True
                    # Fires after the *initial* (unlocked) pass only:
                    # an insert during the final locked pass would be
                    # the deadlock the write lock exists to prevent.
                    cluster.insert("A", late)
                return changed

            cluster._sync_generation = insert_between_passes
            cluster.rebalance(3, seed=1)
            assert state["fired"]
            assert cluster.nodes == 3
            assert cluster.get_versions("A") == [1, 2, 3, 4]
            np.testing.assert_array_equal(
                cluster.select("A", 4).single(), late)
            _assert_no_partial_versions(cluster)
            # The caught-up cluster equals one that took the same
            # writes with no rebalance at all.
            mirror = ClusterCoordinator(
                tmp_path / "mirror", nodes=3, chunk_bytes=512,
                backend="memory")
            try:
                _workload(mirror)
                mirror.insert("A", late)
                assert cluster.fingerprint() == mirror.fingerprint()
            finally:
                mirror.close()
        finally:
            cluster.close()

    def test_lineage_kinds_survive_reshard(self, tmp_path):
        """Post-reshard lineage rows — kinds, parent links, merge
        parents — match pre-reshard byte-for-byte."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=2, replication=2,
            chunk_bytes=512, backend="memory")
        try:
            _workload(cluster)
            cluster.merge([("A", 3), ("B", 2)], "M")
            before = {name: cluster.lineage(name)
                      for name in cluster.list_arrays()}
            fingerprint = cluster.fingerprint()
            cluster.rebalance(4, seed=9)
            after = {name: cluster.lineage(name)
                     for name in cluster.list_arrays()}
            assert after == before
            assert cluster.fingerprint() == fingerprint
            kinds = {row[2] for rows in before.values() for row in rows}
            assert kinds == {"insert", "branch-root", "merge"}
        finally:
            cluster.close()


class TestDeadNodeWrites:
    def test_write_to_dead_node_leaves_no_trace(self, tmp_path):
        """A cluster write that hits a dead copy fails atomically —
        every live replica stays at the old head — and lands cleanly
        after the node revives."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=3, replication=2,
            chunk_bytes=512, backend="memory")
        try:
            heads = _workload(cluster)
            cluster.mark_node_dead(1)
            with pytest.raises(StorageError):
                cluster.insert("A", heads["A"] + 1)
            _assert_no_partial_versions(cluster)
            assert cluster.get_versions("A") == [1, 2, 3]
            cluster.revive_node(1)
            assert cluster.insert("A", heads["A"] + 1) == 4
            np.testing.assert_array_equal(
                cluster.select("A", 4).single(), heads["A"] + 1)
        finally:
            cluster.close()

    def test_quorum_loss_fails_loudly(self, tmp_path):
        """When every copy of a band is dead, reads raise instead of
        serving stale or partial data."""
        cluster = ClusterCoordinator(
            tmp_path / "cluster", nodes=2, replication=2,
            chunk_bytes=512, backend="memory")
        try:
            _workload(cluster)
            cluster.mark_dead(0, 0)
            cluster.mark_dead(0, 1)
            with pytest.raises(StorageError, match="no live replica"):
                cluster.select("A", 1)
        finally:
            cluster.close()
