"""Anti-entropy repair and verified revive (the 24/7-operations story).

A dead mark only ever meant "skip this copy"; the bytes behind it may
have rotted, been wiped, or diverged.  These tests pin the contract
that closes that gap:

* per-copy *logical* digests agree across replicas of a band (and stay
  invariant under per-copy physical reorganization — placement and
  timestamps are explicitly outside the digest);
* ``revive`` / ``revive_node`` verify the digest against live peers
  and either refuse loudly or auto-repair — a data-less replica never
  rejoins rotation silently;
* ``repair`` resyncs a stale or blank copy version-by-version through
  the transactional write path, replays *only* the missing tail of a
  strict-prefix copy, rebuilds a diverged copy from scratch, preserves
  lineage kinds exactly, and proves convergence before returning;
* the ``repairs`` / ``repaired_versions`` / ``repair_bytes`` counters
  account exactly for what was replayed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator
from repro.core.errors import StorageError
from repro.core.schema import ArraySchema

SHAPE = (12, 8)


def _cluster(tmp_path, nodes=3, replication=2) -> ClusterCoordinator:
    return ClusterCoordinator(tmp_path / "cluster", nodes=nodes,
                              replication=replication, chunk_bytes=512,
                              backend="memory")


def _workload(cluster: ClusterCoordinator) -> None:
    """Inserts, a branch, a branch insert, and a merge — every lineage
    kind the catalog knows, so repair has all three to preserve."""
    rng = np.random.default_rng(20120401)
    schema = ArraySchema.simple(SHAPE, dtype=np.int32)
    cluster.create_array("A", schema)
    data = rng.integers(0, 100, SHAPE).astype(np.int32)
    for step in range(3):
        cluster.insert("A", data + step)
    cluster.branch("A", 2, "B")
    cluster.insert("B", data * 2)
    cluster.merge([("A", 3), ("B", 2)], "M")


class TestReplicaDigest:
    def test_digests_agree_across_copies(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            for node in range(cluster.nodes):
                digests = {cluster.replica_digest(node, replica)
                           for replica in range(cluster.replication)}
                assert len(digests) == 1
                for name in cluster.list_arrays():
                    per_array = {
                        cluster.replica_digest(node, replica, name)
                        for replica in range(cluster.replication)}
                    assert len(per_array) == 1
        finally:
            cluster.close()

    def test_digest_invariant_under_reorganization(self, tmp_path):
        """Replica copies legitimately diverge in physical layout (each
        reorganizes independently); the logical digest must not see
        that."""
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            before = cluster.replica_digest(0, 0)
            # Re-layout only one copy of band 0: the copies' physical
            # fingerprints now differ, their logical digests must not.
            cluster.replicas[0][0].reorganize("A", mode="head")
            assert cluster.replica_digest(0, 0) == before
            assert cluster.replica_digest(0, 0) == \
                cluster.replica_digest(0, 1)
        finally:
            cluster.close()

    def test_digest_differs_when_contents_differ(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            cluster.replicas[0][1].delete_version("B", 2)
            assert cluster.replica_digest(0, 1) != \
                cluster.replica_digest(0, 0)
        finally:
            cluster.close()


class TestVerifiedRevive:
    def test_revive_refuses_stale_replica(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            cluster.replace_replica(1, 0)
            with pytest.raises(StorageError, match="is stale"):
                cluster.revive(1, 0)
            # The refusal must not clear the mark.
            assert (1, 0) in set(cluster.dead_replicas())
        finally:
            cluster.close()

    def test_revive_with_repair_resyncs_and_rejoins(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            reference = cluster.fingerprint()
            cluster.replace_replica(1, 0)
            cluster.revive(1, 0, repair=True)
            assert cluster.dead_replicas() == []
            assert cluster.stats.repairs == 1
            # The revived copy alone can serve its band: kill its peer
            # and the fingerprint must still come out fault-free.
            cluster.mark_dead(1, 1)
            assert cluster.fingerprint() == reference
        finally:
            cluster.close()

    def test_revive_of_intact_copy_needs_no_repair(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            cluster.mark_dead(2, 1)
            cluster.revive(2, 1)
            assert cluster.dead_replicas() == []
            assert cluster.stats.repairs == 0
        finally:
            cluster.close()

    def test_revive_node_is_all_or_nothing(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            host = 1
            copies = [(node, replica)
                      for node in range(cluster.nodes)
                      for replica in range(cluster.replication)
                      if cluster.host_of(node, replica) == host]
            assert len(copies) > 1
            cluster.mark_node_dead(host)
            # Rot exactly one of the host's copies.
            node, replica = copies[0]
            cluster.replicas[node][replica].delete_version("M", 2)
            with pytest.raises(StorageError, match="stale copies"):
                cluster.revive_node(host)
            # No mark cleared — not even for the intact copies.
            assert set(copies) <= set(cluster.dead_replicas())
            cluster.revive_node(host, repair=True)
            assert cluster.dead_replicas() == []
            assert cluster.stats.repairs == 1
            assert cluster.stats.repaired_versions == 1
        finally:
            cluster.close()


class TestRepair:
    def test_repair_requires_a_live_peer(self, tmp_path):
        cluster = _cluster(tmp_path, nodes=2, replication=1)
        try:
            _workload(cluster)
            with pytest.raises(StorageError, match="no live peer"):
                cluster.repair(0, 0)
        finally:
            cluster.close()

    def test_blank_replacement_rebuilds_with_exact_counters(
            self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            reference = cluster.fingerprint()
            versions = sum(len(cluster.get_versions(name))
                           for name in cluster.list_arrays())
            band_rows = cluster._partitioners["A"].band_of(1).length
            band_bytes = band_rows * SHAPE[1] * np.dtype(np.int32).itemsize
            cluster.replace_replica(1, 0)
            report = cluster.repair(1, 0)
            assert report == {"versions": versions,
                              "bytes": versions * band_bytes}
            assert cluster.stats.repairs == 1
            assert cluster.stats.repaired_versions == versions
            assert cluster.stats.repair_bytes == versions * band_bytes
            cluster.revive(1, 0)
            cluster.mark_dead(1, 1)
            assert cluster.fingerprint() == reference
        finally:
            cluster.close()

    def test_stale_tail_replays_only_the_missing_versions(
            self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            copy = cluster.replicas[2][1]
            copy.delete_version("A", 3)
            copy.delete_version("B", 2)
            report = cluster.repair(2, 1)
            assert report["versions"] == 2
            assert cluster.stats.repaired_versions == 2
            assert cluster.replica_digest(2, 1) == \
                cluster.replica_digest(2, 0)
        finally:
            cluster.close()

    def test_converged_copy_replays_nothing(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            assert cluster.repair(0, 1) == {"versions": 0, "bytes": 0}
            assert cluster.stats.repairs == 0
        finally:
            cluster.close()

    def test_diverged_copy_is_rebuilt_from_scratch(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            copy = cluster.replicas[0][1]
            # Same version count, different bytes: a strict prefix no
            # longer matches, so the copy must be wiped and rebuilt.
            copy.delete_version("B", 2)
            band = copy.select("B", 1).single()
            copy.insert("B", band + 999)
            report = cluster.repair(0, 1)
            assert report["versions"] == len(cluster.get_versions("B"))
            assert cluster.replica_digest(0, 1) == \
                cluster.replica_digest(0, 0)
        finally:
            cluster.close()

    def test_repair_drops_arrays_deleted_cluster_wide(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            # The copy keeps "M" while the cluster drops it: simulate
            # by re-creating the extra array on the copy after the
            # cluster-wide delete.
            record = cluster.replicas[0][1].catalog.get_array("M")
            schema = record.schema
            data = cluster.replicas[0][1].select("M", 1)
            cluster.delete_array("M")
            cluster.replicas[0][1].create_array("M", schema)
            cluster.replicas[0][1].insert("M", data)
            report = cluster.repair(0, 1)
            assert report == {"versions": 0, "bytes": 0}
            assert "M" not in cluster.replicas[0][1].list_arrays()
            assert cluster.replica_digest(0, 1) == \
                cluster.replica_digest(0, 0)
        finally:
            cluster.close()

    def test_repair_preserves_lineage_kinds(self, tmp_path):
        cluster = _cluster(tmp_path)
        try:
            _workload(cluster)
            cluster.replace_replica(0, 0)
            cluster.revive(0, 0, repair=True)
            repaired = cluster.replicas[0][0]
            peer = cluster.replicas[0][1]
            for name in cluster.list_arrays():
                r_id = repaired.catalog.get_array(name).array_id
                p_id = peer.catalog.get_array(name).array_id
                repaired_rows = [
                    (row.version, row.parent_version, row.kind,
                     repaired.catalog.merge_parents_of(r_id, row.version))
                    for row in repaired.catalog.get_versions(r_id)]
                peer_rows = [
                    (row.version, row.parent_version, row.kind,
                     peer.catalog.merge_parents_of(p_id, row.version))
                    for row in peer.catalog.get_versions(p_id)]
                assert repaired_rows == peer_rows
            kinds = {row[2] for name in cluster.list_arrays()
                     for row in cluster.lineage(name)}
            assert kinds == {"insert", "branch-root", "merge"}
        finally:
            cluster.close()
