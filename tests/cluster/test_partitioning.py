"""Tests for range partitioning and rebalance-plan geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import RangePartitioner, rebalance_plan
from repro.core.errors import DimensionError, StorageError


class TestBands:
    def test_even_split(self):
        partitioner = RangePartitioner((12, 8), nodes=3)
        assert [(b.lo, b.hi) for b in partitioner.bands] == \
            [(0, 3), (4, 7), (8, 11)]

    def test_uneven_split_spreads_remainder(self):
        partitioner = RangePartitioner((10, 8), nodes=3)
        lengths = [band.length for band in partitioner.bands]
        assert lengths == [4, 3, 3]
        assert sum(lengths) == 10

    def test_partition_other_axis(self):
        partitioner = RangePartitioner((4, 10), nodes=2, axis=1)
        assert partitioner.local_shape(0) == (4, 5)
        assert partitioner.local_shape(1) == (4, 5)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(StorageError):
            RangePartitioner((2, 100), nodes=3)

    def test_invalid_axis(self):
        with pytest.raises(DimensionError):
            RangePartitioner((4, 4), nodes=2, axis=5)

    def test_zero_nodes(self):
        with pytest.raises(StorageError):
            RangePartitioner((4, 4), nodes=0)


class TestRouting:
    @pytest.fixture
    def partitioner(self) -> RangePartitioner:
        return RangePartitioner((12, 6), nodes=3)

    def test_node_for_cell(self, partitioner):
        assert partitioner.node_for_cell((0, 0)) == 0
        assert partitioner.node_for_cell((3, 5)) == 0
        assert partitioner.node_for_cell((4, 0)) == 1
        assert partitioner.node_for_cell((11, 5)) == 2

    def test_cell_out_of_range(self, partitioner):
        with pytest.raises(DimensionError):
            partitioner.node_for_cell((12, 0))

    def test_to_local(self, partitioner):
        assert partitioner.to_local(1, (4, 3)) == (0, 3)
        assert partitioner.to_local(2, (11, 0)) == (3, 0)

    def test_bands_overlapping_one(self, partitioner):
        hits = partitioner.bands_overlapping((1, 0), (2, 5))
        assert [band.node for band in hits] == [0]

    def test_bands_overlapping_straddle(self, partitioner):
        hits = partitioner.bands_overlapping((3, 0), (8, 5))
        assert [band.node for band in hits] == [0, 1, 2]

    def test_clip_region(self, partitioner):
        band = partitioner.band_of(1)  # rows 4..7
        lo, hi = partitioner.clip_region(band, (3, 1), (8, 4))
        assert lo == (0, 1)
        assert hi == (3, 4)

    @settings(max_examples=50, deadline=None)
    @given(extent=st.integers(4, 200), nodes=st.integers(1, 4),
           data=st.data())
    def test_bands_cover_extent_exactly(self, extent, nodes, data):
        partitioner = RangePartitioner((extent, 4), nodes=nodes)
        covered = []
        for band in partitioner.bands:
            covered.extend(range(band.lo, band.hi + 1))
        assert covered == list(range(extent))
        # Every cell routes to the band containing it.
        cell = data.draw(st.integers(0, extent - 1))
        node = partitioner.node_for_cell((cell, 0))
        band = partitioner.band_of(node)
        assert band.lo <= cell <= band.hi


class TestPartitionRoundtrip:
    """Partition → reassemble is the identity for random schemas."""

    @settings(max_examples=50, deadline=None)
    @given(extent=st.integers(4, 60), other=st.integers(1, 6),
           nodes=st.integers(1, 4), axis=st.integers(0, 1),
           seed=st.integers(0, 2**31 - 1))
    def test_partition_then_reassemble_identity(self, extent, other,
                                                nodes, axis, seed):
        shape = (extent, other) if axis == 0 else (other, extent)
        partitioner = RangePartitioner(shape, nodes=nodes, axis=axis)
        data = np.random.default_rng(seed).integers(
            0, 1000, shape).astype(np.int32)
        # Partition: slice each band out in its local frame ...
        parts = []
        for band in partitioner.bands:
            index = tuple(
                np.s_[band.lo:band.hi + 1] if dim == axis else np.s_[:]
                for dim in range(len(shape)))
            part = data[index]
            assert part.shape == partitioner.local_shape(band.node)
            parts.append(part)
        # ... reassemble: concatenation along the axis restores the
        # original exactly (disjoint bands, full cover, stable order).
        np.testing.assert_array_equal(
            np.concatenate(parts, axis=axis), data)


class TestRebalancePlan:
    def test_slabs_are_disjoint_and_cover_the_domain(self):
        old = RangePartitioner((10, 4), nodes=3)
        new = RangePartitioner((10, 4), nodes=4)
        plan = rebalance_plan(old, new)
        rows = sorted(row for slab in plan
                      for row in range(slab.lo, slab.hi + 1))
        assert rows == list(range(10))

    def test_slabs_route_between_owning_bands(self):
        old = RangePartitioner((12, 4), nodes=2)
        new = RangePartitioner((12, 4), nodes=3)
        for slab in rebalance_plan(old, new):
            source = old.band_of(slab.source)
            target = new.band_of(slab.target)
            assert source.lo <= slab.lo <= slab.hi <= source.hi
            assert target.lo <= slab.lo <= slab.hi <= target.hi

    def test_deterministic_for_a_fixed_seed(self):
        old = RangePartitioner((40, 4), nodes=3)
        new = RangePartitioner((40, 4), nodes=5)
        assert rebalance_plan(old, new, seed=7) == \
            rebalance_plan(old, new, seed=7)
        # A different seed permutes the schedule without changing the
        # set of moves.
        other = rebalance_plan(old, new, seed=8)
        assert sorted(other, key=lambda s: (s.lo, s.hi)) == \
            sorted(rebalance_plan(old, new, seed=7),
                   key=lambda s: (s.lo, s.hi))

    def test_mismatched_geometry_rejected(self):
        with pytest.raises(StorageError, match="shapes"):
            rebalance_plan(RangePartitioner((10, 4), nodes=2),
                           RangePartitioner((12, 4), nodes=2))
        with pytest.raises(StorageError, match="axes"):
            rebalance_plan(RangePartitioner((10, 10), nodes=2, axis=0),
                           RangePartitioner((10, 10), nodes=2, axis=1))

    @settings(max_examples=60, deadline=None)
    @given(extent=st.integers(6, 120), old_nodes=st.integers(1, 6),
           new_nodes=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_plan_properties_hold_for_random_geometries(
            self, extent, old_nodes, new_nodes, seed):
        old = RangePartitioner((extent, 3), nodes=old_nodes)
        new = RangePartitioner((extent, 3), nodes=new_nodes)
        plan = rebalance_plan(old, new, seed=seed)
        # Deterministic for a fixed seed.
        assert plan == rebalance_plan(old, new, seed=seed)
        # Disjoint slabs covering the axis exactly once.
        rows = sorted(row for slab in plan
                      for row in range(slab.lo, slab.hi + 1))
        assert rows == list(range(extent))
        # Each slab is owned by its source and destined for its target.
        for slab in plan:
            assert old.band_of(slab.source).lo <= slab.lo
            assert slab.hi <= old.band_of(slab.source).hi
            assert new.band_of(slab.target).lo <= slab.lo
            assert slab.hi <= new.band_of(slab.target).hi
