"""Tests for range partitioning geometry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import RangePartitioner
from repro.core.errors import DimensionError, StorageError


class TestBands:
    def test_even_split(self):
        partitioner = RangePartitioner((12, 8), nodes=3)
        assert [(b.lo, b.hi) for b in partitioner.bands] == \
            [(0, 3), (4, 7), (8, 11)]

    def test_uneven_split_spreads_remainder(self):
        partitioner = RangePartitioner((10, 8), nodes=3)
        lengths = [band.length for band in partitioner.bands]
        assert lengths == [4, 3, 3]
        assert sum(lengths) == 10

    def test_partition_other_axis(self):
        partitioner = RangePartitioner((4, 10), nodes=2, axis=1)
        assert partitioner.local_shape(0) == (4, 5)
        assert partitioner.local_shape(1) == (4, 5)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(StorageError):
            RangePartitioner((2, 100), nodes=3)

    def test_invalid_axis(self):
        with pytest.raises(DimensionError):
            RangePartitioner((4, 4), nodes=2, axis=5)

    def test_zero_nodes(self):
        with pytest.raises(StorageError):
            RangePartitioner((4, 4), nodes=0)


class TestRouting:
    @pytest.fixture
    def partitioner(self) -> RangePartitioner:
        return RangePartitioner((12, 6), nodes=3)

    def test_node_for_cell(self, partitioner):
        assert partitioner.node_for_cell((0, 0)) == 0
        assert partitioner.node_for_cell((3, 5)) == 0
        assert partitioner.node_for_cell((4, 0)) == 1
        assert partitioner.node_for_cell((11, 5)) == 2

    def test_cell_out_of_range(self, partitioner):
        with pytest.raises(DimensionError):
            partitioner.node_for_cell((12, 0))

    def test_to_local(self, partitioner):
        assert partitioner.to_local(1, (4, 3)) == (0, 3)
        assert partitioner.to_local(2, (11, 0)) == (3, 0)

    def test_bands_overlapping_one(self, partitioner):
        hits = partitioner.bands_overlapping((1, 0), (2, 5))
        assert [band.node for band in hits] == [0]

    def test_bands_overlapping_straddle(self, partitioner):
        hits = partitioner.bands_overlapping((3, 0), (8, 5))
        assert [band.node for band in hits] == [0, 1, 2]

    def test_clip_region(self, partitioner):
        band = partitioner.band_of(1)  # rows 4..7
        lo, hi = partitioner.clip_region(band, (3, 1), (8, 4))
        assert lo == (0, 1)
        assert hi == (3, 4)

    @settings(max_examples=50, deadline=None)
    @given(extent=st.integers(4, 200), nodes=st.integers(1, 4),
           data=st.data())
    def test_bands_cover_extent_exactly(self, extent, nodes, data):
        partitioner = RangePartitioner((extent, 4), nodes=nodes)
        covered = []
        for band in partitioner.bands:
            covered.extend(range(band.lo, band.hi + 1))
        assert covered == list(range(extent))
        # Every cell routes to the band containing it.
        cell = data.draw(st.integers(0, extent - 1))
        node = partitioner.node_for_cell((cell, 0))
        band = partitioner.band_of(node)
        assert band.lo <= cell <= band.hi
