"""Tests for the multi-node coordinator (Section II's distribution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator
from repro.core.errors import StorageError
from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.storage import InMemoryBackend


@pytest.fixture
def cluster(tmp_path) -> ClusterCoordinator:
    return ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=1024)


@pytest.fixture
def loaded(cluster, rng):
    schema = ArraySchema.simple((12, 8), dtype=np.int32)
    cluster.create_array("A", schema)
    versions = []
    data = rng.integers(0, 100, (12, 8)).astype(np.int32)
    for _ in range(3):
        versions.append(data)
        cluster.insert("A", data)
        data = data + 1
    return cluster, versions


class TestLifecycle:
    def test_insert_select_roundtrip(self, loaded):
        cluster, versions = loaded
        for number, expected in enumerate(versions, 1):
            out = cluster.select("A", number)
            np.testing.assert_array_equal(out.single(), expected)

    def test_versions_consistent(self, loaded):
        cluster, _ = loaded
        assert cluster.get_versions("A") == [1, 2, 3]

    def test_list_and_delete(self, loaded):
        cluster, _ = loaded
        assert cluster.list_arrays() == ["A"]
        cluster.delete_array("A")
        assert cluster.list_arrays() == []
        with pytest.raises(StorageError):
            cluster.select("A", 1)

    def test_unregistered_array(self, cluster):
        with pytest.raises(StorageError):
            cluster.get_versions("ghost")

    def test_each_node_stores_its_band_only(self, loaded):
        cluster, _ = loaded
        # 12 rows over 3 nodes: each node's partition is 4x8.
        for manager in cluster.managers:
            record = manager.catalog.get_array("A")
            assert record.schema.shape == (4, 8)

    def test_nodes_encode_independently(self, loaded):
        cluster, _ = loaded
        # Every node delta-encodes its own partition: version 2 chunks
        # are deltas on every node.
        for manager in cluster.managers:
            record = manager.catalog.get_array("A")
            chunks = manager.catalog.chunks_for_version(record.array_id, 2)
            assert chunks
            assert any(chunk.is_delta for chunk in chunks)


class TestRouting:
    def test_region_within_one_band_touches_one_node(self, loaded):
        cluster, versions = loaded
        for stats in cluster.node_stats():
            stats.reset()
        out = cluster.select_region("A", 3, (0, 0), (3, 7))
        np.testing.assert_array_equal(out.single(), versions[2][0:4, :])
        reads = [stats.chunks_read for stats in cluster.node_stats()]
        assert reads[0] > 0
        assert reads[1] == 0
        assert reads[2] == 0

    def test_region_straddling_bands(self, loaded):
        cluster, versions = loaded
        out = cluster.select_region("A", 2, (2, 1), (9, 6))
        np.testing.assert_array_equal(out.single(),
                                      versions[1][2:10, 1:7])

    def test_single_cell(self, loaded):
        cluster, versions = loaded
        out = cluster.select_region("A", 1, (7, 3), (7, 3))
        assert out.single()[0, 0] == versions[0][7, 3]

    def test_stacked_select(self, loaded):
        cluster, versions = loaded
        stack = cluster.select_versions("A", [1, 3])
        assert stack.shape == (2, 12, 8)
        np.testing.assert_array_equal(stack[1], versions[2])


class TestMaintenance:
    def test_stored_bytes_sums_nodes(self, loaded):
        cluster, _ = loaded
        total = cluster.stored_bytes("A")
        assert total == sum(manager.stored_bytes("A")
                            for manager in cluster.managers)
        assert total > 0

    def test_reorganize_all_nodes(self, loaded):
        cluster, versions = loaded
        cluster.reorganize("A", mode="head")
        for manager in cluster.managers:
            record = manager.catalog.get_array("A")
            newest = manager.catalog.chunks_for_version(record.array_id, 3)
            assert all(not chunk.is_delta for chunk in newest)
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                cluster.select("A", number).single(), expected)


class TestMultiAttribute:
    def test_roundtrip(self, cluster, rng):
        schema = ArraySchema(
            dimensions=(Dimension("I", 0, 11), Dimension("J", 0, 7)),
            attributes=(Attribute("wind", np.float32),
                        Attribute("pressure", np.int32)),
        )
        cluster.create_array("W", schema)
        from repro.core.array import ArrayData

        wind = rng.normal(0, 10, (12, 8)).astype(np.float32)
        pressure = rng.integers(900, 1100, (12, 8)).astype(np.int32)
        cluster.insert("W", ArrayData(schema, {"wind": wind,
                                               "pressure": pressure}))
        out = cluster.select("W", 1)
        np.testing.assert_array_equal(out.attribute("wind"), wind)
        np.testing.assert_array_equal(out.attribute("pressure"), pressure)


class TestInMemoryCluster:
    """End-to-end cluster runs on per-node in-memory backends."""

    @pytest.fixture
    def mem_cluster(self, tmp_path) -> ClusterCoordinator:
        return ClusterCoordinator(tmp_path / "cluster", nodes=3,
                                  chunk_bytes=1024, backend="memory")

    def test_end_to_end_zero_disk(self, mem_cluster, tmp_path, rng):
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        mem_cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            mem_cluster.insert("A", data)
            data = data + 1
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                mem_cluster.select("A", number).single(), expected)
        out = mem_cluster.select_region("A", 2, (2, 1), (9, 6))
        np.testing.assert_array_equal(out.single(),
                                      versions[1][2:10, 1:7])
        mem_cluster.reorganize("A", mode="head")
        np.testing.assert_array_equal(
            mem_cluster.select("A", 3).single(), versions[2])
        assert mem_cluster.stored_bytes("A") > 0
        # No node ever touched the disk.
        assert not (tmp_path / "cluster").exists()
        mem_cluster.close()

    def test_nodes_get_independent_backends(self, mem_cluster):
        backends = {id(manager.backend)
                    for manager in mem_cluster.managers}
        assert len(backends) == mem_cluster.nodes

    def test_shared_backend_instance_rejected(self, tmp_path):
        from repro.storage import InMemoryBackend

        with pytest.raises(StorageError):
            ClusterCoordinator(tmp_path, nodes=2,
                               backend=InMemoryBackend())


class TestObjectStoreCluster:
    """Every node runs against its own S3-style object map — the
    deployment shape of a cluster whose nodes each own a bucket
    prefix."""

    def test_end_to_end_and_no_pending_uploads(self, tmp_path, rng):
        from repro.storage import ObjectStoreBackend

        cluster = ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=512,
                                     backend="object", workers=4)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            cluster.insert("A", data)
            data = data + 1
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                cluster.select("A", number).single(), expected)
        for manager in cluster.managers:
            assert isinstance(manager.backend, ObjectStoreBackend)
            # Every committed version finalized its uploads at the
            # barrier; no node is left holding staged parts.
            assert manager.backend.pending_parts() == 0
        assert cluster.stored_bytes("A") > 0
        cluster.close()


class TestClusterBranchMerge:
    @pytest.fixture(params=[0, 4])
    def filled(self, tmp_path, rng, request):
        cluster = ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=512,
                                     backend="memory",
                                     workers=request.param)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            cluster.insert("A", data)
            data = data + 1
        yield cluster, versions
        cluster.close()

    def test_branch_every_node(self, filled):
        cluster, versions = filled
        cluster.branch("A", 2, "B")
        assert cluster.list_arrays() == ["A", "B"]
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[1])
        # The branch keeps evolving independently of the source.
        cluster.insert("B", versions[1] + 10)
        np.testing.assert_array_equal(cluster.select("B", 2).single(),
                                      versions[1] + 10)
        np.testing.assert_array_equal(cluster.select("A", 3).single(),
                                      versions[2])

    def test_merge_every_node(self, filled):
        cluster, versions = filled
        cluster.merge([("A", 1), ("A", 3)], "M")
        assert cluster.get_versions("M") == [1, 2]
        np.testing.assert_array_equal(cluster.select("M", 1).single(),
                                      versions[0])
        np.testing.assert_array_equal(cluster.select("M", 2).single(),
                                      versions[2])

    def test_merge_requires_two_parents(self, filled):
        cluster, _ = filled
        with pytest.raises(StorageError):
            cluster.merge([("A", 1)], "M")
        assert cluster.list_arrays() == ["A"]

    def test_branch_onto_existing_name_rejected_without_damage(
            self, filled):
        cluster, versions = filled
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("B", schema)
        cluster.insert("B", versions[0] * 2)
        with pytest.raises(StorageError):
            cluster.branch("A", 1, "B")
        # The pre-existing B survives untouched on every node.
        assert cluster.list_arrays() == ["A", "B"]
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[0] * 2)

    def test_merge_onto_existing_name_rejected_without_damage(
            self, filled):
        cluster, versions = filled
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("B", schema)
        cluster.insert("B", versions[0] * 2)
        with pytest.raises(StorageError):
            cluster.merge([("A", 1), ("A", 2)], "B")
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[0] * 2)

    def test_insert_rollback_waits_for_stragglers(self, tmp_path, rng):
        """A fast-failing node must not let a slow node's insert land
        after compensation ran — rollback waits for every node."""
        import time

        cluster = ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=512,
                                     backend="memory", workers=4)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        cluster.insert("A", data)

        fast_fail = cluster.managers[0]
        slow = cluster.managers[2]
        original_fail = fast_fail.insert
        original_slow = slow.insert

        def failing_insert(*args, **kwargs):
            raise StorageError("node down")

        def slow_insert(*args, **kwargs):
            time.sleep(0.05)
            return original_slow(*args, **kwargs)

        fast_fail.insert = failing_insert
        slow.insert = slow_insert
        with pytest.raises(StorageError):
            cluster.insert("A", data + 1)
        fast_fail.insert = original_fail
        slow.insert = original_slow

        for manager in cluster.managers:
            assert manager.get_versions("A") == [1]
        assert cluster.insert("A", data + 1) == 2
        cluster.close()

    def test_branch_onto_unregistered_node_array_rejected(self, filled):
        """Node catalogs may hold arrays the session-scoped registry
        has never seen; branch/merge must not destroy them."""
        cluster, versions = filled
        schema = ArraySchema.simple((4, 8), dtype=np.int32)
        for manager in cluster.managers:  # bypass the coordinator
            manager.create_array("B", schema)
            manager.insert("B", np.ones((4, 8), dtype=np.int32))
        with pytest.raises(StorageError):
            cluster.branch("A", 1, "B")
        for manager in cluster.managers:
            np.testing.assert_array_equal(
                manager.select("B", 1).single(),
                np.ones((4, 8), dtype=np.int32))

    def test_failed_node_insert_rolls_back_landed_nodes(self, filled):
        cluster, versions = filled
        victim = cluster.managers[-1]
        original = victim.insert

        def failing_insert(*args, **kwargs):
            raise StorageError("node down")

        victim.insert = failing_insert
        with pytest.raises(StorageError):
            cluster.insert("A", versions[-1] + 50)
        victim.insert = original
        # Every node is still at the old head, so the cluster stays in
        # step and the next insert lands cleanly everywhere.
        for manager in cluster.managers:
            assert manager.get_versions("A") == [1, 2, 3]
        assert cluster.insert("A", versions[-1] + 50) == 4
        np.testing.assert_array_equal(cluster.select("A", 4).single(),
                                      versions[-1] + 50)

    def test_failed_branch_leaves_no_node_partial(self, filled):
        cluster, versions = filled
        victim = cluster.managers[-1]
        original = victim.branch

        def failing_branch(*args, **kwargs):
            raise StorageError("node down")

        victim.branch = failing_branch
        with pytest.raises(StorageError):
            cluster.branch("A", 2, "B")
        victim.branch = original
        # No node keeps a partial branch, and the name is reusable.
        for manager in cluster.managers:
            assert manager.list_arrays() == ["A"]
        assert cluster.list_arrays() == ["A"]
        cluster.branch("A", 2, "B")
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[1])


def _assert_no_orphan_rows(manager) -> None:
    """The node catalog holds no version or chunk rows for arrays (or
    versions) that no longer exist — a failed fan-out must compensate
    *transactionally*, not just hide the name."""
    conn = manager.catalog._conn
    orphan_chunks = conn.execute(
        "SELECT COUNT(*) FROM chunks WHERE array_id NOT IN"
        " (SELECT id FROM arrays)").fetchone()[0]
    orphan_versions = conn.execute(
        "SELECT COUNT(*) FROM versions WHERE array_id NOT IN"
        " (SELECT id FROM arrays)").fetchone()[0]
    dangling_chunks = conn.execute(
        "SELECT COUNT(*) FROM chunks c WHERE NOT EXISTS"
        " (SELECT 1 FROM versions v WHERE v.array_id = c.array_id"
        "  AND v.version_num = c.version_num)").fetchone()[0]
    assert orphan_chunks == orphan_versions == dangling_chunks == 0


@pytest.fixture(params=[0, 4])
def replicated(tmp_path, rng, request):
    """A 3-band, replication=2 in-memory cluster holding 3 versions,
    exercised serial and with node fan-out (shared by the replication
    and mid-fan-out-death suites)."""
    cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                 chunk_bytes=512, backend="memory",
                                 workers=request.param)
    schema = ArraySchema.simple((12, 8), dtype=np.int32)
    cluster.create_array("A", schema)
    versions = []
    data = rng.integers(0, 100, (12, 8)).astype(np.int32)
    for _ in range(3):
        versions.append(data)
        cluster.insert("A", data)
        data = data + 1
    yield cluster, versions
    cluster.close()


class TestReplication:
    def test_every_replica_holds_every_version(self, replicated):
        cluster, versions = replicated
        for row in cluster.replicas:
            assert len(row) == 2
            for manager in row:
                assert manager.get_versions("A") == [1, 2, 3]
        # Exact accounting: 3 versions x 3 bands x 1 extra copy.
        assert cluster.stats.replica_writes == 9

    def test_replica_pairs_hold_identical_bands(self, replicated):
        cluster, _ = replicated
        for row in cluster.replicas:
            for version in (1, 2, 3):
                np.testing.assert_array_equal(
                    row[0].select("A", version).single(),
                    row[1].select("A", version).single())

    def test_reads_fail_over_to_live_replica(self, replicated):
        cluster, versions = replicated
        cluster.mark_dead(0, 0)
        before = cluster.stats.failovers
        out = cluster.select_region("A", 3, (0, 0), (3, 7))
        np.testing.assert_array_equal(out.single(), versions[2][0:4, :])
        # Exactly one failover: band 0's dead primary was skipped once.
        assert cluster.stats.failovers == before + 1

    def test_kill_any_single_host_keeps_all_reads_serving(
            self, replicated):
        cluster, versions = replicated
        for host in range(cluster.nodes):
            cluster.mark_node_dead(host)
            for number, expected in enumerate(versions, 1):
                np.testing.assert_array_equal(
                    cluster.select("A", number).single(), expected)
            cluster.revive_node(host)

    def test_chained_declustering_host_map(self, tmp_path):
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     backend="memory")
        cluster.mark_node_dead(1)
        # Host 1 carries band 1's primary and band 0's second copy.
        assert cluster.dead_replicas() == [(0, 1), (1, 0)]
        cluster.revive_node(1)
        assert cluster.dead_replicas() == []
        cluster.close()

    def test_all_replicas_dead_raises(self, replicated):
        cluster, _ = replicated
        cluster.mark_dead(1, 0)
        cluster.mark_dead(1, 1)
        with pytest.raises(StorageError, match="no live replica"):
            cluster.select("A", 1)

    def test_write_with_dead_replica_is_all_or_nothing(self, replicated):
        cluster, versions = replicated
        cluster.mark_dead(2, 1)
        with pytest.raises(StorageError, match="marked dead"):
            cluster.insert("A", versions[-1] + 5)
        for row in cluster.replicas:
            for manager in row:
                assert manager.get_versions("A") == [1, 2, 3]
                _assert_no_orphan_rows(manager)
        cluster.revive(2, 1)
        assert cluster.insert("A", versions[-1] + 5) == 4

    def test_replication_cannot_exceed_nodes(self, tmp_path):
        with pytest.raises(StorageError, match="replication"):
            ClusterCoordinator(tmp_path, nodes=2, replication=3,
                               backend="memory")

    def test_fingerprint_invariant_under_replication(self, tmp_path,
                                                     rng):
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        fingerprints = set()
        for replication in (1, 2, 3):
            cluster = ClusterCoordinator(
                tmp_path / f"r{replication}", nodes=3,
                replication=replication, chunk_bytes=512,
                backend="memory")
            cluster.create_array(
                "A", ArraySchema.simple((12, 8), dtype=np.int32))
            cluster.insert("A", data)
            cluster.insert("A", data + 1)
            fingerprints.add(cluster.fingerprint())
            cluster.close()
        assert len(fingerprints) == 1


class TestMidFanOutDeath:
    """A node dying mid-fan-out: compensation returns every landed
    replica to the old state and leaves no orphan catalog rows."""

    def test_branch_node_death_rolls_back_landed_nodes(self, replicated):
        cluster, versions = replicated
        victim = cluster.replicas[1][1]
        original = victim.branch

        def dying_branch(*args, **kwargs):
            raise StorageError("node down mid-fan-out")

        victim.branch = dying_branch
        with pytest.raises(StorageError):
            cluster.branch("A", 2, "B")
        victim.branch = original
        # Every replica is back at the old head with a clean catalog.
        for row in cluster.replicas:
            for manager in row:
                assert manager.list_arrays() == ["A"]
                assert manager.get_versions("A") == [1, 2, 3]
                _assert_no_orphan_rows(manager)
        # The name stayed free, so the retried branch lands everywhere.
        cluster.branch("A", 2, "B")
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[1])

    def test_merge_node_death_rolls_back_landed_nodes(self, replicated):
        cluster, versions = replicated
        victim = cluster.replicas[2][0]
        original = victim.merge

        def dying_merge(*args, **kwargs):
            raise StorageError("node down mid-fan-out")

        victim.merge = dying_merge
        with pytest.raises(StorageError):
            cluster.merge([("A", 1), ("A", 3)], "M")
        victim.merge = original
        for row in cluster.replicas:
            for manager in row:
                assert manager.list_arrays() == ["A"]
                _assert_no_orphan_rows(manager)
        cluster.merge([("A", 1), ("A", 3)], "M")
        np.testing.assert_array_equal(cluster.select("M", 2).single(),
                                      versions[2])

    def test_insert_node_death_leaves_no_orphan_rows(self, replicated):
        cluster, versions = replicated
        victim = cluster.replicas[0][1]
        original = victim.insert

        def dying_insert(*args, **kwargs):
            raise StorageError("node down mid-fan-out")

        victim.insert = dying_insert
        with pytest.raises(StorageError):
            cluster.insert("A", versions[-1] + 9)
        victim.insert = original
        for row in cluster.replicas:
            for manager in row:
                assert manager.get_versions("A") == [1, 2, 3]
                _assert_no_orphan_rows(manager)
        assert cluster.insert("A", versions[-1] + 9) == 4


class TestArrayLifecycleAtomicity:
    """create/delete are all-or-nothing across the replica grid, like
    the version writes."""

    def test_create_array_with_dead_copy_fails_before_any_copy(
            self, tmp_path):
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     backend="memory")
        cluster.mark_dead(1, 0)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        with pytest.raises(StorageError, match="marked dead"):
            cluster.create_array("A", schema)
        for row in cluster.replicas:
            for manager in row:
                assert manager.list_arrays() == []
        assert cluster.list_arrays() == []
        cluster.revive(1, 0)
        cluster.create_array("A", schema)
        assert cluster.list_arrays() == ["A"]
        cluster.close()

    def test_create_array_mid_grid_failure_rolls_back(self, tmp_path):
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     backend="memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        victim = cluster.replicas[2][0]
        original = victim.create_array

        def refusing_create(*args, **kwargs):
            raise StorageError("catalog refused")

        victim.create_array = refusing_create
        with pytest.raises(StorageError, match="refused"):
            cluster.create_array("A", schema)
        victim.create_array = original
        # No copy keeps the partial array; the name stays usable.
        for row in cluster.replicas:
            for manager in row:
                assert manager.list_arrays() == []
        cluster.create_array("A", schema)
        assert cluster.list_arrays() == ["A"]
        cluster.close()

    def test_delete_array_converges_over_retries(self, tmp_path, rng):
        """A copy whose *catalog* refuses the delete leaves a
        retryable state: every other copy is still attempted, the name
        stays registered, already-deleted copies count as done, and
        the retry finishes the job."""
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     chunk_bytes=512, backend="memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        cluster.insert("A",
                       rng.integers(0, 9, (12, 8)).astype(np.int32))
        victim = cluster.replicas[1][1]
        original = victim.delete_array

        def refusing_delete(name):
            raise StorageError("catalog refused the delete")

        victim.delete_array = refusing_delete
        with pytest.raises(StorageError, match="refused"):
            cluster.delete_array("A")
        victim.delete_array = original
        # Every healthy copy already dropped it; the sick one did not,
        # and the name is still registered so the delete can converge.
        assert cluster.list_arrays() == ["A"]
        assert victim.list_arrays() == ["A"]
        cluster.delete_array("A")
        assert cluster.list_arrays() == []
        for row in cluster.replicas:
            for manager in row:
                assert manager.list_arrays() == []
        cluster.close()

    def test_delete_array_with_dead_copy_fails_untouched(self, tmp_path,
                                                         rng):
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     chunk_bytes=512, backend="memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 9, (12, 8)).astype(np.int32)
        cluster.insert("A", data)
        cluster.mark_dead(0, 1)
        with pytest.raises(StorageError, match="marked dead"):
            cluster.delete_array("A")
        # Nothing was deleted anywhere; the array still serves.
        np.testing.assert_array_equal(cluster.select("A", 1).single(),
                                      data)
        cluster.revive(0, 1)
        cluster.delete_array("A")
        assert cluster.list_arrays() == []
        cluster.close()


class _RecordingBackend(InMemoryBackend):
    """An in-memory backend that remembers whether it was closed."""

    def __init__(self):
        super().__init__()
        self.closed = False

    def close(self):
        self.closed = True
        super().close()


def _recording_factory(built, fail_at=None):
    """A backend factory appending each build to ``built`` and raising
    once ``fail_at`` backends exist."""

    def factory(root):
        if fail_at is not None and len(built) == fail_at:
            raise StorageError(f"node {fail_at} refused to boot")
        backend = _RecordingBackend()
        built.append(backend)
        return backend

    return factory


class TestManagerLifecycleCleanup:
    """The coordinator releases every per-node manager it built —
    including when construction itself fails partway."""

    def test_construction_failure_closes_built_managers(self, tmp_path):
        built = []
        with pytest.raises(StorageError, match="refused to boot"):
            ClusterCoordinator(tmp_path, nodes=2, replication=2,
                               backend=_recording_factory(built,
                                                          fail_at=3))
        # Three managers came up before the fourth failed; all three
        # were closed again (no leaked executors or SQLite handles).
        assert len(built) == 3
        assert all(backend.closed for backend in built)

    def test_close_reaches_every_replica(self, tmp_path):
        built = []
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     backend=_recording_factory(built))
        assert len(built) == 6
        cluster.close()
        assert all(backend.closed for backend in built)

    def test_construction_error_not_masked_by_close_failure(
            self, tmp_path):
        """The caller must see why construction sank, even when
        cleaning up a built manager fails too."""
        calls = []

        class ExplodingClose(InMemoryBackend):
            def close(self):
                raise RuntimeError("close exploded")

        def factory(root):
            if len(calls) == 2:
                raise StorageError("node 2 refused to boot")
            calls.append(root)
            return ExplodingClose()

        with pytest.raises(StorageError, match="refused to boot"):
            ClusterCoordinator(tmp_path, nodes=3, backend=factory)


class TestRebalance:
    @pytest.fixture
    def grown(self, tmp_path, rng):
        cluster = ClusterCoordinator(tmp_path, nodes=3, replication=2,
                                     chunk_bytes=512, backend="memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            cluster.insert("A", data)
            data = data + 1
        cluster.branch("A", 2, "B")
        yield cluster, versions
        cluster.close()

    def test_fingerprint_identical_across_reshard(self, grown):
        cluster, versions = grown
        fingerprint = cluster.fingerprint()
        migrated = cluster.rebalance(4)
        assert cluster.nodes == 4
        assert migrated > 0
        assert cluster.stats.migrated_chunks == migrated
        assert cluster.fingerprint() == fingerprint
        # Shrinking back is a reshard too, and still byte-identical.
        cluster.rebalance(2)
        assert cluster.nodes == 2
        assert cluster.fingerprint() == fingerprint
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                cluster.select("A", number).single(), expected)
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[1])

    def test_cluster_keeps_growing_after_reshard(self, grown):
        cluster, versions = grown
        cluster.rebalance(4)
        assert cluster.insert("A", versions[-1] + 7) == 4
        np.testing.assert_array_equal(cluster.select("A", 4).single(),
                                      versions[-1] + 7)
        # New bands partition 12 rows over 4 nodes.
        for manager in cluster.managers:
            assert manager.catalog.get_array("A").schema.shape == (3, 8)

    def test_rebalance_replays_identically_onto_disk(self, tmp_path,
                                                     rng):
        """On a disk-backed cluster the old generation's node roots are
        released and removed once the new generation is adopted."""
        cluster = ClusterCoordinator(tmp_path / "cl", nodes=3,
                                     chunk_bytes=512)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        cluster.insert("A", data)
        fingerprint = cluster.fingerprint()
        cluster.rebalance(2)
        assert sorted(p.name for p in (tmp_path / "cl").iterdir()) == \
            ["gen1"]
        assert cluster.fingerprint() == fingerprint
        cluster.rebalance(4)
        assert sorted(p.name for p in (tmp_path / "cl").iterdir()) == \
            ["gen2"]
        assert cluster.fingerprint() == fingerprint
        np.testing.assert_array_equal(cluster.select("A", 1).single(),
                                      data)
        cluster.close()

    def test_rebalance_reads_around_dead_copies(self, grown):
        """Evacuating a cluster with a dead host works while every
        band keeps a live copy (quorum reads feed the migration)."""
        cluster, versions = grown
        fingerprint = cluster.fingerprint()
        cluster.mark_node_dead(0)
        cluster.rebalance(4)
        assert cluster.fingerprint() == fingerprint
        # The new generation is a fresh, fully live fleet.
        assert cluster.dead_replicas() == []

    def test_failed_rebalance_leaves_old_generation_untouched(
            self, grown, monkeypatch):
        cluster, versions = grown
        fingerprint = cluster.fingerprint()
        original = ClusterCoordinator._migrate_version
        calls = []

        def dying_migrate(self, name, version, plan, fresh):
            calls.append(version)
            if len(calls) == 2:
                raise StorageError("migration interrupted")
            return original(self, name, version, plan, fresh)

        monkeypatch.setattr(ClusterCoordinator, "_migrate_version",
                            dying_migrate)
        with pytest.raises(StorageError, match="interrupted"):
            cluster.rebalance(4)
        monkeypatch.undo()
        # Old generation intact and serving; no half-built gen1 left.
        assert cluster.nodes == 3
        assert cluster.stats.migrated_chunks == 0
        assert cluster.fingerprint() == fingerprint
        assert not (cluster.root / "gen1").exists()
        # And the reshard still lands once the interruption clears.
        cluster.rebalance(4)
        assert cluster.fingerprint() == fingerprint

    def test_bad_target_counts_rejected(self, grown):
        cluster, _ = grown
        with pytest.raises(StorageError):
            cluster.rebalance(0)
        with pytest.raises(StorageError, match="replication"):
            cluster.rebalance(1)  # replication=2 needs >= 2 nodes

    def test_rebalance_preserves_explicit_chunk_shape(self, tmp_path,
                                                      rng):
        cluster = ClusterCoordinator(tmp_path, nodes=3,
                                     chunk_bytes=512, backend="memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema, chunk_shape=(2, 8))
        cluster.insert("A",
                       rng.integers(0, 9, (12, 8)).astype(np.int32))
        cluster.rebalance(4)
        for manager in cluster.managers:
            assert manager.catalog.get_array("A").chunk_shape == (2, 8)
        cluster.close()

    def test_failed_generation_construction_leaves_no_debris(
            self, tmp_path, rng):
        """A backend factory that refuses to build the new generation
        aborts the reshard with the old cluster intact and no gen<k>
        directories on disk for a later rebalance to adopt."""
        from repro.storage import LocalFileBackend

        state = {"built": 0, "refuse": False}

        def factory(root):
            # Refuse only after two replacement nodes came up, so the
            # half-built generation really leaves directories behind
            # for the cleanup to remove.
            if state["refuse"] and state["built"] >= 5:
                raise StorageError("replacement node refused to boot")
            state["built"] += 1
            return LocalFileBackend(root)

        cluster = ClusterCoordinator(tmp_path / "cl", nodes=3,
                                     chunk_bytes=512, backend=factory)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 9, (12, 8)).astype(np.int32)
        cluster.insert("A", data)
        fingerprint = cluster.fingerprint()
        state["refuse"] = True
        with pytest.raises(StorageError, match="refused to boot"):
            cluster.rebalance(4)
        state["refuse"] = False
        assert not (tmp_path / "cl" / "gen1").exists()
        assert cluster.nodes == 3
        assert cluster.fingerprint() == fingerprint
        cluster.rebalance(4)
        assert cluster.fingerprint() == fingerprint
        cluster.close()


class TestValidation:
    def test_zero_nodes_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ClusterCoordinator(tmp_path, nodes=0)

    def test_single_node_degenerates_cleanly(self, tmp_path, rng):
        cluster = ClusterCoordinator(tmp_path, nodes=1, chunk_bytes=1024)
        schema = ArraySchema.simple((6, 6), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 9, (6, 6)).astype(np.int32)
        cluster.insert("A", data)
        np.testing.assert_array_equal(cluster.select("A", 1).single(),
                                      data)
        cluster.close()


class TestClusterWorkers:
    def test_parallel_cluster_matches_serial(self, tmp_path, rng):
        schema = ArraySchema.simple((24, 10), dtype=np.int32)
        serial = ClusterCoordinator(tmp_path / "serial", nodes=3,
                                    chunk_bytes=512, backend="memory")
        parallel = ClusterCoordinator(tmp_path / "parallel", nodes=3,
                                      chunk_bytes=512, backend="memory",
                                      workers=4)
        for cluster in (serial, parallel):
            cluster.create_array("A", schema)
        data = rng.integers(0, 100, (24, 10)).astype(np.int32)
        for _ in range(3):
            serial.insert("A", data)
            parallel.insert("A", data)
            data = data + 1
        for version in (1, 2, 3):
            np.testing.assert_array_equal(
                parallel.select("A", version).single(),
                serial.select("A", version).single())
        np.testing.assert_array_equal(
            parallel.select_region("A", 3, (2, 1), (21, 8)).single(),
            serial.select_region("A", 3, (2, 1), (21, 8)).single())
        np.testing.assert_array_equal(
            parallel.select_versions("A", [1, 3]),
            serial.select_versions("A", [1, 3]))
        serial.close()
        parallel.close()

    def test_workers_reach_every_node(self, tmp_path):
        cluster = ClusterCoordinator(tmp_path, nodes=2, workers=3,
                                     backend="memory")
        assert cluster.workers == 3
        assert all(manager.workers == 3
                   for manager in cluster.managers)
        cluster.close()

    def test_parallel_insert_fans_nodes(self, tmp_path, rng):
        """Concurrent node inserts land the same versions and bytes as
        the serial node loop."""
        schema = ArraySchema.simple((24, 10), dtype=np.int32)
        serial = ClusterCoordinator(tmp_path / "serial", nodes=3,
                                    chunk_bytes=512, backend="memory")
        parallel = ClusterCoordinator(tmp_path / "parallel", nodes=3,
                                      chunk_bytes=512, backend="memory",
                                      workers=4)
        for cluster in (serial, parallel):
            cluster.create_array("A", schema)
        data = rng.integers(0, 100, (24, 10)).astype(np.int32)
        for _ in range(3):
            assert serial.insert("A", data) == parallel.insert("A", data)
            data = data + 1
        for version in (1, 2, 3):
            np.testing.assert_array_equal(
                parallel.select("A", version).single(),
                serial.select("A", version).single())
        for left, right in zip(serial.managers, parallel.managers):
            assert left.stored_bytes("A") == right.stored_bytes("A")
        serial.close()
        parallel.close()

    def test_striped_nodes(self, tmp_path, rng):
        """Each node can itself stripe its payloads."""
        cluster = ClusterCoordinator(tmp_path, nodes=2, workers=2,
                                     chunk_bytes=512,
                                     backend="striped:2:memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        cluster.insert("A", data)
        np.testing.assert_array_equal(cluster.select("A", 1).single(),
                                      data)
        assert not tmp_path.exists() or not any(tmp_path.iterdir())
        cluster.close()
