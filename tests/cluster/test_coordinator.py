"""Tests for the multi-node coordinator (Section II's distribution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator
from repro.core.errors import StorageError
from repro.core.schema import ArraySchema, Attribute, Dimension


@pytest.fixture
def cluster(tmp_path) -> ClusterCoordinator:
    return ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=1024)


@pytest.fixture
def loaded(cluster, rng):
    schema = ArraySchema.simple((12, 8), dtype=np.int32)
    cluster.create_array("A", schema)
    versions = []
    data = rng.integers(0, 100, (12, 8)).astype(np.int32)
    for _ in range(3):
        versions.append(data)
        cluster.insert("A", data)
        data = data + 1
    return cluster, versions


class TestLifecycle:
    def test_insert_select_roundtrip(self, loaded):
        cluster, versions = loaded
        for number, expected in enumerate(versions, 1):
            out = cluster.select("A", number)
            np.testing.assert_array_equal(out.single(), expected)

    def test_versions_consistent(self, loaded):
        cluster, _ = loaded
        assert cluster.get_versions("A") == [1, 2, 3]

    def test_list_and_delete(self, loaded):
        cluster, _ = loaded
        assert cluster.list_arrays() == ["A"]
        cluster.delete_array("A")
        assert cluster.list_arrays() == []
        with pytest.raises(StorageError):
            cluster.select("A", 1)

    def test_unregistered_array(self, cluster):
        with pytest.raises(StorageError):
            cluster.get_versions("ghost")

    def test_each_node_stores_its_band_only(self, loaded):
        cluster, _ = loaded
        # 12 rows over 3 nodes: each node's partition is 4x8.
        for manager in cluster.managers:
            record = manager.catalog.get_array("A")
            assert record.schema.shape == (4, 8)

    def test_nodes_encode_independently(self, loaded):
        cluster, _ = loaded
        # Every node delta-encodes its own partition: version 2 chunks
        # are deltas on every node.
        for manager in cluster.managers:
            record = manager.catalog.get_array("A")
            chunks = manager.catalog.chunks_for_version(record.array_id, 2)
            assert chunks
            assert any(chunk.is_delta for chunk in chunks)


class TestRouting:
    def test_region_within_one_band_touches_one_node(self, loaded):
        cluster, versions = loaded
        for stats in cluster.node_stats():
            stats.reset()
        out = cluster.select_region("A", 3, (0, 0), (3, 7))
        np.testing.assert_array_equal(out.single(), versions[2][0:4, :])
        reads = [stats.chunks_read for stats in cluster.node_stats()]
        assert reads[0] > 0
        assert reads[1] == 0
        assert reads[2] == 0

    def test_region_straddling_bands(self, loaded):
        cluster, versions = loaded
        out = cluster.select_region("A", 2, (2, 1), (9, 6))
        np.testing.assert_array_equal(out.single(),
                                      versions[1][2:10, 1:7])

    def test_single_cell(self, loaded):
        cluster, versions = loaded
        out = cluster.select_region("A", 1, (7, 3), (7, 3))
        assert out.single()[0, 0] == versions[0][7, 3]

    def test_stacked_select(self, loaded):
        cluster, versions = loaded
        stack = cluster.select_versions("A", [1, 3])
        assert stack.shape == (2, 12, 8)
        np.testing.assert_array_equal(stack[1], versions[2])


class TestMaintenance:
    def test_stored_bytes_sums_nodes(self, loaded):
        cluster, _ = loaded
        total = cluster.stored_bytes("A")
        assert total == sum(manager.stored_bytes("A")
                            for manager in cluster.managers)
        assert total > 0

    def test_reorganize_all_nodes(self, loaded):
        cluster, versions = loaded
        cluster.reorganize("A", mode="head")
        for manager in cluster.managers:
            record = manager.catalog.get_array("A")
            newest = manager.catalog.chunks_for_version(record.array_id, 3)
            assert all(not chunk.is_delta for chunk in newest)
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                cluster.select("A", number).single(), expected)


class TestMultiAttribute:
    def test_roundtrip(self, cluster, rng):
        schema = ArraySchema(
            dimensions=(Dimension("I", 0, 11), Dimension("J", 0, 7)),
            attributes=(Attribute("wind", np.float32),
                        Attribute("pressure", np.int32)),
        )
        cluster.create_array("W", schema)
        from repro.core.array import ArrayData

        wind = rng.normal(0, 10, (12, 8)).astype(np.float32)
        pressure = rng.integers(900, 1100, (12, 8)).astype(np.int32)
        cluster.insert("W", ArrayData(schema, {"wind": wind,
                                               "pressure": pressure}))
        out = cluster.select("W", 1)
        np.testing.assert_array_equal(out.attribute("wind"), wind)
        np.testing.assert_array_equal(out.attribute("pressure"), pressure)


class TestInMemoryCluster:
    """End-to-end cluster runs on per-node in-memory backends."""

    @pytest.fixture
    def mem_cluster(self, tmp_path) -> ClusterCoordinator:
        return ClusterCoordinator(tmp_path / "cluster", nodes=3,
                                  chunk_bytes=1024, backend="memory")

    def test_end_to_end_zero_disk(self, mem_cluster, tmp_path, rng):
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        mem_cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            mem_cluster.insert("A", data)
            data = data + 1
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                mem_cluster.select("A", number).single(), expected)
        out = mem_cluster.select_region("A", 2, (2, 1), (9, 6))
        np.testing.assert_array_equal(out.single(),
                                      versions[1][2:10, 1:7])
        mem_cluster.reorganize("A", mode="head")
        np.testing.assert_array_equal(
            mem_cluster.select("A", 3).single(), versions[2])
        assert mem_cluster.stored_bytes("A") > 0
        # No node ever touched the disk.
        assert not (tmp_path / "cluster").exists()
        mem_cluster.close()

    def test_nodes_get_independent_backends(self, mem_cluster):
        backends = {id(manager.backend)
                    for manager in mem_cluster.managers}
        assert len(backends) == mem_cluster.nodes

    def test_shared_backend_instance_rejected(self, tmp_path):
        from repro.storage import InMemoryBackend

        with pytest.raises(StorageError):
            ClusterCoordinator(tmp_path, nodes=2,
                               backend=InMemoryBackend())


class TestObjectStoreCluster:
    """Every node runs against its own S3-style object map — the
    deployment shape of a cluster whose nodes each own a bucket
    prefix."""

    def test_end_to_end_and_no_pending_uploads(self, tmp_path, rng):
        from repro.storage import ObjectStoreBackend

        cluster = ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=512,
                                     backend="object", workers=4)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            cluster.insert("A", data)
            data = data + 1
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                cluster.select("A", number).single(), expected)
        for manager in cluster.managers:
            assert isinstance(manager.backend, ObjectStoreBackend)
            # Every committed version finalized its uploads at the
            # barrier; no node is left holding staged parts.
            assert manager.backend.pending_parts() == 0
        assert cluster.stored_bytes("A") > 0
        cluster.close()


class TestClusterBranchMerge:
    @pytest.fixture(params=[0, 4])
    def filled(self, tmp_path, rng, request):
        cluster = ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=512,
                                     backend="memory",
                                     workers=request.param)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        versions = []
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        for _ in range(3):
            versions.append(data)
            cluster.insert("A", data)
            data = data + 1
        yield cluster, versions
        cluster.close()

    def test_branch_every_node(self, filled):
        cluster, versions = filled
        cluster.branch("A", 2, "B")
        assert cluster.list_arrays() == ["A", "B"]
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[1])
        # The branch keeps evolving independently of the source.
        cluster.insert("B", versions[1] + 10)
        np.testing.assert_array_equal(cluster.select("B", 2).single(),
                                      versions[1] + 10)
        np.testing.assert_array_equal(cluster.select("A", 3).single(),
                                      versions[2])

    def test_merge_every_node(self, filled):
        cluster, versions = filled
        cluster.merge([("A", 1), ("A", 3)], "M")
        assert cluster.get_versions("M") == [1, 2]
        np.testing.assert_array_equal(cluster.select("M", 1).single(),
                                      versions[0])
        np.testing.assert_array_equal(cluster.select("M", 2).single(),
                                      versions[2])

    def test_merge_requires_two_parents(self, filled):
        cluster, _ = filled
        with pytest.raises(StorageError):
            cluster.merge([("A", 1)], "M")
        assert cluster.list_arrays() == ["A"]

    def test_branch_onto_existing_name_rejected_without_damage(
            self, filled):
        cluster, versions = filled
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("B", schema)
        cluster.insert("B", versions[0] * 2)
        with pytest.raises(StorageError):
            cluster.branch("A", 1, "B")
        # The pre-existing B survives untouched on every node.
        assert cluster.list_arrays() == ["A", "B"]
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[0] * 2)

    def test_merge_onto_existing_name_rejected_without_damage(
            self, filled):
        cluster, versions = filled
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("B", schema)
        cluster.insert("B", versions[0] * 2)
        with pytest.raises(StorageError):
            cluster.merge([("A", 1), ("A", 2)], "B")
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[0] * 2)

    def test_insert_rollback_waits_for_stragglers(self, tmp_path, rng):
        """A fast-failing node must not let a slow node's insert land
        after compensation ran — rollback waits for every node."""
        import time

        cluster = ClusterCoordinator(tmp_path, nodes=3, chunk_bytes=512,
                                     backend="memory", workers=4)
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        cluster.insert("A", data)

        fast_fail = cluster.managers[0]
        slow = cluster.managers[2]
        original_fail = fast_fail.insert
        original_slow = slow.insert

        def failing_insert(*args, **kwargs):
            raise StorageError("node down")

        def slow_insert(*args, **kwargs):
            time.sleep(0.05)
            return original_slow(*args, **kwargs)

        fast_fail.insert = failing_insert
        slow.insert = slow_insert
        with pytest.raises(StorageError):
            cluster.insert("A", data + 1)
        fast_fail.insert = original_fail
        slow.insert = original_slow

        for manager in cluster.managers:
            assert manager.get_versions("A") == [1]
        assert cluster.insert("A", data + 1) == 2
        cluster.close()

    def test_branch_onto_unregistered_node_array_rejected(self, filled):
        """Node catalogs may hold arrays the session-scoped registry
        has never seen; branch/merge must not destroy them."""
        cluster, versions = filled
        schema = ArraySchema.simple((4, 8), dtype=np.int32)
        for manager in cluster.managers:  # bypass the coordinator
            manager.create_array("B", schema)
            manager.insert("B", np.ones((4, 8), dtype=np.int32))
        with pytest.raises(StorageError):
            cluster.branch("A", 1, "B")
        for manager in cluster.managers:
            np.testing.assert_array_equal(
                manager.select("B", 1).single(),
                np.ones((4, 8), dtype=np.int32))

    def test_failed_node_insert_rolls_back_landed_nodes(self, filled):
        cluster, versions = filled
        victim = cluster.managers[-1]
        original = victim.insert

        def failing_insert(*args, **kwargs):
            raise StorageError("node down")

        victim.insert = failing_insert
        with pytest.raises(StorageError):
            cluster.insert("A", versions[-1] + 50)
        victim.insert = original
        # Every node is still at the old head, so the cluster stays in
        # step and the next insert lands cleanly everywhere.
        for manager in cluster.managers:
            assert manager.get_versions("A") == [1, 2, 3]
        assert cluster.insert("A", versions[-1] + 50) == 4
        np.testing.assert_array_equal(cluster.select("A", 4).single(),
                                      versions[-1] + 50)

    def test_failed_branch_leaves_no_node_partial(self, filled):
        cluster, versions = filled
        victim = cluster.managers[-1]
        original = victim.branch

        def failing_branch(*args, **kwargs):
            raise StorageError("node down")

        victim.branch = failing_branch
        with pytest.raises(StorageError):
            cluster.branch("A", 2, "B")
        victim.branch = original
        # No node keeps a partial branch, and the name is reusable.
        for manager in cluster.managers:
            assert manager.list_arrays() == ["A"]
        assert cluster.list_arrays() == ["A"]
        cluster.branch("A", 2, "B")
        np.testing.assert_array_equal(cluster.select("B", 1).single(),
                                      versions[1])


class TestValidation:
    def test_zero_nodes_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ClusterCoordinator(tmp_path, nodes=0)

    def test_single_node_degenerates_cleanly(self, tmp_path, rng):
        cluster = ClusterCoordinator(tmp_path, nodes=1, chunk_bytes=1024)
        schema = ArraySchema.simple((6, 6), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 9, (6, 6)).astype(np.int32)
        cluster.insert("A", data)
        np.testing.assert_array_equal(cluster.select("A", 1).single(),
                                      data)
        cluster.close()


class TestClusterWorkers:
    def test_parallel_cluster_matches_serial(self, tmp_path, rng):
        schema = ArraySchema.simple((24, 10), dtype=np.int32)
        serial = ClusterCoordinator(tmp_path / "serial", nodes=3,
                                    chunk_bytes=512, backend="memory")
        parallel = ClusterCoordinator(tmp_path / "parallel", nodes=3,
                                      chunk_bytes=512, backend="memory",
                                      workers=4)
        for cluster in (serial, parallel):
            cluster.create_array("A", schema)
        data = rng.integers(0, 100, (24, 10)).astype(np.int32)
        for _ in range(3):
            serial.insert("A", data)
            parallel.insert("A", data)
            data = data + 1
        for version in (1, 2, 3):
            np.testing.assert_array_equal(
                parallel.select("A", version).single(),
                serial.select("A", version).single())
        np.testing.assert_array_equal(
            parallel.select_region("A", 3, (2, 1), (21, 8)).single(),
            serial.select_region("A", 3, (2, 1), (21, 8)).single())
        np.testing.assert_array_equal(
            parallel.select_versions("A", [1, 3]),
            serial.select_versions("A", [1, 3]))
        serial.close()
        parallel.close()

    def test_workers_reach_every_node(self, tmp_path):
        cluster = ClusterCoordinator(tmp_path, nodes=2, workers=3,
                                     backend="memory")
        assert cluster.workers == 3
        assert all(manager.workers == 3
                   for manager in cluster.managers)
        cluster.close()

    def test_parallel_insert_fans_nodes(self, tmp_path, rng):
        """Concurrent node inserts land the same versions and bytes as
        the serial node loop."""
        schema = ArraySchema.simple((24, 10), dtype=np.int32)
        serial = ClusterCoordinator(tmp_path / "serial", nodes=3,
                                    chunk_bytes=512, backend="memory")
        parallel = ClusterCoordinator(tmp_path / "parallel", nodes=3,
                                      chunk_bytes=512, backend="memory",
                                      workers=4)
        for cluster in (serial, parallel):
            cluster.create_array("A", schema)
        data = rng.integers(0, 100, (24, 10)).astype(np.int32)
        for _ in range(3):
            assert serial.insert("A", data) == parallel.insert("A", data)
            data = data + 1
        for version in (1, 2, 3):
            np.testing.assert_array_equal(
                parallel.select("A", version).single(),
                serial.select("A", version).single())
        for left, right in zip(serial.managers, parallel.managers):
            assert left.stored_bytes("A") == right.stored_bytes("A")
        serial.close()
        parallel.close()

    def test_striped_nodes(self, tmp_path, rng):
        """Each node can itself stripe its payloads."""
        cluster = ClusterCoordinator(tmp_path, nodes=2, workers=2,
                                     chunk_bytes=512,
                                     backend="striped:2:memory")
        schema = ArraySchema.simple((12, 8), dtype=np.int32)
        cluster.create_array("A", schema)
        data = rng.integers(0, 100, (12, 8)).astype(np.int32)
        cluster.insert("A", data)
        np.testing.assert_array_equal(cluster.select("A", 1).single(),
                                      data)
        assert not tmp_path.exists() or not any(tmp_path.iterdir())
        cluster.close()
