"""Tests for the store-inspection CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.query.engine import Database


@pytest.fixture
def store(tmp_path):
    root = tmp_path / "store"
    db = Database(root, chunk_bytes=2048)
    db.execute("CREATE UPDATABLE ARRAY Example "
               "( A::INTEGER ) [ I=0:7, J=0:7 ];")
    base = np.arange(64, dtype=np.int32).reshape(8, 8)
    db.insert("Example", base)
    db.insert("Example", base + 1)
    db.branch("Example", 1, "Fork")
    db.close()
    return root


class TestCLI:
    def test_list(self, store, capsys):
        assert main([str(store), "list"]) == 0
        out = capsys.readouterr().out
        assert "Example" in out
        assert "Fork" in out

    def test_info(self, store, capsys):
        assert main([str(store), "info", "Example"]) == 0
        out = capsys.readouterr().out
        assert "A::INTEGER" in out
        assert "versions:    2" in out

    def test_info_branch_parentage(self, store, capsys):
        main([str(store), "info", "Fork"])
        out = capsys.readouterr().out
        assert "from Example@1" in out

    def test_versions(self, store, capsys):
        assert main([str(store), "versions", "Example"]) == 0
        out = capsys.readouterr().out
        assert "v1" in out
        assert "v2" in out
        assert "parent=v1" in out

    def test_chunks(self, store, capsys):
        assert main([str(store), "chunks", "Example", "2"]) == 0
        out = capsys.readouterr().out
        assert "chunk-" in out
        assert "delta[" in out or "materialized[" in out

    def test_layout_tree(self, store, capsys):
        assert main([str(store), "layout", "Example"]) == 0
        out = capsys.readouterr().out
        assert "M v1" in out   # materialized root
        assert "Δ v2" in out   # delta child

    def test_ingest_creates_and_appends(self, store, tmp_path, capsys):
        files = []
        for index in range(2):
            data = np.full((6, 6), index + 1, dtype=np.int64)
            path = tmp_path / f"frame{index}.npy"
            np.save(path, data)
            files.append(str(path))
        assert main([str(store), "--workers", "2", "ingest", "Scans",
                     *files]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "v2" in out
        assert "ingested 2 version(s)" in out
        assert "encode tasks" in out
        with Database(store) as db:
            assert db.versions("Scans") == [1, 2]
            np.testing.assert_array_equal(
                db.select("Scans@2"), np.full((6, 6), 2, dtype=np.int64))

    def test_ingest_existing_array(self, store, tmp_path, capsys):
        data = np.arange(64, dtype=np.int32).reshape(8, 8)
        path = tmp_path / "next.npy"
        np.save(path, data + 5)
        assert main([str(store), "ingest", "Example", str(path)]) == 0
        assert "v3" in capsys.readouterr().out
        with Database(store) as db:
            np.testing.assert_array_equal(db.select("Example@3"),
                                          data + 5)

    def test_ingest_missing_file_fails_before_side_effects(
            self, store, tmp_path, capsys):
        data = np.ones((4, 4), dtype=np.int32)
        path = tmp_path / "ok.npy"
        np.save(path, data)
        assert main([str(store), "ingest", "Scans", str(path),
                     str(tmp_path / "typo.npy")]) == 2
        with Database(store) as db:
            assert "Scans" not in db.manager.list_arrays()

    def test_sql(self, store, capsys):
        assert main([str(store), "sql", "VERSIONS(Example);"]) == 0
        out = capsys.readouterr().out
        assert "Example@1" in out

    def test_unknown_array_fails(self, store):
        from repro.core.errors import ArrayNotFoundError

        with pytest.raises(ArrayNotFoundError):
            main([str(store), "info", "Ghost"])

    def test_requires_command(self, store):
        with pytest.raises(SystemExit):
            main([str(store)])

    def test_backend_flag(self, store, capsys):
        assert main([str(store), "--backend", "local", "list"]) == 0
        assert "Example" in capsys.readouterr().out

    def test_backend_memory_is_empty_store(self, store, capsys):
        # The memory backend is ephemeral: nothing to inspect, but the
        # knob must wire through cleanly.
        assert main([str(store), "--backend", "memory", "list"]) == 0
        assert capsys.readouterr().out == ""

    def test_unknown_backend_rejected(self, store):
        with pytest.raises(SystemExit):
            main([str(store), "--backend", "tape", "list"])


class TestConcurrencyFlags:
    def test_workers_flag(self, store, capsys):
        assert main([str(store), "--workers", "4", "info",
                     "Example"]) == 0
        assert "versions:    2" in capsys.readouterr().out

    def test_striped_backend_round_trip(self, tmp_path, capsys):
        root = tmp_path / "striped-store"
        with Database(root, chunk_bytes=2048,
                      backend="striped:2") as db:
            db.execute("CREATE UPDATABLE ARRAY Example "
                       "( A::INTEGER ) [ I=0:7, J=0:7 ];")
            db.insert("Example",
                      np.arange(64, dtype=np.int32).reshape(8, 8))
        assert main([str(root), "--backend", "striped:2", "--workers",
                     "2", "info", "Example"]) == 0
        out = capsys.readouterr().out
        assert "versions:    1" in out

    def test_object_backend_round_trip(self, tmp_path, capsys):
        root = tmp_path / "object-store"
        with Database(root, chunk_bytes=2048, backend="object") as db:
            db.execute("CREATE UPDATABLE ARRAY Example "
                       "( A::INTEGER ) [ I=0:7, J=0:7 ];")
            db.insert("Example",
                      np.arange(64, dtype=np.int32).reshape(8, 8))
        assert main([str(root), "--backend", "object", "--workers",
                     "2", "info", "Example"]) == 0
        out = capsys.readouterr().out
        assert "versions:    1" in out

    def test_faulty_backend_round_trip(self, tmp_path, capsys):
        # Fault-free mode (seed 0): the wrapper is a transparent pass-
        # through, so a store written through it reads back normally.
        root = tmp_path / "faulty-store"
        with Database(root, chunk_bytes=2048, backend="faulty:0") as db:
            db.execute("CREATE UPDATABLE ARRAY Example "
                       "( A::INTEGER ) [ I=0:7, J=0:7 ];")
            db.insert("Example",
                      np.arange(64, dtype=np.int32).reshape(8, 8))
        assert main([str(root), "--backend", "faulty:0", "info",
                     "Example"]) == 0
        out = capsys.readouterr().out
        assert "versions:    1" in out

    def test_invalid_striped_spec_fails_before_side_effects(
            self, tmp_path):
        root = tmp_path / "never-created"
        for spec in ("striped:0", "striped:x", "striped:2:tape",
                     "object:tape", "object:durable:extra",
                     "faulty", "faulty:-1", "faulty:1:tape"):
            with pytest.raises(SystemExit):
                main([str(root), "--backend", spec, "list"])
        assert not root.exists()

    def test_negative_workers_fails_before_side_effects(self, tmp_path):
        root = tmp_path / "never-created"
        with pytest.raises(SystemExit):
            main([str(root), "--workers", "-1", "list"])
        with pytest.raises(SystemExit):
            main([str(root), "--workers", "many", "list"])
        assert not root.exists()
