"""Delta-of-delta re-base on the insert path, byte for byte.

A chain-policy insert needs the parent version as its delta base.  The
cheap orders of resolution — the write path's hot slot, then re-basing
against the chain's composed accumulator (:class:`RebaseState`), then
a full parent select — must all produce the *same stored bytes*: the
same codes, the same winning codec, the same fingerprint.  These tests
drive all three paths over the same version sequences across every
delta mode's dtype family and assert fingerprint identity, plus the
gating contract: re-base only runs when the planner is on and the
chunk cache is off, and the ``encode_rebases`` counter records exactly
the chunks that took the fused path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import ArraySchema
from repro.storage import VersionedStorageManager

DTYPES = [np.int64, np.int32, np.int16, np.uint8, np.uint64,
          np.bool_, np.float64, np.float32]


def _versions(dtype, depth=4, shape=(40, 40), seed=2012):
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)
    if dtype == np.bool_:
        cur = rng.integers(0, 2, shape).astype(dtype)
    elif dtype.kind == "f":
        cur = rng.normal(size=shape).astype(dtype)
    else:
        info = np.iinfo(dtype)
        cur = rng.integers(info.min // 2 if info.min else 0,
                           info.max // 2, shape).astype(dtype)
    out = [cur]
    for _ in range(depth - 1):
        cur = cur.copy()
        flat = cur.reshape(-1)
        picks = rng.choice(flat.size, flat.size // 20, replace=False)
        if dtype == np.bool_:
            flat[picks] = ~flat[picks]
        elif dtype.kind == "f":
            flat[picks] += rng.normal(size=picks.size).astype(dtype)
        else:
            flat[picks] = (flat[picks] + 3).astype(dtype)
        out.append(cur)
    return out


def _build(root, versions, *, reopen=False, **kwargs):
    """Insert ``versions``; with ``reopen`` each insert gets a fresh
    manager, so the hot slot is always cold and a chain-policy insert
    must re-base (or fall back to a parent select)."""
    kwargs.setdefault("chunk_bytes", 4000)
    kwargs.setdefault("delta_policy", "chain")
    manager = VersionedStorageManager(root, **kwargs)
    manager.create_array("a", ArraySchema.simple(
        versions[0].shape, dtype=versions[0].dtype))
    for index, data in enumerate(versions):
        if reopen and index:
            manager.close()
            manager = VersionedStorageManager(root, **kwargs)
        manager.insert("a", data)
    return manager


class TestRebaseByteIdentity:
    @pytest.mark.parametrize("dtype", DTYPES,
                             ids=[np.dtype(d).name for d in DTYPES])
    def test_three_paths_one_fingerprint(self, tmp_path, dtype):
        versions = _versions(dtype)
        prints = {}
        managers = {}
        managers["hot"] = _build(tmp_path / "hot", versions)
        managers["rebase"] = _build(tmp_path / "rebase", versions,
                                    reopen=True)
        managers["select"] = _build(tmp_path / "select", versions,
                                    reopen=True, planner=False)
        for name, manager in managers.items():
            prints[name] = manager.fingerprint("a")
        assert prints["hot"] == prints["rebase"] == prints["select"]
        # The re-opened store actually took the re-base path on its
        # final (cold-slot) insert; planner-off never does.
        assert managers["rebase"].stats.encode_rebases > 0
        assert managers["select"].stats.encode_rebases == 0
        # ...and every path returns the exact version contents.
        for manager in managers.values():
            for index, data in enumerate(versions):
                got = manager.select("a", index + 1)
                assert np.array_equal(got.attribute("value"), data)
            manager.close()

    def test_auto_policy_matches_too(self, tmp_path):
        versions = _versions(np.int64, depth=5)
        hot = _build(tmp_path / "hot", versions, delta_policy="auto")
        cold = _build(tmp_path / "cold", versions, delta_policy="auto",
                      reopen=True)
        assert hot.fingerprint("a") == cold.fingerprint("a")
        hot.close()
        cold.close()


class TestRebaseGating:
    def test_counter_counts_rebased_chunks(self, tmp_path):
        versions = _versions(np.int64, depth=3, shape=(16, 16))
        kwargs = dict(chunk_bytes=1 << 20, delta_policy="chain")
        manager = _build(tmp_path / "s", versions[:1], **kwargs)
        manager.close()
        for data in versions[1:]:
            manager = VersionedStorageManager(tmp_path / "s", **kwargs)
            manager.insert("a", data)
            # Single-chunk array: exactly one re-based chunk per
            # cold-slot chain insert.
            assert manager.stats.encode_rebases == 1
            manager.close()

    def test_hot_slot_skips_rebase(self, tmp_path):
        versions = _versions(np.int64, depth=4)
        manager = _build(tmp_path / "s", versions)
        assert manager.stats.encode_rebases == 0
        manager.close()

    def test_cache_disables_rebase(self, tmp_path):
        # With the chunk cache on, reconstructing the parent feeds the
        # cache; bypassing it via re-base would skip those admissions,
        # so the manager must fall back to the select path.
        versions = _versions(np.int64, depth=3, shape=(16, 16))
        kwargs = dict(chunk_bytes=1 << 20, delta_policy="chain",
                      cache_bytes=1 << 20)
        manager = _build(tmp_path / "s", versions[:1], **kwargs)
        manager.close()
        manager = VersionedStorageManager(tmp_path / "s", **kwargs)
        manager.insert("a", versions[1])
        assert manager.stats.encode_rebases == 0
        manager.close()
        # And the bytes still match a cache-less store.
        plain = _build(tmp_path / "plain", versions,
                       chunk_bytes=1 << 20, reopen=True)
        cached = VersionedStorageManager(tmp_path / "s", **kwargs)
        for data in versions[2:]:
            cached.insert("a", data)
        assert plain.fingerprint("a") == cached.fingerprint("a")
        plain.close()
        cached.close()

    def test_planner_off_disables_rebase(self, tmp_path):
        versions = _versions(np.int64, depth=3, shape=(16, 16))
        kwargs = dict(chunk_bytes=1 << 20, delta_policy="chain",
                      planner=False)
        manager = _build(tmp_path / "s", versions[:1], **kwargs)
        manager.close()
        manager = VersionedStorageManager(tmp_path / "s", **kwargs)
        manager.insert("a", versions[1])
        assert manager.stats.encode_rebases == 0
        manager.close()
