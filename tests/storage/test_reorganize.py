"""Tests for one-call background re-organization (Section IV-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import ArraySchema
from repro.datasets import periodic_series
from repro.materialize import SnapshotQuery, WeightedQuery
from repro.storage import VersionedStorageManager


@pytest.fixture
def periodic_store(tmp_path):
    manager = VersionedStorageManager(tmp_path, chunk_bytes=64 * 1024,
                                      compressor="lz",
                                      delta_codec="hybrid+lz")
    series = periodic_series(9, distinct=3, shape=(32, 32))
    manager.create_array("P", ArraySchema.simple((32, 32),
                                                 dtype=np.int32))
    for frame in series:
        manager.insert("P", frame)
    return manager, series


class TestReorganize:
    def test_space_mode_shrinks_periodic_data(self, periodic_store):
        manager, series = periodic_store
        before = manager.store.total_bytes("P")
        manager.reorganize("P", mode="space")
        after = manager.store.total_bytes("P")
        assert after < before / 2  # recurrences become near-zero deltas
        for number, expected in enumerate(series, 1):
            np.testing.assert_array_equal(
                manager.select("P", number).single(), expected)

    def test_head_mode_materializes_newest(self, periodic_store):
        manager, _ = periodic_store
        manager.reorganize("P", mode="head")
        array_id = manager.catalog.get_array("P").array_id
        newest = manager.catalog.chunks_for_version(array_id, 9)
        assert all(not chunk.is_delta for chunk in newest)

    def test_workload_mode(self, periodic_store):
        manager, series = periodic_store
        workload = [WeightedQuery(SnapshotQuery(5), weight=10.0)]
        manager.reorganize("P", mode="workload", workload=workload)
        # The hammered version must be cheap: at most a short chain.
        array_id = manager.catalog.get_array("P").array_id
        chunks = manager.catalog.chunks_for_version(array_id, 5)
        assert all(not chunk.is_delta for chunk in chunks)
        np.testing.assert_array_equal(
            manager.select("P", 5).single(), series[4])

    def test_workload_mode_requires_workload(self, periodic_store):
        manager, _ = periodic_store
        with pytest.raises(StorageError):
            manager.reorganize("P", mode="workload")

    def test_unknown_mode(self, periodic_store):
        manager, _ = periodic_store
        with pytest.raises(StorageError):
            manager.reorganize("P", mode="maximal")

    def test_sampled_matrix_mode(self, periodic_store):
        manager, series = periodic_store
        manager.reorganize("P", mode="space", sample_fraction=0.2)
        for number, expected in enumerate(series, 1):
            np.testing.assert_array_equal(
                manager.select("P", number).single(), expected)
