"""Backend conformance suite: every backend behaves identically.

The :class:`~repro.storage.backend.StorageBackend` contract is
exercised twice — once against the raw byte API, once end-to-end
through :class:`VersionedStorageManager` across the (backend x
placement) grid, where every configuration must return byte-identical
query results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import ArraySchema
from repro.storage import (
    COLOCATED,
    PER_VERSION,
    InMemoryBackend,
    LocalFileBackend,
    StorageBackend,
    VersionedStorageManager,
    resolve_backend,
)


@pytest.fixture(params=["local", "memory"])
def backend(request, tmp_path) -> StorageBackend:
    if request.param == "local":
        return LocalFileBackend(tmp_path / "store")
    return InMemoryBackend()


class TestByteContract:
    def test_write_read_roundtrip(self, backend):
        backend.write("A/chunks/value/c.dat", b"payload-bytes")
        assert backend.read("A/chunks/value/c.dat", 0, 13) == \
            b"payload-bytes"

    def test_write_replaces_wholesale(self, backend):
        backend.write("A/c.dat", b"first contents")
        backend.write("A/c.dat", b"new")
        assert backend.total_bytes("A") == 3
        assert backend.read("A/c.dat", 0, 3) == b"new"

    def test_append_returns_offsets(self, backend):
        assert backend.append("A/c.dat", b"v1..") == 0
        assert backend.append("A/c.dat", b"version-two") == 4
        assert backend.read("A/c.dat", 4, 11) == b"version-two"

    def test_read_many_preserves_span_order(self, backend):
        backend.append("A/c.dat", b"aaaa")
        backend.append("A/c.dat", b"bb")
        backend.append("A/c.dat", b"cccccc")
        payloads = backend.read_many("A/c.dat",
                                     [(6, 6), (0, 4), (4, 2)])
        assert payloads == [b"cccccc", b"aaaa", b"bb"]

    def test_missing_object_raises(self, backend):
        with pytest.raises(StorageError):
            backend.read("A/nowhere.dat", 0, 4)
        with pytest.raises(StorageError):
            backend.read_many("A/nowhere.dat", [(0, 4)])

    def test_short_span_raises(self, backend):
        backend.write("A/c.dat", b"abc")
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 100)
        with pytest.raises(StorageError):
            backend.read_many("A/c.dat", [(0, 3), (1, 50)])

    def test_delete_object(self, backend):
        backend.write("A/c.dat", b"data")
        backend.delete("A/c.dat")
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 4)

    def test_delete_prefix_subtree(self, backend):
        backend.write("A/v1/value/c.dat", b"data")
        backend.write("A/v2/value/c.dat", b"more")
        backend.write("B/v1/value/c.dat", b"keep")
        backend.delete("A")
        assert backend.total_bytes("A") == 0
        assert backend.read("B/v1/value/c.dat", 0, 4) == b"keep"

    def test_delete_missing_is_noop(self, backend):
        backend.delete("A/ghost.dat")  # must not raise

    def test_total_bytes(self, backend):
        assert backend.total_bytes() == 0
        backend.write("A/c.dat", b"12345")
        backend.write("B/c.dat", b"123")
        assert backend.total_bytes("A") == 5
        assert backend.total_bytes() == 8
        assert backend.total_bytes("missing") == 0


class TestResolveBackend:
    def test_names_and_default(self, tmp_path):
        assert isinstance(resolve_backend(None, tmp_path),
                          LocalFileBackend)
        assert isinstance(resolve_backend("local", tmp_path),
                          LocalFileBackend)
        assert isinstance(resolve_backend("memory", tmp_path),
                          InMemoryBackend)

    def test_instance_passthrough(self, tmp_path):
        backend = InMemoryBackend()
        assert resolve_backend(backend, tmp_path) is backend

    def test_factory_called_with_root(self, tmp_path):
        seen = []

        def factory(root):
            seen.append(root)
            return InMemoryBackend()

        backend = resolve_backend(factory, tmp_path)
        assert isinstance(backend, InMemoryBackend)
        assert seen == [tmp_path]

    def test_bad_factory_result_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            resolve_backend(lambda root: object(), tmp_path)

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            resolve_backend("tape", tmp_path)


#: The (backend, placement) grid every storage semantic must agree on.
CONFIGS = [("local", COLOCATED), ("local", PER_VERSION),
           ("memory", COLOCATED), ("memory", PER_VERSION)]


def _exercise(manager: VersionedStorageManager) -> dict:
    """One deterministic workout of the paper's five operations."""
    rng = np.random.default_rng(7)
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int32))
    data = rng.integers(0, 1000, (16, 16)).astype(np.int32)
    for _ in range(4):
        manager.insert("A", data)
        data = data + rng.integers(0, 3, (16, 16)).astype(np.int32)
    manager.branch("A", 2, "B")
    manager.delete_version("A", 3)
    manager.reorganize("A", mode="space")
    return {
        "versions": manager.get_versions("A"),
        "selects": {v: manager.select("A", v).single()
                    for v in manager.get_versions("A")},
        "region": manager.select_region("A", 4, (2, 3), (9, 12)).single(),
        "stack": manager.select_versions("A", [1, 4]),
        "branch": manager.select("B", 1).single(),
        "stored": manager.stored_bytes("A"),
    }


@pytest.mark.parametrize("backend_name,placement", CONFIGS)
def test_manager_conformance_identical(tmp_path, backend_name, placement):
    """Every backend/placement pair returns byte-identical results."""
    with VersionedStorageManager(
            tmp_path / "ref", chunk_bytes=512,
            placement=COLOCATED) as reference_manager:
        reference = _exercise(reference_manager)
    with VersionedStorageManager(
            tmp_path / "sub", chunk_bytes=512, placement=placement,
            backend=backend_name) as manager:
        observed = _exercise(manager)

    assert observed["versions"] == reference["versions"]
    assert observed["stored"] > 0
    for version, expected in reference["selects"].items():
        np.testing.assert_array_equal(observed["selects"][version],
                                      expected)
    np.testing.assert_array_equal(observed["region"], reference["region"])
    np.testing.assert_array_equal(observed["stack"], reference["stack"])
    np.testing.assert_array_equal(observed["branch"], reference["branch"])


class TestInMemoryManager:
    def test_zero_disk_footprint(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path / "mem",
                                          chunk_bytes=1024,
                                          backend="memory")
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int64))
        data = rng.integers(0, 99, (8, 8)).astype(np.int64)
        manager.insert("A", data)
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      data)
        # Neither chunk files nor the catalog ever touch the disk.
        assert not (tmp_path / "mem").exists()
        manager.close()

    def test_stored_bytes_tracked(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=1024,
                                          backend="memory")
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int64))
        manager.insert("A", rng.integers(0, 9, (8, 8)).astype(np.int64))
        assert manager.store.total_bytes("A") > 0
        manager.delete_array("A")
        assert manager.store.total_bytes("A") == 0
        manager.close()
