"""Backend conformance suite: every backend behaves identically.

The :class:`~repro.storage.backend.StorageBackend` contract is
exercised twice — once against the raw byte API (including the striped
composite and the parallel ``read_many`` fan-out), once end-to-end
through :class:`VersionedStorageManager` across the (backend x
placement x workers) grid, where every configuration must return
byte-identical query results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import ArraySchema
from repro.storage import (
    COLOCATED,
    PER_VERSION,
    FaultInjectingBackend,
    InMemoryBackend,
    IOStats,
    LocalFileBackend,
    ObjectStoreBackend,
    StorageBackend,
    StripedBackend,
    VersionedStorageManager,
    default_backend_spec,
    ensure_backend_spec,
    parse_faulty_spec,
    parse_object_spec,
    parse_striped_spec,
    resolve_backend,
)


def _make_backend(kind: str, tmp_path) -> StorageBackend:
    if kind == "local":
        return LocalFileBackend(tmp_path / "store")
    if kind == "durable":
        return LocalFileBackend(tmp_path / "store", durable=True)
    if kind == "memory":
        return InMemoryBackend()
    if kind == "object":
        return ObjectStoreBackend(tmp_path / "store")
    if kind == "object-durable":
        return ObjectStoreBackend(tmp_path / "store", durable=True)
    if kind == "striped-local":
        return StripedBackend([LocalFileBackend(tmp_path / f"stripe{i}")
                               for i in range(3)])
    if kind == "striped-object":
        return StripedBackend([ObjectStoreBackend(tmp_path / f"stripe{i}")
                               for i in range(3)])
    if kind == "faulty":
        # Fault-free mode: the wrapper must be indistinguishable from
        # its inner backend across the whole conformance suite.
        return FaultInjectingBackend(LocalFileBackend(tmp_path / "store"),
                                     seed=0)
    if kind == "faulty-object":
        return FaultInjectingBackend(
            ObjectStoreBackend(tmp_path / "store"), seed=0)
    return StripedBackend([InMemoryBackend() for _ in range(3)])


@pytest.fixture(params=["local", "durable", "memory", "object",
                        "object-durable", "striped-local",
                        "striped-memory", "striped-object",
                        "faulty", "faulty-object"])
def backend(request, tmp_path) -> StorageBackend:
    return _make_backend(request.param, tmp_path)


class TestByteContract:
    def test_write_read_roundtrip(self, backend):
        backend.write("A/chunks/value/c.dat", b"payload-bytes")
        assert backend.read("A/chunks/value/c.dat", 0, 13) == \
            b"payload-bytes"

    def test_write_replaces_wholesale(self, backend):
        backend.write("A/c.dat", b"first contents")
        backend.write("A/c.dat", b"new")
        assert backend.total_bytes("A") == 3
        assert backend.read("A/c.dat", 0, 3) == b"new"

    def test_append_returns_offsets(self, backend):
        assert backend.append("A/c.dat", b"v1..") == 0
        assert backend.append("A/c.dat", b"version-two") == 4
        assert backend.read("A/c.dat", 4, 11) == b"version-two"

    def test_read_many_preserves_span_order(self, backend):
        backend.append("A/c.dat", b"aaaa")
        backend.append("A/c.dat", b"bb")
        backend.append("A/c.dat", b"cccccc")
        payloads = backend.read_many("A/c.dat",
                                     [(6, 6), (0, 4), (4, 2)])
        assert payloads == [b"cccccc", b"aaaa", b"bb"]

    def test_missing_object_raises(self, backend):
        with pytest.raises(StorageError):
            backend.read("A/nowhere.dat", 0, 4)
        with pytest.raises(StorageError):
            backend.read_many("A/nowhere.dat", [(0, 4)])

    def test_short_span_raises(self, backend):
        backend.write("A/c.dat", b"abc")
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 100)
        with pytest.raises(StorageError):
            backend.read_many("A/c.dat", [(0, 3), (1, 50)])

    def test_delete_object(self, backend):
        backend.write("A/c.dat", b"data")
        backend.delete("A/c.dat")
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 4)

    def test_delete_prefix_subtree(self, backend):
        backend.write("A/v1/value/c.dat", b"data")
        backend.write("A/v2/value/c.dat", b"more")
        backend.write("B/v1/value/c.dat", b"keep")
        backend.delete("A")
        assert backend.total_bytes("A") == 0
        assert backend.read("B/v1/value/c.dat", 0, 4) == b"keep"

    def test_delete_missing_is_noop(self, backend):
        backend.delete("A/ghost.dat")  # must not raise

    def test_total_bytes(self, backend):
        assert backend.total_bytes() == 0
        backend.write("A/c.dat", b"12345")
        backend.write("B/c.dat", b"123")
        assert backend.total_bytes("A") == 5
        assert backend.total_bytes() == 8
        assert backend.total_bytes("missing") == 0


class TestParallelReadMany:
    """The ``max_workers`` fan-out must be indistinguishable from the
    serial pass for every backend."""

    def test_parallel_matches_serial(self, backend):
        chunks = [bytes([i]) * (7 + i) for i in range(23)]
        offsets = [backend.append("A/c.dat", chunk) for chunk in chunks]
        spans = [(offset, len(chunk))
                 for offset, chunk in zip(offsets, chunks)]
        serial = backend.read_many("A/c.dat", spans)
        parallel = backend.read_many("A/c.dat", spans, max_workers=4)
        assert parallel == serial == chunks

    def test_parallel_short_span_raises(self, backend):
        backend.write("A/c.dat", b"abcdef")
        with pytest.raises(StorageError):
            backend.read_many("A/c.dat", [(0, 2), (2, 2), (4, 50)],
                              max_workers=3)

    def test_more_workers_than_spans(self, backend):
        backend.write("A/c.dat", b"xy")
        assert backend.read_many("A/c.dat", [(0, 1), (1, 1)],
                                 max_workers=16) == [b"x", b"y"]


class TestDeleteContract:
    """The documented ``delete(prefix)`` semantics, on every backend
    (striped children included): exact-object deletes, component-
    boundary subtree deletes, idempotence, and no resurrection."""

    def test_prefix_matches_whole_components_only(self, backend):
        backend.write("A/chunks/value/c.dat", b"keep-me")
        backend.write("A/ch", b"exact")
        # "A/ch" names an object and a *string* prefix of A/chunks/...;
        # delete must remove the object and nothing else.
        backend.delete("A/ch")
        assert backend.read("A/chunks/value/c.dat", 0, 7) == b"keep-me"
        with pytest.raises(StorageError):
            backend.read("A/ch", 0, 5)

    def test_subtree_delete_spares_siblings(self, backend):
        backend.write("A/v1/value/c.dat", b"dead")
        backend.append("A/v1/value/d.dat", b"dead-too")
        backend.write("A2/v1/value/c.dat", b"sibling")
        backend.delete("A/v1")
        assert backend.total_bytes("A/v1") == 0
        assert backend.read("A2/v1/value/c.dat", 0, 7) == b"sibling"

    def test_delete_is_idempotent(self, backend):
        backend.write("A/c.dat", b"data")
        backend.delete("A")
        backend.delete("A")          # repeat: silent no-op
        backend.delete("B/ghost")    # never existed: silent no-op
        assert backend.total_bytes() == 0

    def test_deleted_object_can_be_recreated(self, backend):
        backend.append("A/c.dat", b"old")
        backend.delete("A/c.dat")
        assert backend.append("A/c.dat", b"new!") == 0
        assert backend.read("A/c.dat", 0, 4) == b"new!"

    def test_striped_delete_fans_to_every_child(self, tmp_path):
        striped = _make_backend("striped-object", tmp_path)
        paths = [f"A/chunks/value/chunk-{i}.dat" for i in range(24)]
        for path in paths:
            striped.append(path, b"x" * 8)
        # Enough objects to land on every stripe.
        assert len({id(striped.child_for(p)) for p in paths}) == 3
        striped.delete("A")
        assert striped.total_bytes("A") == 0
        for child in striped.children:
            assert child.total_bytes("A") == 0

    @pytest.mark.parametrize("kind", ["object", "faulty-object"])
    def test_delete_aborts_pending_uploads(self, tmp_path, kind):
        # The fault-free wrapper forwards the staged-upload abort
        # contract untouched (pending_parts stays observable through
        # the wrapper).
        backend = _make_backend(kind, tmp_path)
        backend.append("A/c.dat", b"staged")
        assert backend.pending_parts("A/c.dat") == 1
        backend.delete("A/c.dat")
        assert backend.pending_parts() == 0
        # No later finalize may resurrect the deleted object.
        backend.sync(["A/c.dat"])
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 6)


class TestObjectStoreBackend:
    """S3-semantics specifics: multipart staging, the finalize
    barrier, and ranged-GET coalescing under the request-size floor."""

    def test_append_stages_until_finalize_barrier(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store")
        backend.append("A/c.dat", b"part-one-")
        backend.append("A/c.dat", b"part-two")
        assert backend.pending_parts("A/c.dat") == 2
        # Nothing is committed yet: the object map holds no bytes.
        assert not (tmp_path / "store" / "A" / "c.dat").exists()
        backend.sync(["A/c.dat"])
        assert backend.pending_parts() == 0
        assert (tmp_path / "store" / "A" / "c.dat").read_bytes() == \
            b"part-one-part-two"

    def test_write_is_an_immediate_put(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store")
        backend.append("A/c.dat", b"pending")
        backend.write("A/c.dat", b"put")
        # The PUT superseded the pending upload wholesale.
        assert backend.pending_parts() == 0
        assert backend.read("A/c.dat", 0, 3) == b"put"

    def test_read_inside_committed_region_skips_finalize(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store")
        backend.append("A/c.dat", b"committed")
        backend.sync(["A/c.dat"])
        backend.append("A/c.dat", b"staged")
        # A reader of committed bytes proceeds without completing the
        # writer's in-flight upload.
        assert backend.read("A/c.dat", 0, 9) == b"committed"
        assert backend.pending_parts("A/c.dat") == 1
        # Reaching into the staged region completes it (read-your-writes).
        assert backend.read("A/c.dat", 9, 6) == b"staged"
        assert backend.pending_parts("A/c.dat") == 0

    def test_close_aborts_pending_uploads(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store")
        backend.append("A/c.dat", b"committed")
        backend.sync(["A/c.dat"])
        backend.append("A/c.dat", b"never-synced")
        backend.close()
        reopened = ObjectStoreBackend(tmp_path / "store")
        # Only the finalized upload survived.
        assert reopened.total_bytes("A/c.dat") == 9

    def test_ranged_gets_coalesce_under_floor(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store",
                                     request_floor=64)
        stats = IOStats()
        backend.bind_stats(stats)
        payload = bytes(range(200))
        backend.write("A/c.dat", payload)
        # Two spans 30 bytes apart: the floor extension of the first
        # GET covers the second span, so one request serves both.
        got = backend.read_many("A/c.dat", [(0, 10), (40, 10)])
        assert got == [payload[0:10], payload[40:50]]
        assert stats.ranged_gets == 1
        # One 64-byte GET for 20 requested bytes: 44 over-fetched.
        assert stats.bytes_over_fetched == 44

    def test_distant_spans_get_separate_requests(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store",
                                     request_floor=16)
        stats = IOStats()
        backend.bind_stats(stats)
        payload = bytes(range(256))
        backend.write("A/c.dat", payload)
        got = backend.read_many("A/c.dat", [(0, 8), (200, 8)])
        assert got == [payload[0:8], payload[200:208]]
        assert stats.ranged_gets == 2
        assert stats.bytes_over_fetched == 16  # two 16B GETs, 16B used

    def test_floor_clamps_at_object_end(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "store",
                                     request_floor=1 << 20)
        stats = IOStats()
        backend.bind_stats(stats)
        backend.write("A/c.dat", b"0123456789")
        assert backend.read("A/c.dat", 8, 2) == b"89"
        assert stats.ranged_gets == 1
        assert stats.bytes_over_fetched == 0  # clamped GET = the span

    def test_bad_request_floor_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ObjectStoreBackend(tmp_path / "store", request_floor=-1)

    def test_chain_read_costs_one_get_per_object(self, tmp_path):
        """The decode path's observable: a co-located chain of many
        payloads in one object is one ranged GET, however deep."""
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          compressor="none",
                                          delta_policy="chain",
                                          backend="object")
        manager.create_array("A", ArraySchema.simple((10, 10),
                                                     dtype=np.int64))
        data = np.arange(100, dtype=np.int64).reshape(10, 10)
        for version in range(5):
            manager.insert("A", data + version)
        with manager.stats.measure() as window:
            manager.select("A", 5)
        # One chunk -> one object -> one coalesced GET for the whole
        # five-deep chain (and one logical open, as on local files).
        assert window.ranged_gets == window.file_opens == 1
        assert window.chunks_read == 5
        manager.close()


class TestStripedBackend:
    def test_routing_is_deterministic_and_total(self, tmp_path):
        striped = _make_backend("striped-memory", tmp_path)
        paths = [f"A/chunks/value/chunk-{i}.dat" for i in range(40)]
        for path in paths:
            striped.write(path, path.encode())
        # Every object reads back through the composite...
        for path in paths:
            assert striped.read(path, 0, len(path)) == path.encode()
        # ... routing is stable ...
        for path in paths:
            assert striped.child_for(path) is striped.child_for(path)
        # ... and with enough objects, more than one stripe is used.
        used = {id(striped.child_for(path)) for path in paths}
        assert len(used) > 1

    def test_prefix_operations_fan_to_all_stripes(self, tmp_path):
        striped = _make_backend("striped-local", tmp_path)
        for i in range(12):
            striped.write(f"A/v1/value/chunk-{i}.dat", b"x" * 10)
        striped.write("B/v1/value/chunk-0.dat", b"keep")
        assert striped.total_bytes("A") == 120
        striped.delete("A")
        assert striped.total_bytes("A") == 0
        assert striped.total_bytes("B") == 4

    def test_ephemeral_iff_all_children_are(self, tmp_path):
        assert _make_backend("striped-memory", tmp_path).ephemeral
        assert not _make_backend("striped-local", tmp_path).ephemeral
        mixed = StripedBackend([InMemoryBackend(),
                                LocalFileBackend(tmp_path / "s")])
        assert not mixed.ephemeral

    def test_empty_children_rejected(self):
        with pytest.raises(StorageError):
            StripedBackend([])


class TestStripedSpec:
    def test_parse_valid(self):
        assert parse_striped_spec("striped:4") == (4, "local")
        assert parse_striped_spec("striped:2:memory") == (2, "memory")
        assert parse_striped_spec("striped:3:object") == (3, "object")

    @pytest.mark.parametrize("spec", [
        "striped", "striped:", "striped:0", "striped:-1", "striped:x",
        "striped:2:tape", "striped:2:memory:extra", "striped:2.5",
        "striped:2:object:durable",
    ])
    def test_parse_invalid(self, spec):
        with pytest.raises(StorageError):
            parse_striped_spec(spec)

    def test_error_messages_name_the_defect(self):
        with pytest.raises(StorageError, match="integer stripe"):
            parse_striped_spec("striped:x")
        with pytest.raises(StorageError, match="at least one stripe"):
            parse_striped_spec("striped:0")
        with pytest.raises(StorageError,
                           match="unknown child backend 'tape'"):
            parse_striped_spec("striped:2:tape")
        with pytest.raises(StorageError, match="malformed"):
            parse_striped_spec("striped:2:object:durable")

    def test_resolve_local_children_under_root(self, tmp_path):
        backend = resolve_backend("striped:4", tmp_path)
        assert isinstance(backend, StripedBackend)
        assert len(backend.children) == 4
        assert all(isinstance(child, LocalFileBackend)
                   for child in backend.children)
        assert sorted(child.root.name for child in backend.children) == \
            ["stripe0", "stripe1", "stripe2", "stripe3"]

    def test_resolve_memory_children(self, tmp_path):
        backend = resolve_backend("striped:2:memory", tmp_path)
        assert isinstance(backend, StripedBackend)
        assert len(backend.children) == 2
        assert backend.ephemeral

    def test_resolve_object_children(self, tmp_path):
        backend = resolve_backend("striped:2:object", tmp_path)
        assert isinstance(backend, StripedBackend)
        assert all(isinstance(child, ObjectStoreBackend)
                   for child in backend.children)
        assert backend.high_latency
        assert not backend.ephemeral
        assert sorted(child.root.name for child in backend.children) == \
            ["stripe0", "stripe1"]


class TestObjectSpec:
    def test_parse_valid(self):
        assert parse_object_spec("object") is False
        assert parse_object_spec("object:durable") is True

    @pytest.mark.parametrize("spec", [
        "object:", "object:tape", "object:durable:extra", "objects",
    ])
    def test_parse_invalid(self, spec):
        with pytest.raises(StorageError):
            parse_object_spec(spec)

    def test_error_messages_name_the_defect(self):
        with pytest.raises(StorageError,
                           match="unknown mode 'fsync'"):
            parse_object_spec("object:fsync")
        with pytest.raises(StorageError, match="malformed"):
            parse_object_spec("object:durable:extra")

    def test_resolve(self, tmp_path):
        backend = resolve_backend("object", tmp_path)
        assert isinstance(backend, ObjectStoreBackend)
        assert backend.high_latency and not backend.durable
        durable = resolve_backend("object:durable", tmp_path)
        assert isinstance(durable, ObjectStoreBackend)
        assert durable.durable


class TestFaultySpec:
    def test_parse_valid(self):
        assert parse_faulty_spec("faulty:0") == (0, "local")
        assert parse_faulty_spec("faulty:7") == (7, "local")
        assert parse_faulty_spec("faulty:23:memory") == (23, "memory")
        assert parse_faulty_spec("faulty:1:object") == (1, "object")

    @pytest.mark.parametrize("spec", [
        "faulty", "faulty:", "faulty:-1", "faulty:x",
        "faulty:2:tape", "faulty:2:memory:extra", "faulty:2.5",
    ])
    def test_parse_invalid(self, spec):
        with pytest.raises(StorageError):
            parse_faulty_spec(spec)

    def test_error_messages_name_the_defect(self):
        with pytest.raises(StorageError, match="integer seed"):
            parse_faulty_spec("faulty:x")
        with pytest.raises(StorageError, match="seed >= 0"):
            parse_faulty_spec("faulty:-3")
        with pytest.raises(StorageError,
                           match="unknown inner backend 'tape'"):
            parse_faulty_spec("faulty:2:tape")
        with pytest.raises(StorageError, match="malformed"):
            parse_faulty_spec("faulty:2:memory:extra")

    def test_resolve(self, tmp_path):
        backend = resolve_backend("faulty:7", tmp_path)
        assert isinstance(backend, FaultInjectingBackend)
        assert isinstance(backend.inner, LocalFileBackend)
        assert backend.seed == 7 and not backend.ephemeral
        wrapped = resolve_backend("faulty:0:memory", tmp_path)
        assert isinstance(wrapped.inner, InMemoryBackend)
        assert wrapped.ephemeral
        objecty = resolve_backend("faulty:3:object", tmp_path)
        assert isinstance(objecty.inner, ObjectStoreBackend)
        assert objecty.high_latency


class TestEnsureBackendSpec:
    @pytest.mark.parametrize("spec", [
        "local", "memory", "durable", "object", "object:durable",
        "striped:2", "striped:3:memory", "striped:2:object",
        "faulty:0", "faulty:7:memory", "faulty:23:object",
    ])
    def test_valid_specs_pass_through(self, spec):
        assert ensure_backend_spec(spec) == spec

    @pytest.mark.parametrize("spec", [
        "tape", "", "object:tape", "striped:zero", "striped:0",
        "OBJECT", "local:durable", "faulty", "faulty:-1",
        "faulty:1:tape",
    ])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(StorageError):
            ensure_backend_spec(spec)


class TestReproBackendEnv:
    """``REPRO_BACKEND`` is the CI matrix's backend axis: the default
    spec for every manager that does not pin one explicitly."""

    def test_unset_defaults_to_local(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_spec() == "local"
        assert isinstance(resolve_backend(None, tmp_path),
                          LocalFileBackend)

    def test_env_selects_the_object_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BACKEND", "object")
        assert isinstance(resolve_backend(None, tmp_path),
                          ObjectStoreBackend)
        manager = VersionedStorageManager(tmp_path / "store")
        assert isinstance(manager.backend, ObjectStoreBackend)
        manager.close()

    def test_explicit_spec_beats_the_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BACKEND", "object")
        assert isinstance(resolve_backend("memory", tmp_path),
                          InMemoryBackend)

    def test_empty_env_means_local(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert isinstance(resolve_backend(None, tmp_path),
                          LocalFileBackend)

    def test_malformed_env_fails_loudly(self, monkeypatch, tmp_path):
        # A matrix cell with a typo must fail, not silently run the
        # local path under an "object" label.
        monkeypatch.setenv("REPRO_BACKEND", "objcet")
        with pytest.raises(StorageError, match="REPRO_BACKEND"):
            resolve_backend(None, tmp_path)


class TestResolveBackend:
    def test_names_and_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(resolve_backend(None, tmp_path),
                          LocalFileBackend)
        assert isinstance(resolve_backend("local", tmp_path),
                          LocalFileBackend)
        assert isinstance(resolve_backend("memory", tmp_path),
                          InMemoryBackend)
        assert isinstance(resolve_backend("object", tmp_path),
                          ObjectStoreBackend)

    def test_instance_passthrough(self, tmp_path):
        backend = InMemoryBackend()
        assert resolve_backend(backend, tmp_path) is backend

    def test_factory_called_with_root(self, tmp_path):
        seen = []

        def factory(root):
            seen.append(root)
            return InMemoryBackend()

        backend = resolve_backend(factory, tmp_path)
        assert isinstance(backend, InMemoryBackend)
        assert seen == [tmp_path]

    def test_bad_factory_result_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            resolve_backend(lambda root: object(), tmp_path)

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            resolve_backend("tape", tmp_path)


#: The (backend, placement, workers) grid every storage semantic must
#: agree on: plain, striped, object-store, and (fault-free)
#: fault-injection-wrapped backends, serial and parallel decode.
CONFIGS = [("local", COLOCATED, 0), ("local", PER_VERSION, 0),
           ("memory", COLOCATED, 0), ("memory", PER_VERSION, 0),
           ("striped:3", COLOCATED, 0), ("striped:3", PER_VERSION, 4),
           ("striped:3:memory", COLOCATED, 4),
           ("local", COLOCATED, 4), ("memory", COLOCATED, 4),
           ("object", COLOCATED, 0), ("object", PER_VERSION, 4),
           ("object:durable", COLOCATED, 4),
           ("striped:2:object", COLOCATED, 4),
           ("faulty:0", COLOCATED, 0), ("faulty:0:memory", PER_VERSION, 0),
           ("faulty:0:object", COLOCATED, 4)]


def _exercise(manager: VersionedStorageManager) -> dict:
    """One deterministic workout of the paper's five operations."""
    rng = np.random.default_rng(7)
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int32))
    data = rng.integers(0, 1000, (16, 16)).astype(np.int32)
    for _ in range(4):
        manager.insert("A", data)
        data = data + rng.integers(0, 3, (16, 16)).astype(np.int32)
    manager.branch("A", 2, "B")
    manager.delete_version("A", 3)
    manager.reorganize("A", mode="space")
    return {
        "versions": manager.get_versions("A"),
        "selects": {v: manager.select("A", v).single()
                    for v in manager.get_versions("A")},
        "region": manager.select_region("A", 4, (2, 3), (9, 12)).single(),
        "stack": manager.select_versions("A", [1, 4]),
        "branch": manager.select("B", 1).single(),
        "stored": manager.stored_bytes("A"),
    }


@pytest.mark.parametrize("backend_name,placement,workers", CONFIGS)
def test_manager_conformance_identical(tmp_path, backend_name, placement,
                                       workers):
    """Every backend/placement/workers triple returns byte-identical
    results."""
    with VersionedStorageManager(
            tmp_path / "ref", chunk_bytes=512,
            placement=COLOCATED, workers=0) as reference_manager:
        reference = _exercise(reference_manager)
    with VersionedStorageManager(
            tmp_path / "sub", chunk_bytes=512, placement=placement,
            backend=backend_name, workers=workers) as manager:
        observed = _exercise(manager)

    assert observed["versions"] == reference["versions"]
    assert observed["stored"] > 0
    for version, expected in reference["selects"].items():
        np.testing.assert_array_equal(observed["selects"][version],
                                      expected)
    np.testing.assert_array_equal(observed["region"], reference["region"])
    np.testing.assert_array_equal(observed["stack"], reference["stack"])
    np.testing.assert_array_equal(observed["branch"], reference["branch"])


class TestInMemoryManager:
    def test_zero_disk_footprint(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path / "mem",
                                          chunk_bytes=1024,
                                          backend="memory")
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int64))
        data = rng.integers(0, 99, (8, 8)).astype(np.int64)
        manager.insert("A", data)
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      data)
        # Neither chunk files nor the catalog ever touch the disk.
        assert not (tmp_path / "mem").exists()
        manager.close()

    def test_stored_bytes_tracked(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=1024,
                                          backend="memory")
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int64))
        manager.insert("A", rng.integers(0, 9, (8, 8)).astype(np.int64))
        assert manager.store.total_bytes("A") > 0
        manager.delete_array("A")
        assert manager.store.total_bytes("A") == 0
        manager.close()
