"""Backend conformance suite: every backend behaves identically.

The :class:`~repro.storage.backend.StorageBackend` contract is
exercised twice — once against the raw byte API (including the striped
composite and the parallel ``read_many`` fan-out), once end-to-end
through :class:`VersionedStorageManager` across the (backend x
placement x workers) grid, where every configuration must return
byte-identical query results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import ArraySchema
from repro.storage import (
    COLOCATED,
    PER_VERSION,
    InMemoryBackend,
    LocalFileBackend,
    StorageBackend,
    StripedBackend,
    VersionedStorageManager,
    parse_striped_spec,
    resolve_backend,
)


def _make_backend(kind: str, tmp_path) -> StorageBackend:
    if kind == "local":
        return LocalFileBackend(tmp_path / "store")
    if kind == "durable":
        return LocalFileBackend(tmp_path / "store", durable=True)
    if kind == "memory":
        return InMemoryBackend()
    if kind == "striped-local":
        return StripedBackend([LocalFileBackend(tmp_path / f"stripe{i}")
                               for i in range(3)])
    return StripedBackend([InMemoryBackend() for _ in range(3)])


@pytest.fixture(params=["local", "durable", "memory", "striped-local",
                        "striped-memory"])
def backend(request, tmp_path) -> StorageBackend:
    return _make_backend(request.param, tmp_path)


class TestByteContract:
    def test_write_read_roundtrip(self, backend):
        backend.write("A/chunks/value/c.dat", b"payload-bytes")
        assert backend.read("A/chunks/value/c.dat", 0, 13) == \
            b"payload-bytes"

    def test_write_replaces_wholesale(self, backend):
        backend.write("A/c.dat", b"first contents")
        backend.write("A/c.dat", b"new")
        assert backend.total_bytes("A") == 3
        assert backend.read("A/c.dat", 0, 3) == b"new"

    def test_append_returns_offsets(self, backend):
        assert backend.append("A/c.dat", b"v1..") == 0
        assert backend.append("A/c.dat", b"version-two") == 4
        assert backend.read("A/c.dat", 4, 11) == b"version-two"

    def test_read_many_preserves_span_order(self, backend):
        backend.append("A/c.dat", b"aaaa")
        backend.append("A/c.dat", b"bb")
        backend.append("A/c.dat", b"cccccc")
        payloads = backend.read_many("A/c.dat",
                                     [(6, 6), (0, 4), (4, 2)])
        assert payloads == [b"cccccc", b"aaaa", b"bb"]

    def test_missing_object_raises(self, backend):
        with pytest.raises(StorageError):
            backend.read("A/nowhere.dat", 0, 4)
        with pytest.raises(StorageError):
            backend.read_many("A/nowhere.dat", [(0, 4)])

    def test_short_span_raises(self, backend):
        backend.write("A/c.dat", b"abc")
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 100)
        with pytest.raises(StorageError):
            backend.read_many("A/c.dat", [(0, 3), (1, 50)])

    def test_delete_object(self, backend):
        backend.write("A/c.dat", b"data")
        backend.delete("A/c.dat")
        with pytest.raises(StorageError):
            backend.read("A/c.dat", 0, 4)

    def test_delete_prefix_subtree(self, backend):
        backend.write("A/v1/value/c.dat", b"data")
        backend.write("A/v2/value/c.dat", b"more")
        backend.write("B/v1/value/c.dat", b"keep")
        backend.delete("A")
        assert backend.total_bytes("A") == 0
        assert backend.read("B/v1/value/c.dat", 0, 4) == b"keep"

    def test_delete_missing_is_noop(self, backend):
        backend.delete("A/ghost.dat")  # must not raise

    def test_total_bytes(self, backend):
        assert backend.total_bytes() == 0
        backend.write("A/c.dat", b"12345")
        backend.write("B/c.dat", b"123")
        assert backend.total_bytes("A") == 5
        assert backend.total_bytes() == 8
        assert backend.total_bytes("missing") == 0


class TestParallelReadMany:
    """The ``max_workers`` fan-out must be indistinguishable from the
    serial pass for every backend."""

    def test_parallel_matches_serial(self, backend):
        chunks = [bytes([i]) * (7 + i) for i in range(23)]
        offsets = [backend.append("A/c.dat", chunk) for chunk in chunks]
        spans = [(offset, len(chunk))
                 for offset, chunk in zip(offsets, chunks)]
        serial = backend.read_many("A/c.dat", spans)
        parallel = backend.read_many("A/c.dat", spans, max_workers=4)
        assert parallel == serial == chunks

    def test_parallel_short_span_raises(self, backend):
        backend.write("A/c.dat", b"abcdef")
        with pytest.raises(StorageError):
            backend.read_many("A/c.dat", [(0, 2), (2, 2), (4, 50)],
                              max_workers=3)

    def test_more_workers_than_spans(self, backend):
        backend.write("A/c.dat", b"xy")
        assert backend.read_many("A/c.dat", [(0, 1), (1, 1)],
                                 max_workers=16) == [b"x", b"y"]


class TestStripedBackend:
    def test_routing_is_deterministic_and_total(self, tmp_path):
        striped = _make_backend("striped-memory", tmp_path)
        paths = [f"A/chunks/value/chunk-{i}.dat" for i in range(40)]
        for path in paths:
            striped.write(path, path.encode())
        # Every object reads back through the composite...
        for path in paths:
            assert striped.read(path, 0, len(path)) == path.encode()
        # ... routing is stable ...
        for path in paths:
            assert striped.child_for(path) is striped.child_for(path)
        # ... and with enough objects, more than one stripe is used.
        used = {id(striped.child_for(path)) for path in paths}
        assert len(used) > 1

    def test_prefix_operations_fan_to_all_stripes(self, tmp_path):
        striped = _make_backend("striped-local", tmp_path)
        for i in range(12):
            striped.write(f"A/v1/value/chunk-{i}.dat", b"x" * 10)
        striped.write("B/v1/value/chunk-0.dat", b"keep")
        assert striped.total_bytes("A") == 120
        striped.delete("A")
        assert striped.total_bytes("A") == 0
        assert striped.total_bytes("B") == 4

    def test_ephemeral_iff_all_children_are(self, tmp_path):
        assert _make_backend("striped-memory", tmp_path).ephemeral
        assert not _make_backend("striped-local", tmp_path).ephemeral
        mixed = StripedBackend([InMemoryBackend(),
                                LocalFileBackend(tmp_path / "s")])
        assert not mixed.ephemeral

    def test_empty_children_rejected(self):
        with pytest.raises(StorageError):
            StripedBackend([])


class TestStripedSpec:
    def test_parse_valid(self):
        assert parse_striped_spec("striped:4") == (4, "local")
        assert parse_striped_spec("striped:2:memory") == (2, "memory")

    @pytest.mark.parametrize("spec", [
        "striped", "striped:", "striped:0", "striped:-1", "striped:x",
        "striped:2:tape", "striped:2:memory:extra",
    ])
    def test_parse_invalid(self, spec):
        with pytest.raises(StorageError):
            parse_striped_spec(spec)

    def test_resolve_local_children_under_root(self, tmp_path):
        backend = resolve_backend("striped:4", tmp_path)
        assert isinstance(backend, StripedBackend)
        assert len(backend.children) == 4
        assert all(isinstance(child, LocalFileBackend)
                   for child in backend.children)
        assert sorted(child.root.name for child in backend.children) == \
            ["stripe0", "stripe1", "stripe2", "stripe3"]

    def test_resolve_memory_children(self, tmp_path):
        backend = resolve_backend("striped:2:memory", tmp_path)
        assert isinstance(backend, StripedBackend)
        assert len(backend.children) == 2
        assert backend.ephemeral


class TestResolveBackend:
    def test_names_and_default(self, tmp_path):
        assert isinstance(resolve_backend(None, tmp_path),
                          LocalFileBackend)
        assert isinstance(resolve_backend("local", tmp_path),
                          LocalFileBackend)
        assert isinstance(resolve_backend("memory", tmp_path),
                          InMemoryBackend)

    def test_instance_passthrough(self, tmp_path):
        backend = InMemoryBackend()
        assert resolve_backend(backend, tmp_path) is backend

    def test_factory_called_with_root(self, tmp_path):
        seen = []

        def factory(root):
            seen.append(root)
            return InMemoryBackend()

        backend = resolve_backend(factory, tmp_path)
        assert isinstance(backend, InMemoryBackend)
        assert seen == [tmp_path]

    def test_bad_factory_result_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            resolve_backend(lambda root: object(), tmp_path)

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            resolve_backend("tape", tmp_path)


#: The (backend, placement, workers) grid every storage semantic must
#: agree on: plain and striped backends, serial and parallel decode.
CONFIGS = [("local", COLOCATED, 0), ("local", PER_VERSION, 0),
           ("memory", COLOCATED, 0), ("memory", PER_VERSION, 0),
           ("striped:3", COLOCATED, 0), ("striped:3", PER_VERSION, 4),
           ("striped:3:memory", COLOCATED, 4),
           ("local", COLOCATED, 4), ("memory", COLOCATED, 4)]


def _exercise(manager: VersionedStorageManager) -> dict:
    """One deterministic workout of the paper's five operations."""
    rng = np.random.default_rng(7)
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int32))
    data = rng.integers(0, 1000, (16, 16)).astype(np.int32)
    for _ in range(4):
        manager.insert("A", data)
        data = data + rng.integers(0, 3, (16, 16)).astype(np.int32)
    manager.branch("A", 2, "B")
    manager.delete_version("A", 3)
    manager.reorganize("A", mode="space")
    return {
        "versions": manager.get_versions("A"),
        "selects": {v: manager.select("A", v).single()
                    for v in manager.get_versions("A")},
        "region": manager.select_region("A", 4, (2, 3), (9, 12)).single(),
        "stack": manager.select_versions("A", [1, 4]),
        "branch": manager.select("B", 1).single(),
        "stored": manager.stored_bytes("A"),
    }


@pytest.mark.parametrize("backend_name,placement,workers", CONFIGS)
def test_manager_conformance_identical(tmp_path, backend_name, placement,
                                       workers):
    """Every backend/placement/workers triple returns byte-identical
    results."""
    with VersionedStorageManager(
            tmp_path / "ref", chunk_bytes=512,
            placement=COLOCATED, workers=0) as reference_manager:
        reference = _exercise(reference_manager)
    with VersionedStorageManager(
            tmp_path / "sub", chunk_bytes=512, placement=placement,
            backend=backend_name, workers=workers) as manager:
        observed = _exercise(manager)

    assert observed["versions"] == reference["versions"]
    assert observed["stored"] > 0
    for version, expected in reference["selects"].items():
        np.testing.assert_array_equal(observed["selects"][version],
                                      expected)
    np.testing.assert_array_equal(observed["region"], reference["region"])
    np.testing.assert_array_equal(observed["stack"], reference["stack"])
    np.testing.assert_array_equal(observed["branch"], reference["branch"])


class TestInMemoryManager:
    def test_zero_disk_footprint(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path / "mem",
                                          chunk_bytes=1024,
                                          backend="memory")
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int64))
        data = rng.integers(0, 99, (8, 8)).astype(np.int64)
        manager.insert("A", data)
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      data)
        # Neither chunk files nor the catalog ever touch the disk.
        assert not (tmp_path / "mem").exists()
        manager.close()

    def test_stored_bytes_tracked(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=1024,
                                          backend="memory")
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int64))
        manager.insert("A", rng.integers(0, 9, (8, 8)).astype(np.int64))
        assert manager.store.total_bytes("A") > 0
        manager.delete_array("A")
        assert manager.store.total_bytes("A") == 0
        manager.close()
