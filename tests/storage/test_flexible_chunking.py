"""Tests for explicit per-dimension chunk shapes (flexible chunking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionError
from repro.core.schema import ArraySchema
from repro.storage import VersionedStorageManager
from repro.storage.chunking import ChunkGrid


class TestChunkShapeGrid:
    def test_explicit_strides(self):
        grid = ChunkGrid((100, 60), cell_size=8, chunk_bytes=10 ** 6,
                         chunk_shape=(100, 10))
        assert grid.strides == (100, 10)
        assert grid.counts == (1, 6)
        first = grid.chunk_at((0, 0))
        assert first.shape == (100, 10)

    def test_row_major_friendly_shape(self):
        # Flat, wide chunks: one chunk row per array row band.
        grid = ChunkGrid((64, 64), cell_size=4, chunk_bytes=10 ** 6,
                         chunk_shape=(8, 64))
        assert grid.counts == (8, 1)
        # A full-row read touches exactly one chunk.
        hits = grid.chunks_overlapping((3, 0), (3, 63))
        assert len(hits) == 1

    def test_uniform_stride_property_guarded(self):
        grid = ChunkGrid((64, 64), cell_size=4, chunk_bytes=10 ** 6,
                         chunk_shape=(8, 64))
        with pytest.raises(DimensionError):
            _ = grid.stride  # not uniform

    def test_default_grid_still_uniform(self):
        grid = ChunkGrid((64, 64), cell_size=4, chunk_bytes=1024)
        assert grid.stride == 16

    def test_cell_lookup_respects_strides(self):
        grid = ChunkGrid((40, 40), cell_size=4, chunk_bytes=10 ** 6,
                         chunk_shape=(10, 20))
        assert grid.chunk_for_cell((9, 19)).index == (0, 0)
        assert grid.chunk_for_cell((10, 19)).index == (1, 0)
        assert grid.chunk_for_cell((9, 20)).index == (0, 1)

    def test_coverage_exact(self):
        grid = ChunkGrid((30, 50), cell_size=4, chunk_bytes=10 ** 6,
                         chunk_shape=(7, 13))
        canvas = np.zeros(grid.shape, dtype=np.int32)
        for chunk in grid.chunks():
            canvas[chunk.slices()] += 1
        assert (canvas == 1).all()

    def test_invalid_shapes_rejected(self):
        with pytest.raises(DimensionError):
            ChunkGrid((10, 10), 4, 1024, chunk_shape=(10,))
        with pytest.raises(DimensionError):
            ChunkGrid((10, 10), 4, 1024, chunk_shape=(0, 10))


class TestManagerWithChunkShape:
    def test_roundtrip_and_persistence(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path)
        schema = ArraySchema.simple((32, 32), dtype=np.int32)
        manager.create_array("A", schema, chunk_shape=(4, 32))
        data = rng.integers(0, 100, (32, 32)).astype(np.int32)
        manager.insert("A", data)
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      data)
        # The shape survives catalog round-trips (process restarts).
        record = manager.catalog.get_array("A")
        assert record.chunk_shape == (4, 32)
        assert manager.grid_for(record).counts == (8, 1)

    def test_row_reads_touch_one_chunk(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path)
        schema = ArraySchema.simple((32, 32), dtype=np.int32)
        manager.create_array("A", schema, chunk_shape=(4, 32))
        manager.insert("A", rng.integers(0, 9, (32, 32)).astype(np.int32))
        with manager.stats.measure() as window:
            manager.select_region("A", 1, (5, 0), (5, 31))
        assert window.chunks_read == 1

    def test_branch_inherits_chunk_shape(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path)
        schema = ArraySchema.simple((16, 16), dtype=np.int32)
        manager.create_array("A", schema, chunk_shape=(16, 4))
        manager.insert("A", rng.integers(0, 9, (16, 16)).astype(np.int32))
        manager.branch("A", 1, "B")
        assert manager.catalog.get_array("B").chunk_shape == (16, 4)

    def test_invalid_shape_fails_at_create(self, tmp_path):
        manager = VersionedStorageManager(tmp_path)
        schema = ArraySchema.simple((16, 16), dtype=np.int32)
        with pytest.raises(DimensionError):
            manager.create_array("A", schema, chunk_shape=(16,))
