"""Edge cases of region assembly: ``overlap_slices`` and
``read_region`` on single cells, chunk boundaries, and the full array.

These are the geometric seams of the select path — the places where an
off-by-one between chunk coordinates and region coordinates would
silently corrupt a canvas corner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import ArraySchema
from repro.storage import VersionedStorageManager
from repro.storage.chunking import ChunkRef
from repro.storage.pipeline import overlap_slices


class TestOverlapSlices:
    CHUNK = ChunkRef(index=(1, 1), lo=(8, 8), hi=(15, 15))

    def test_single_cell_inside_chunk(self):
        src, dst = overlap_slices(self.CHUNK, (10, 12), (10, 12))
        assert src == (np.s_[2:3], np.s_[4:5])
        assert dst == (np.s_[0:1], np.s_[0:1])

    def test_region_equals_chunk_exactly(self):
        src, dst = overlap_slices(self.CHUNK, (8, 8), (15, 15))
        assert src == (np.s_[0:8], np.s_[0:8])
        assert dst == (np.s_[0:8], np.s_[0:8])

    def test_region_straddles_chunk_boundary(self):
        # Region [4..11]^2 covers the chunk's first half only.
        src, dst = overlap_slices(self.CHUNK, (4, 4), (11, 11))
        assert src == (np.s_[0:4], np.s_[0:4])
        assert dst == (np.s_[4:8], np.s_[4:8])

    def test_corner_cell_of_chunk(self):
        src, dst = overlap_slices(self.CHUNK, (15, 15), (20, 20))
        assert src == (np.s_[7:8], np.s_[7:8])
        assert dst == (np.s_[0:1], np.s_[0:1])


@pytest.fixture
def stored(tmp_path):
    """16x16 array on an 8x8 chunk grid with three versions."""
    manager = VersionedStorageManager(tmp_path, chunk_bytes=512,
                                      compressor="none",
                                      delta_policy="chain")
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int64))
    rng = np.random.default_rng(99)
    data = rng.integers(0, 1000, (16, 16)).astype(np.int64)
    contents = []
    for _ in range(3):
        manager.insert("A", data)
        contents.append(data)
        data = data + rng.integers(0, 2, (16, 16)).astype(np.int64)
    yield manager, contents
    manager.close()


class TestReadRegionEdges:
    def test_single_cell_regions(self, stored):
        manager, contents = stored
        # Interior, chunk corners, and array corners.
        for cell in [(0, 0), (7, 7), (8, 8), (7, 8), (15, 15), (3, 12)]:
            out = manager.select_region("A", 3, cell, cell).single()
            assert out.shape == (1, 1)
            assert out[0, 0] == contents[2][cell]

    def test_region_exactly_on_chunk_boundaries(self, stored):
        manager, contents = stored
        # Each quadrant is exactly one chunk.
        for lo, hi in [((0, 0), (7, 7)), ((0, 8), (7, 15)),
                       ((8, 0), (15, 7)), ((8, 8), (15, 15))]:
            out = manager.select_region("A", 2, lo, hi).single()
            expected = contents[1][lo[0]:hi[0] + 1, lo[1]:hi[1] + 1]
            np.testing.assert_array_equal(out, expected)

    def test_region_spanning_all_chunk_seams(self, stored):
        manager, contents = stored
        out = manager.select_region("A", 3, (4, 4), (11, 11)).single()
        np.testing.assert_array_equal(out, contents[2][4:12, 4:12])

    def test_full_region_equals_read_version(self, stored):
        manager, contents = stored
        for version, expected in enumerate(contents, 1):
            full = manager.select_region("A", version,
                                         (0, 0), (15, 15)).single()
            whole = manager.select("A", version).single()
            np.testing.assert_array_equal(full, whole)
            np.testing.assert_array_equal(full, expected)

    def test_one_row_and_one_column_strips(self, stored):
        manager, contents = stored
        row = manager.select_region("A", 1, (7, 0), (7, 15)).single()
        np.testing.assert_array_equal(row, contents[0][7:8, :])
        col = manager.select_region("A", 1, (0, 8), (15, 8)).single()
        np.testing.assert_array_equal(col, contents[0][:, 8:9])

    def test_parallel_region_edges_identical(self, stored, tmp_path):
        manager, _ = stored
        parallel = VersionedStorageManager(tmp_path / "par",
                                           chunk_bytes=512,
                                           compressor="none",
                                           delta_policy="chain",
                                           workers=4)
        parallel.create_array("A", ArraySchema.simple((16, 16),
                                                      dtype=np.int64))
        for version in (1, 2, 3):
            parallel.insert("A", manager.select("A", version))
        for lo, hi in [((7, 7), (7, 7)), ((0, 0), (7, 7)),
                       ((4, 4), (11, 11)), ((0, 0), (15, 15))]:
            np.testing.assert_array_equal(
                parallel.select_region("A", 3, lo, hi).single(),
                manager.select_region("A", 3, lo, hi).single())
        parallel.close()
