"""Tests for the chunk store and both delta placements (Section III-B.3)."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.storage.chunkstore import (
    COLOCATED,
    PER_VERSION,
    ChunkLocation,
    ChunkStore,
)
from repro.storage.iostats import IOStats


@pytest.fixture(params=[PER_VERSION, COLOCATED])
def store(request, tmp_path) -> ChunkStore:
    return ChunkStore(tmp_path, placement=request.param)


class TestWriteRead:
    def test_roundtrip(self, store):
        location = store.write_chunk("A", 1, "value", "chunk-0-0-9-9.dat",
                                     b"payload-bytes")
        assert store.read_chunk(location) == b"payload-bytes"

    def test_multiple_versions_same_chunk(self, store):
        loc1 = store.write_chunk("A", 1, "value", "chunk-0-0-9-9.dat", b"v1")
        loc2 = store.write_chunk("A", 2, "value", "chunk-0-0-9-9.dat",
                                 b"version-two")
        assert store.read_chunk(loc1) == b"v1"
        assert store.read_chunk(loc2) == b"version-two"

    def test_missing_file_raises(self, store):
        with pytest.raises(StorageError):
            store.read_chunk(ChunkLocation("A/nowhere.dat", 0, 4))

    def test_truncated_read_raises(self, store):
        location = store.write_chunk("A", 1, "value", "c.dat", b"abc")
        bad = ChunkLocation(location.path, location.offset, 100)
        with pytest.raises(StorageError):
            store.read_chunk(bad)

    def test_unknown_placement_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ChunkStore(tmp_path, placement="scattered")


class TestPlacementLayouts:
    # These assert the *local filesystem* layout (one file per object,
    # appends growing one file), so they pin backend="local" instead of
    # inheriting the REPRO_BACKEND matrix default — the object backend
    # stages appends in a pending upload and only materializes the file
    # at the finalize barrier.
    def test_per_version_one_file_per_version(self, tmp_path):
        store = ChunkStore(tmp_path, placement=PER_VERSION,
                           backend="local")
        store.write_chunk("A", 1, "value", "c.dat", b"v1")
        store.write_chunk("A", 2, "value", "c.dat", b"v2")
        files = sorted(p.relative_to(tmp_path).as_posix()
                       for p in tmp_path.rglob("*.dat"))
        assert files == ["A/v1/value/c.dat", "A/v2/value/c.dat"]

    def test_colocated_appends_to_one_file(self, tmp_path):
        store = ChunkStore(tmp_path, placement=COLOCATED,
                           backend="local")
        loc1 = store.write_chunk("A", 1, "value", "c.dat", b"v1..")
        loc2 = store.write_chunk("A", 2, "value", "c.dat", b"v2..")
        files = list(tmp_path.rglob("*.dat"))
        assert len(files) == 1
        assert loc1.path == loc2.path
        assert loc2.offset == loc1.offset + 4


class TestMaintenance:
    @pytest.mark.parametrize("placement", [PER_VERSION, COLOCATED])
    def test_delete_array_removes_files(self, tmp_path, placement):
        # Disk-level assertion, so pinned to the local backend (the
        # backend-agnostic delete contract lives in test_backends).
        store = ChunkStore(tmp_path, placement=placement,
                           backend="local")
        store.write_chunk("A", 1, "value", "c.dat", b"data")
        store.write_chunk("B", 1, "value", "c.dat", b"keep")
        store.delete_array("A")
        remaining = [p for p in tmp_path.rglob("*.dat")]
        assert len(remaining) == 1
        assert "B" in str(remaining[0])

    def test_total_bytes(self, store):
        store.write_chunk("A", 1, "value", "c.dat", b"12345")
        assert store.total_bytes("A") == 5
        assert store.total_bytes("missing") == 0

    def test_repack_drops_dead_payloads(self, tmp_path):
        store = ChunkStore(tmp_path, placement=COLOCATED)
        loc1 = store.write_chunk("A", 1, "value", "c.dat", b"live-one")
        store.write_chunk("A", 2, "value", "c.dat", b"dead")
        loc3 = store.write_chunk("A", 3, "value", "c.dat", b"live-two")
        new = store.repack("A", [(loc1, "k1"), (loc3, "k3")])
        assert store.read_chunk(new["k1"]) == b"live-one"
        assert store.read_chunk(new["k3"]) == b"live-two"
        # Swap, don't overwrite: the old object (and the payloads it
        # co-locates, dead ones included) is untouched until the caller
        # commits the new locations and reclaims it.
        assert store.read_chunk(loc1) == b"live-one"
        assert store.read_chunk(loc3) == b"live-two"
        store.reclaim({loc1.path, loc3.path})
        assert store.total_bytes("A") == len(b"live-one") + len(b"live-two")

    def test_repack_writes_to_new_object_paths(self, tmp_path):
        store = ChunkStore(tmp_path, placement=COLOCATED)
        loc = store.write_chunk("A", 1, "value", "c.dat", b"payload!")
        first = store.repack("A", [(loc, "k")])
        assert first["k"].path != loc.path
        assert first["k"].path == ChunkStore.repack_target(loc.path)
        store.reclaim({loc.path})
        # A second pass bumps the suffix again — never an in-place
        # rewrite, even of a previous pass's object.
        second = store.repack("A", [(first["k"], "k")])
        assert second["k"].path not in (loc.path, first["k"].path)
        store.reclaim({first["k"].path})
        assert store.read_chunk(second["k"]) == b"payload!"
        assert store.total_bytes("A") == len(b"payload!")

    def test_repack_mixed_generations_never_collide(self, tmp_path):
        # After a repack + reclaim, new writes recreate the *base*
        # object path, so a later repack sees live payloads in two
        # generations of the same name.  The naive per-path bump would
        # rewrite the base group onto the still-live @r1 object
        # (truncating it mid-repack); targets must clear every
        # generation present in the batch.
        store = ChunkStore(tmp_path, placement=COLOCATED)
        loc1 = store.write_chunk("A", 1, "value", "c.dat", b"first-gen")
        moved = store.repack("A", [(loc1, "k1")])
        store.reclaim({loc1.path})
        loc2 = store.write_chunk("A", 2, "value", "c.dat", b"second-gen")
        assert loc2.path == loc1.path  # the base path is back in use
        new = store.repack("A", [(moved["k1"], "k1"), (loc2, "k2")])
        assert len({new["k1"].path, new["k2"].path,
                    moved["k1"].path, loc2.path}) == 4
        # Pre-swap locations still serve (nothing was overwritten) ...
        assert store.read_chunk(moved["k1"]) == b"first-gen"
        assert store.read_chunk(loc2) == b"second-gen"
        store.reclaim({moved["k1"].path, loc2.path})
        # ... and the swapped locations serve the same bytes after.
        assert store.read_chunk(new["k1"]) == b"first-gen"
        assert store.read_chunk(new["k2"]) == b"second-gen"

    def test_repack_target_suffix_scheme(self):
        assert ChunkStore.repack_target("A/chunks/v/c.dat") == \
            "A/chunks/v/c.dat@r1"
        assert ChunkStore.repack_target("A/chunks/v/c.dat@r1") == \
            "A/chunks/v/c.dat@r2"
        assert ChunkStore.repack_target("A/chunks/v/c.dat@r9") == \
            "A/chunks/v/c.dat@r10"
        # A literal "@r" not followed by a generation number is part of
        # the object name, not a suffix to bump.
        assert ChunkStore.repack_target("A/c@roo.dat") == "A/c@roo.dat@r1"
        assert ChunkStore.repack_target("bare") == "bare@r1"

    def test_mid_repack_fault_is_unobservable(self, tmp_path):
        # Two co-located objects; the seeded schedule kills the second
        # repack write.  Pre-fix (in-place rewrite) the first object
        # was already overwritten when the fault hit, so every location
        # pointing into it served corrupt bytes; post-fix both old
        # objects still serve, and a retry converges.
        from repro.storage.backend import (
            FaultInjectingBackend,
            LocalFileBackend,
        )

        inner = LocalFileBackend(tmp_path)
        store = ChunkStore(tmp_path, placement=COLOCATED, backend=inner)
        loc_a = store.write_chunk("A", 1, "value", "a.dat", b"alpha-v1")
        loc_b = store.write_chunk("A", 1, "other", "b.dat", b"bravo-v1")

        faulty = FaultInjectingBackend(inner,
                                       schedule={"write": frozenset({2})})
        store.backend = faulty
        with pytest.raises(StorageError):
            store.repack("A", [(loc_a, "ka"), (loc_b, "kb")])
        # Both pre-repack locations still serve correct bytes.
        store.backend = inner
        assert store.read_chunk(loc_a) == b"alpha-v1"
        assert store.read_chunk(loc_b) == b"bravo-v1"
        # The retry (fault schedule exhausted) completes the swap.
        new = store.repack("A", [(loc_a, "ka"), (loc_b, "kb")])
        assert store.read_chunk(new["ka"]) == b"alpha-v1"
        assert store.read_chunk(new["kb"]) == b"bravo-v1"


class TestIOStats:
    def test_counters(self, tmp_path):
        stats = IOStats()
        store = ChunkStore(tmp_path, placement=COLOCATED, stats=stats)
        location = store.write_chunk("A", 1, "value", "c.dat", b"12345678")
        assert stats.bytes_written == 8
        assert stats.chunks_written == 1
        store.read_chunk(location)
        assert stats.bytes_read == 8
        assert stats.chunks_read == 1

    def test_measure_window(self, tmp_path):
        stats = IOStats()
        store = ChunkStore(tmp_path, placement=COLOCATED, stats=stats)
        location = store.write_chunk("A", 1, "value", "c.dat", b"abcd")
        with stats.measure() as window:
            store.read_chunk(location)
        assert window.bytes_read == 4
        assert window.bytes_written == 0
        assert stats.bytes_written == 4  # outer counters unaffected

    def test_reset_and_delta(self):
        stats = IOStats()
        stats.record_read(10)
        snap = stats.snapshot()
        stats.record_read(5)
        delta = stats.delta_since(snap)
        assert delta.bytes_read == 5
        stats.reset()
        assert stats.bytes_read == 0
