"""Fault-injection tests: corrupt files, missing files, crash debris.

The storage layer must fail loudly — never return wrong array contents —
when the chunk files on disk are damaged (Zen: "errors should never
pass silently").

The second half exercises :class:`FaultInjectingBackend`, the *seeded*
half of the story: instead of hand-corrupting files, a deterministic
schedule makes the substrate itself misbehave — Nth-write failures,
torn appends, barrier errors, dead nodes — and the storage stack must
keep its transactional promises (no catalog trace of a failed version,
clean retry, loud reads on a dead node).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import CodecError, ReproError, StorageError
from repro.core.schema import ArraySchema
from repro.storage import (
    FAULT_KINDS,
    FaultInjectingBackend,
    InMemoryBackend,
    VersionedStorageManager,
    seeded_fault_schedule,
)


@pytest.fixture
def manager(tmp_path):
    return VersionedStorageManager(tmp_path, chunk_bytes=2048,
                                   compressor="lz")


@pytest.fixture
def filled(manager, rng):
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int32))
    data = rng.integers(0, 1000, (16, 16)).astype(np.int32)
    for _ in range(3):
        manager.insert("A", data)
        data = data + 1
    return manager


def _chunk_files(root: Path) -> list[Path]:
    return sorted((root / "data").rglob("*.dat"))


class TestCorruptChunks:
    def test_deleted_chunk_file(self, filled, tmp_path):
        for path in _chunk_files(tmp_path):
            path.unlink()
        with pytest.raises(StorageError):
            filled.select("A", 1)

    def test_truncated_chunk_file(self, filled, tmp_path):
        for path in _chunk_files(tmp_path):
            payload = path.read_bytes()
            path.write_bytes(payload[:len(payload) // 2])
        with pytest.raises((StorageError, CodecError)):
            filled.select("A", 3)

    def test_flipped_payload_bytes(self, filled, tmp_path):
        # Corrupt the compressed payload: decoding must raise, not
        # return garbage silently.
        for path in _chunk_files(tmp_path):
            payload = bytearray(path.read_bytes())
            payload[len(payload) // 2] ^= 0xFF
            path.write_bytes(bytes(payload))
        with pytest.raises(ReproError):
            filled.select("A", 1)

    def test_zeroed_file(self, filled, tmp_path):
        for path in _chunk_files(tmp_path):
            path.write_bytes(b"\x00" * path.stat().st_size)
        with pytest.raises(ReproError):
            filled.select("A", 2)


class TestCatalogRobustness:
    def test_missing_chunk_record(self, filled):
        # Simulate a partially-committed version: drop one chunk row.
        record = filled.catalog.get_array("A")
        chunk = filled.catalog.chunks_for_version(record.array_id, 2)[0]
        filled.catalog._conn.execute(
            "DELETE FROM chunks WHERE array_id = ? AND version_num = ?"
            " AND chunk_name = ? AND attribute = ?",
            (record.array_id, 2, chunk.chunk_name, chunk.attribute))
        filled.catalog._conn.commit()
        with pytest.raises(ReproError):
            filled.select("A", 2)

    def test_cyclic_base_references_detected(self, filled):
        # Force a delta cycle directly in the catalog; reads must detect
        # it rather than loop forever (Observation 2 enforced at read).
        record = filled.catalog.get_array("A")
        filled.catalog._conn.execute(
            "UPDATE chunks SET base_version = 2, delta_codec = 'hybrid'"
            " WHERE array_id = ? AND version_num = 1",
            (record.array_id,))
        filled.catalog._conn.execute(
            "UPDATE chunks SET base_version = 1"
            " WHERE array_id = ? AND version_num = 2",
            (record.array_id,))
        filled.catalog._conn.commit()
        with pytest.raises(StorageError, match="cycle"):
            filled.select("A", 1)

    def test_reopen_store_from_disk(self, tmp_path, rng):
        # Everything needed to read must survive a process restart.
        first = VersionedStorageManager(tmp_path, chunk_bytes=2048)
        first.create_array("A", ArraySchema.simple((8, 8),
                                                   dtype=np.int64))
        data = rng.integers(0, 99, (8, 8)).astype(np.int64)
        first.insert("A", data)
        first.insert("A", data + 7)
        first.catalog.close()

        reopened = VersionedStorageManager(tmp_path, chunk_bytes=2048)
        assert reopened.list_arrays() == ["A"]
        np.testing.assert_array_equal(
            reopened.select("A", 2).single(), data + 7)
        reopened.catalog.close()


class TestSeededSchedule:
    def test_seed_zero_is_fault_free(self):
        assert seeded_fault_schedule(0) == \
            {kind: frozenset() for kind in FAULT_KINDS}

    def test_same_seed_same_schedule(self):
        assert seeded_fault_schedule(7) == seeded_fault_schedule(7)
        assert seeded_fault_schedule(7) != seeded_fault_schedule(23)

    def test_schedule_covers_every_kind(self):
        schedule = seeded_fault_schedule(11)
        assert set(schedule) == set(FAULT_KINDS)
        for indices in schedule.values():
            assert indices and all(index >= 1 for index in indices)

    def test_negative_seed_rejected(self):
        with pytest.raises(StorageError):
            seeded_fault_schedule(-1)

    def test_unknown_kind_in_explicit_schedule_rejected(self):
        with pytest.raises(StorageError, match="unknown operation"):
            FaultInjectingBackend(InMemoryBackend(),
                                  schedule={"read": frozenset({1})})


class TestInjectedFaults:
    def test_nth_write_fails_without_landing(self):
        backend = FaultInjectingBackend(
            InMemoryBackend(), schedule={"write": frozenset({2})})
        backend.write("A/c.dat", b"first")
        with pytest.raises(StorageError, match="write #2"):
            backend.write("A/c.dat", b"second")
        # The failed write left the object untouched.
        assert backend.read("A/c.dat", 0, 5) == b"first"
        backend.write("A/c.dat", b"third")
        assert backend.read("A/c.dat", 0, 5) == b"third"
        assert backend.injected == [("write", 2)]
        assert backend.faults_injected == 1

    def test_torn_append_leaves_deterministic_prefix(self):
        def run():
            backend = FaultInjectingBackend(
                InMemoryBackend(), seed=9,
                schedule={"append": frozenset({2})})
            backend.append("A/c.dat", b"0123456789")
            with pytest.raises(StorageError, match="torn"):
                backend.append("A/c.dat", b"abcdefghij")
            return backend.total_bytes("A/c.dat")

        first, second = run(), run()
        # The tear point is derived from (seed, index): replayable.
        assert first == second
        assert 10 <= first < 20  # a strict prefix of the torn payload

    def test_sync_fault_raises_before_barrier(self, tmp_path):
        inner = InMemoryBackend()
        synced = []
        inner.sync = lambda paths, max_workers=0: synced.append(paths)
        backend = FaultInjectingBackend(
            inner, schedule={"sync": frozenset({1})})
        with pytest.raises(StorageError, match="sync #1"):
            backend.sync(["A/c.dat"])
        assert synced == []  # the inner barrier never ran
        backend.sync(["A/c.dat"])
        assert synced == [["A/c.dat"]]

    def test_dead_node_blackholes_every_operation(self):
        backend = FaultInjectingBackend(InMemoryBackend(), seed=0)
        backend.write("A/c.dat", b"alive")
        backend.mark_dead()
        assert backend.dead
        for op in (lambda: backend.write("A/c.dat", b"x"),
                   lambda: backend.append("A/c.dat", b"x"),
                   lambda: backend.read("A/c.dat", 0, 5),
                   lambda: backend.read_many("A/c.dat", [(0, 5)]),
                   lambda: backend.sync(["A/c.dat"]),
                   lambda: backend.delete("A/c.dat"),
                   lambda: backend.total_bytes()):
            with pytest.raises(StorageError, match="dead"):
                op()
        backend.revive()
        assert backend.read("A/c.dat", 0, 5) == b"alive"

    def test_faults_replay_identically_across_instances(self):
        def drive(backend):
            fired = []
            for index in range(1, 25):
                try:
                    backend.append("A/c.dat", bytes(8))
                except StorageError:
                    fired.append(index)
            return fired

        first = drive(FaultInjectingBackend(InMemoryBackend(), seed=23))
        second = drive(FaultInjectingBackend(InMemoryBackend(), seed=23))
        assert first == second and first  # same schedule, faults fired


class TestManagerUnderInjectedFaults:
    """The transactional write path keeps its promises when the
    substrate itself fails mid-version."""

    def test_failed_insert_leaves_no_catalog_trace_and_retries(
            self, tmp_path, rng):
        manager = VersionedStorageManager(
            tmp_path, chunk_bytes=1024,
            backend=FaultInjectingBackend(
                InMemoryBackend(),
                schedule={"append": frozenset({2})}))
        manager.create_array("A", ArraySchema.simple((16, 16),
                                                     dtype=np.int32))
        data = rng.integers(0, 1000, (16, 16)).astype(np.int32)
        manager.insert("A", data)
        with pytest.raises(StorageError, match="torn"):
            manager.insert("A", data + 1)
        # No partial version: the catalog never saw the failed insert.
        assert manager.get_versions("A") == [1]
        # The torn debris is unreferenced; the retry lands cleanly.
        assert manager.insert("A", data + 1) == 2
        np.testing.assert_array_equal(manager.select("A", 2).single(),
                                      data + 1)
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      data)
        manager.close()

    def test_sync_fault_blocks_the_catalog_commit(self, tmp_path, rng):
        manager = VersionedStorageManager(
            tmp_path, chunk_bytes=1024,
            backend=FaultInjectingBackend(
                InMemoryBackend(),
                schedule={"sync": frozenset({2})}))
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int32))
        data = rng.integers(0, 100, (8, 8)).astype(np.int32)
        manager.insert("A", data)
        with pytest.raises(StorageError, match="sync #2"):
            manager.insert("A", data + 1)
        assert manager.get_versions("A") == [1]
        assert manager.insert("A", data + 1) == 2
        manager.close()

    def test_dead_node_reads_fail_loudly(self, tmp_path, rng):
        backend = FaultInjectingBackend(InMemoryBackend(), seed=0)
        manager = VersionedStorageManager(tmp_path, chunk_bytes=1024,
                                          backend=backend)
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int32))
        data = rng.integers(0, 100, (8, 8)).astype(np.int32)
        manager.insert("A", data)
        backend.mark_dead()
        with pytest.raises(StorageError, match="dead"):
            manager.select("A", 1)
        backend.revive()
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      data)
        manager.close()

    def test_spec_string_reaches_the_manager(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, backend="faulty:0")
        assert isinstance(manager.backend, FaultInjectingBackend)
        assert manager.backend.seed == 0
        manager.close()
