"""Fault-injection tests: corrupt files, missing files, crash debris.

The storage layer must fail loudly — never return wrong array contents —
when the chunk files on disk are damaged (Zen: "errors should never
pass silently").
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import CodecError, ReproError, StorageError
from repro.core.schema import ArraySchema
from repro.storage import VersionedStorageManager


@pytest.fixture
def manager(tmp_path):
    return VersionedStorageManager(tmp_path, chunk_bytes=2048,
                                   compressor="lz")


@pytest.fixture
def filled(manager, rng):
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int32))
    data = rng.integers(0, 1000, (16, 16)).astype(np.int32)
    for _ in range(3):
        manager.insert("A", data)
        data = data + 1
    return manager


def _chunk_files(root: Path) -> list[Path]:
    return sorted((root / "data").rglob("*.dat"))


class TestCorruptChunks:
    def test_deleted_chunk_file(self, filled, tmp_path):
        for path in _chunk_files(tmp_path):
            path.unlink()
        with pytest.raises(StorageError):
            filled.select("A", 1)

    def test_truncated_chunk_file(self, filled, tmp_path):
        for path in _chunk_files(tmp_path):
            payload = path.read_bytes()
            path.write_bytes(payload[:len(payload) // 2])
        with pytest.raises((StorageError, CodecError)):
            filled.select("A", 3)

    def test_flipped_payload_bytes(self, filled, tmp_path):
        # Corrupt the compressed payload: decoding must raise, not
        # return garbage silently.
        for path in _chunk_files(tmp_path):
            payload = bytearray(path.read_bytes())
            payload[len(payload) // 2] ^= 0xFF
            path.write_bytes(bytes(payload))
        with pytest.raises(ReproError):
            filled.select("A", 1)

    def test_zeroed_file(self, filled, tmp_path):
        for path in _chunk_files(tmp_path):
            path.write_bytes(b"\x00" * path.stat().st_size)
        with pytest.raises(ReproError):
            filled.select("A", 2)


class TestCatalogRobustness:
    def test_missing_chunk_record(self, filled):
        # Simulate a partially-committed version: drop one chunk row.
        record = filled.catalog.get_array("A")
        chunk = filled.catalog.chunks_for_version(record.array_id, 2)[0]
        filled.catalog._conn.execute(
            "DELETE FROM chunks WHERE array_id = ? AND version_num = ?"
            " AND chunk_name = ? AND attribute = ?",
            (record.array_id, 2, chunk.chunk_name, chunk.attribute))
        filled.catalog._conn.commit()
        with pytest.raises(ReproError):
            filled.select("A", 2)

    def test_cyclic_base_references_detected(self, filled):
        # Force a delta cycle directly in the catalog; reads must detect
        # it rather than loop forever (Observation 2 enforced at read).
        record = filled.catalog.get_array("A")
        filled.catalog._conn.execute(
            "UPDATE chunks SET base_version = 2, delta_codec = 'hybrid'"
            " WHERE array_id = ? AND version_num = 1",
            (record.array_id,))
        filled.catalog._conn.execute(
            "UPDATE chunks SET base_version = 1"
            " WHERE array_id = ? AND version_num = 2",
            (record.array_id,))
        filled.catalog._conn.commit()
        with pytest.raises(StorageError, match="cycle"):
            filled.select("A", 1)

    def test_reopen_store_from_disk(self, tmp_path, rng):
        # Everything needed to read must survive a process restart.
        first = VersionedStorageManager(tmp_path, chunk_bytes=2048)
        first.create_array("A", ArraySchema.simple((8, 8),
                                                   dtype=np.int64))
        data = rng.integers(0, 99, (8, 8)).astype(np.int64)
        first.insert("A", data)
        first.insert("A", data + 7)
        first.catalog.close()

        reopened = VersionedStorageManager(tmp_path, chunk_bytes=2048)
        assert reopened.list_arrays() == ["A"]
        np.testing.assert_array_equal(
            reopened.select("A", 2).single(), data + 7)
        reopened.catalog.close()
