"""The staged write pipeline: plan → encode → commit.

The encode stage's thread-pool fan-out must be invisible except in
wall-clock: byte-identical payloads at byte-identical locations with
identical catalog rows for any workers degree, on any backend.  The
commit stage must stay atomic at version granularity — a mid-encode
failure leaves zero chunk rows, no observable version, and a warm
cache — and concurrent readers must never see a version that is not
yet fully committed.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.array import ArrayData
from repro.core.errors import StorageError
from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.storage import VersionedStorageManager

BACKENDS = ("local", "durable", "memory", "striped:2:memory",
            "object", "striped:2:object")
DEGREES = (0, 1, 4)


def _schema(shape=(20, 20)) -> ArraySchema:
    dims = tuple(Dimension(name, 0, extent - 1)
                 for name, extent in zip("IJ", shape))
    return ArraySchema(dimensions=dims,
                       attributes=(Attribute("a", np.dtype(np.int64)),
                                   Attribute("b", np.dtype(np.float32))))


def _fill(manager: VersionedStorageManager, versions: int = 3) -> None:
    """Inserts, a branch, and a merge — every write path in one store."""
    schema = _schema()
    manager.create_array("A", schema)
    rng = np.random.default_rng(7)
    a = rng.integers(0, 1000, (20, 20)).astype(np.int64)
    b = rng.random((20, 20)).astype(np.float32)
    for _ in range(versions):
        manager.insert("A", ArrayData(schema, {"a": a, "b": b}))
        a = a + rng.integers(0, 3, (20, 20)).astype(np.int64)
        b = b + 0.25
    manager.branch("A", 2, "B")
    manager.merge([("A", 1), ("A", versions)], "M")


class TestParallelWriteConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stores_byte_identical_across_workers(self, tmp_path,
                                                  backend):
        fingerprints = set()
        for degree in DEGREES:
            manager = VersionedStorageManager(
                tmp_path / f"{backend.replace(':', '_')}-w{degree}",
                chunk_bytes=800, compressor="none",
                delta_policy="chain", backend=backend, workers=degree)
            _fill(manager)
            fingerprints.add(manager.fingerprint())
            manager.close()
        assert len(fingerprints) == 1

    def test_fingerprint_identical_across_backends(self, tmp_path):
        """Placement is backend-agnostic: the same logical store means
        the same paths, offsets, and bytes on every substrate."""
        fingerprints = set()
        for backend in BACKENDS:
            manager = VersionedStorageManager(
                tmp_path / backend.replace(":", "_"),
                chunk_bytes=800, compressor="none",
                delta_policy="chain", backend=backend, workers=4)
            _fill(manager)
            fingerprints.add(manager.fingerprint())
            manager.close()
        assert len(fingerprints) == 1

    def test_per_call_workers_override(self, tmp_path):
        serial = VersionedStorageManager(tmp_path / "serial",
                                         chunk_bytes=800,
                                         delta_policy="chain", workers=0)
        override = VersionedStorageManager(tmp_path / "override",
                                           chunk_bytes=800,
                                           delta_policy="chain",
                                           workers=0)
        schema = _schema()
        rng = np.random.default_rng(11)
        a = rng.integers(0, 100, (20, 20)).astype(np.int64)
        b = rng.random((20, 20)).astype(np.float32)
        for manager in (serial, override):
            manager.create_array("A", schema)
        data = ArrayData(schema, {"a": a, "b": b})
        serial.insert("A", data)
        override.insert("A", data, workers=4)
        assert serial.fingerprint() == override.fingerprint()
        serial.close()
        override.close()

    @pytest.mark.parametrize("degree", DEGREES)
    def test_one_encode_task_per_chunk(self, tmp_path, degree):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          backend="memory",
                                          delta_policy="chain",
                                          workers=degree)
        schema = _schema()
        manager.create_array("A", schema)
        rng = np.random.default_rng(3)
        grid = manager.grid_for(manager.catalog.get_array("A"))
        chunks = sum(1 for _ in grid.chunks()) * len(schema.attributes)
        with manager.stats.measure() as window:
            manager.insert("A", ArrayData(schema, {
                "a": rng.integers(0, 9, (20, 20)).astype(np.int64),
                "b": rng.random((20, 20)).astype(np.float32)}))
        assert window.encode_tasks == chunks
        assert window.chunks_written == chunks
        manager.close()


class TestConcurrentPlacement:
    """The commit stage's placement fan must be observable in IOStats
    and must stand down for order-sensitive backends."""

    @pytest.mark.parametrize("backend", ("local", "memory"))
    def test_fan_engages_at_parallel_degree(self, tmp_path, backend):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          backend=backend,
                                          delta_policy="chain", workers=4)
        _fill(manager)
        assert manager.stats.concurrent_placements > 0
        # Every concurrently dispatched placement is still exactly one
        # chunk write — the fan changes scheduling, not accounting.
        assert manager.stats.concurrent_placements <= \
            manager.stats.chunks_written
        manager.close()

    def test_serial_degree_never_fans(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain", workers=1)
        _fill(manager)
        assert manager.stats.concurrent_placements == 0
        manager.close()

    def test_fault_injecting_backend_stays_serial(self, tmp_path):
        """The chaos backend's seeded schedule counts operation indices,
        so placements must reach it in deterministic order even when the
        manager is configured for parallel writes."""
        from repro.storage.backend import (FaultInjectingBackend,
                                           InMemoryBackend)
        backend = FaultInjectingBackend(InMemoryBackend(), schedule={})
        assert backend.serial_writes
        manager = VersionedStorageManager(tmp_path, backend=backend,
                                          chunk_bytes=800,
                                          delta_policy="chain", workers=4)
        _fill(manager)
        assert manager.stats.concurrent_placements == 0
        # The encode stage still fans — only placement order is pinned.
        assert manager.stats.encode_tasks > 0
        manager.close()


class TestMidEncodeFailure:
    @pytest.mark.parametrize("degree", (0, 4))
    def test_zero_rows_no_version_warm_cache(self, tmp_path, degree):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain",
                                          workers=degree,
                                          cache_bytes=1 << 20)
        schema = _schema()
        manager.create_array("A", schema)
        rng = np.random.default_rng(5)
        data = ArrayData(schema, {
            "a": rng.integers(0, 9, (20, 20)).astype(np.int64),
            "b": rng.random((20, 20)).astype(np.float32)})
        manager.insert("A", data)
        manager.select("A", 1)  # warms the cache
        warm = manager.cache_info()["entries"]
        assert warm > 0

        original = manager.encoder.encode_chunk
        calls = {"n": 0}

        def failing_encode(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 3:  # fail mid-version, after some chunks
                raise StorageError("codec blew up")
            return original(*args, **kwargs)

        manager.encoder.encode_chunk = failing_encode
        with pytest.raises(StorageError):
            manager.insert("A", data)
        manager.encoder.encode_chunk = original

        record = manager.catalog.get_array("A")
        # Zero chunk rows, no observable version, warm cache.
        assert manager.catalog.chunks_for_version(record.array_id, 2) \
            == []
        assert manager.get_versions("A") == [1]
        assert manager.cache_info()["entries"] == warm
        with manager.stats.measure() as window:
            manager.select("A", 1)
        assert window.chunks_read == 0  # still served from cache
        # The store recovers once the fault clears.
        assert manager.insert("A", data) == 2
        manager.close()

    def test_version_row_and_chunk_rows_commit_atomically(self,
                                                          tmp_path):
        """The version row rides the same transaction as its chunk
        rows: if either cannot land (here, a racing writer already
        claimed the number), neither does."""
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain")
        schema = _schema()
        manager.create_array("A", schema)
        rng = np.random.default_rng(5)
        data = ArrayData(schema, {
            "a": rng.integers(0, 9, (20, 20)).astype(np.int64),
            "b": rng.random((20, 20)).astype(np.float32)})
        manager.insert("A", data)

        # A conflicting version row appears after this insert computed
        # its number (the lost-race shape): the commit must fail whole.
        record = manager.catalog.get_array("A")
        original = manager.store.write_chunk

        def racing_write(*args, **kwargs):
            if manager.catalog.latest_version(record.array_id) == 1:
                manager.catalog.add_version(record.array_id, 2, 1,
                                            kind="insert",
                                            timestamp=999.0)
            return original(*args, **kwargs)

        manager.store.write_chunk = racing_write
        with pytest.raises(Exception):
            manager.insert("A", data)
        manager.store.write_chunk = original

        # The failed insert's transaction rolled back whole: the rival
        # version row stands alone with zero chunk rows from the loser.
        assert manager.catalog.chunks_for_version(record.array_id, 2) \
            == []
        manager.close()

    def test_successful_insert_invalidates_after_commit(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain",
                                          cache_bytes=1 << 20)
        schema = _schema()
        manager.create_array("A", schema)
        rng = np.random.default_rng(5)
        data = ArrayData(schema, {
            "a": rng.integers(0, 9, (20, 20)).astype(np.int64),
            "b": rng.random((20, 20)).astype(np.float32)})
        manager.insert("A", data)
        manager.select("A", 1)
        assert manager.cache_info()["entries"] > 0
        manager.insert("A", data)
        # The commit succeeded, so the array's cache entries were
        # dropped (the seed behaviour, now ordered after the commit).
        assert manager.cache_info()["entries"] == 0
        manager.close()


class TestConcurrentReadersDuringParallelInsert:
    def test_readers_never_see_partial_version(self, tmp_path):
        """Chunk rows land before the version row, and both commit
        atomically — so any version a reader can *name* is fully
        readable, even while a parallel insert is in flight."""
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain",
                                          workers=4)
        schema = _schema()
        manager.create_array("A", schema)
        rng = np.random.default_rng(13)
        contents = {}

        def version_data(v):
            base = np.full((20, 20), v, dtype=np.int64)
            return ArrayData(schema, {
                "a": base,
                "b": np.full((20, 20), float(v), dtype=np.float32)})

        manager.insert("A", version_data(1))
        contents[1] = version_data(1)

        # Slow the placement stage so readers overlap the write window.
        original = manager.store.write_chunk

        def slow_write(*args, **kwargs):
            threading.Event().wait(0.002)
            return original(*args, **kwargs)

        failures = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                versions = manager.get_versions("A")
                if not versions:
                    failures.append("no versions visible")
                    return
                v = versions[-1]
                try:
                    got = manager.select("A", v)
                except Exception as exc:  # partial version observed
                    failures.append(f"v{v}: {exc!r}")
                    return
                expected = version_data(v)
                if not np.array_equal(got.attribute("a"),
                                      expected.attribute("a")):
                    failures.append(f"v{v}: wrong contents")
                    return

        manager.store.write_chunk = slow_write
        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for v in range(2, 5):
                manager.insert("A", version_data(v))
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            manager.store.write_chunk = original
        assert failures == []
        assert manager.get_versions("A") == [1, 2, 3, 4]
        manager.close()


class TestRepackTransactionality:
    def test_repack_rewrites_catalog_in_one_transaction(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain")
        _fill(manager)
        calls = {"put_chunk": 0, "put_chunks": 0}
        original_put_chunk = manager.catalog.put_chunk
        original_put_chunks = manager.catalog.put_chunks

        def spy_put_chunk(record):
            calls["put_chunk"] += 1
            return original_put_chunk(record)

        def spy_put_chunks(records):
            calls["put_chunks"] += 1
            return original_put_chunks(records)

        manager.catalog.put_chunk = spy_put_chunk
        manager.catalog.put_chunks = spy_put_chunks
        record = manager.catalog.get_array("A")
        manager._repack(record)
        manager.catalog.put_chunk = original_put_chunk
        manager.catalog.put_chunks = original_put_chunks

        # One transaction for all rewritten rows; never row-at-a-time.
        assert calls["put_chunk"] == 0
        assert calls["put_chunks"] == 1
        # The store still reads cleanly through the new locations.
        for version in manager.get_versions("A"):
            manager.select("A", version)
        manager.close()

    def test_failed_catalog_rewrite_leaves_no_mixed_state(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          delta_policy="chain")
        _fill(manager)
        record = manager.catalog.get_array("A")
        before = {(c.version, c.attribute, c.chunk_name): c.location
                  for c in manager.catalog.all_chunks(record.array_id)}

        original = manager.catalog.put_chunks

        def failing_put_chunks(records):
            raise StorageError("catalog unavailable")

        manager.catalog.put_chunks = failing_put_chunks
        with pytest.raises(StorageError):
            manager._repack(record)
        manager.catalog.put_chunks = original

        after = {(c.version, c.attribute, c.chunk_name): c.location
                 for c in manager.catalog.all_chunks(record.array_id)}
        # All-or-nothing: the rewrite failed, so every row still holds
        # its pre-repack location — never a mix of old and new.
        assert after == before
        manager.close()


class TestDurabilityBarrier:
    def test_commit_raises_barrier_before_catalog(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          backend="durable",
                                          delta_policy="chain")
        schema = _schema()
        manager.create_array("A", schema)
        events = []
        original_sync = manager.store.backend.sync
        original_put = manager.catalog.put_chunks

        def spy_sync(paths, **kwargs):
            events.append(("sync", tuple(sorted(paths))))
            return original_sync(paths, **kwargs)

        def spy_put(records, **kwargs):
            events.append(("commit", len(records)))
            return original_put(records, **kwargs)

        manager.store.backend.sync = spy_sync
        manager.catalog.put_chunks = spy_put
        rng = np.random.default_rng(5)
        manager.insert("A", ArrayData(schema, {
            "a": rng.integers(0, 9, (20, 20)).astype(np.int64),
            "b": rng.random((20, 20)).astype(np.float32)}))
        manager.store.backend.sync = original_sync
        manager.catalog.put_chunks = original_put

        kinds = [kind for kind, _ in events]
        assert kinds == ["sync", "commit"]
        synced_paths = events[0][1]
        assert len(synced_paths) == events[1][1]  # one object per chunk
        manager.close()

    def test_durable_store_reads_back(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          backend="durable",
                                          delta_policy="chain",
                                          workers=4)
        _fill(manager)
        reread = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                         backend="durable",
                                         delta_policy="chain")
        for version in (1, 2, 3):
            np.testing.assert_array_equal(
                manager.select("A", version).attribute("a"),
                reread.select("A", version).attribute("a"))
        manager.close()
        reread.close()


class TestObjectFinalizeBarrier:
    """On the object backend the per-version sync is the multipart
    finalize barrier: staged parts become committed object bytes
    before the catalog transaction names them."""

    def test_commit_finalizes_before_catalog(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          backend="object",
                                          delta_policy="chain")
        schema = _schema()
        manager.create_array("A", schema)
        backend = manager.backend
        pending_at_commit = []
        original_put = manager.catalog.put_chunks

        def spy_put(records, **kwargs):
            pending_at_commit.append(backend.pending_parts())
            return original_put(records, **kwargs)

        manager.catalog.put_chunks = spy_put
        rng = np.random.default_rng(5)
        manager.insert("A", ArrayData(schema, {
            "a": rng.integers(0, 9, (20, 20)).astype(np.int64),
            "b": rng.random((20, 20)).astype(np.float32)}))
        manager.catalog.put_chunks = original_put

        # Placement staged parts, but by the time the catalog
        # transaction ran, the barrier had finalized every upload.
        assert pending_at_commit == [0]
        assert backend.pending_parts() == 0
        manager.close()

    def test_object_store_reads_back_across_reopen(self, tmp_path):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                          backend="object",
                                          delta_policy="chain",
                                          workers=4)
        _fill(manager)
        expected = {version: manager.select("A", version).attribute("a")
                    for version in (1, 2, 3)}
        fingerprint = manager.fingerprint()
        manager.close()
        reread = VersionedStorageManager(tmp_path, chunk_bytes=800,
                                         backend="object",
                                         delta_policy="chain")
        for version, contents in expected.items():
            np.testing.assert_array_equal(
                reread.select("A", version).attribute("a"), contents)
        assert reread.fingerprint() == fingerprint
        manager.close()
        reread.close()
