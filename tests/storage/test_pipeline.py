"""Tests for the explicit encode/decode pipeline layer.

Covers the bytes-bounded :class:`ChunkCache` (eviction, invalidation,
stats flow) and the batched chain read — the decode pipeline must open
one object per co-located chunk chain, not one per payload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import ArraySchema
from repro.storage import (
    COLOCATED,
    PER_VERSION,
    ChunkCache,
    IOStats,
    VersionedStorageManager,
)


class TestChunkCacheBounds:
    def test_disabled_without_budget(self):
        cache = ChunkCache()
        assert not cache.enabled

    def test_entry_budget_evicts_lru(self):
        cache = ChunkCache(max_entries=2)
        a, b, c = (np.full(4, i) for i in range(3))
        cache.put(("arr", 1), a)
        cache.put(("arr", 2), b)
        cache.get(("arr", 1))  # freshen 1; 2 becomes LRU
        cache.put(("arr", 3), c)
        assert cache.get(("arr", 2)) is None
        assert cache.get(("arr", 1)) is a
        assert cache.get(("arr", 3)) is c

    def test_byte_budget_evicts_lru(self):
        cache = ChunkCache(max_bytes=100)
        small = np.zeros(5, dtype=np.int64)   # 40 bytes
        cache.put(("arr", 1), small)
        cache.put(("arr", 2), small)
        assert cache.info()["bytes"] == 80
        cache.put(("arr", 3), small)          # 120 > 100: evict v1
        assert cache.get(("arr", 1)) is None
        assert cache.info()["bytes"] == 80
        assert cache.info()["entries"] == 2

    def test_oversized_entry_not_retained(self):
        cache = ChunkCache(max_bytes=16)
        cache.put(("arr", 1), np.zeros(100, dtype=np.int64))
        assert cache.info()["entries"] == 0
        assert cache.info()["bytes"] == 0

    def test_oversized_entry_does_not_evict_others(self):
        """Admission control: an entry above max_bytes is rejected
        outright instead of first flushing the whole cache."""
        cache = ChunkCache(max_bytes=100)
        small = np.zeros(5, dtype=np.int64)   # 40 bytes
        cache.put(("arr", 1), small)
        cache.put(("arr", 2), small)
        cache.put(("arr", 3), np.zeros(100, dtype=np.int64))  # 800 B
        assert cache.info()["entries"] == 2
        assert cache.get(("arr", 1)) is small
        assert cache.get(("arr", 2)) is small
        assert cache.get(("arr", 3)) is None
        assert cache.info()["oversized"] == 1

    def test_oversized_reput_drops_stale_entry(self):
        """Re-putting a key with now-oversized data must not leave the
        stale (outdated) value behind."""
        cache = ChunkCache(max_bytes=100)
        cache.put(("arr", 1), np.zeros(5, dtype=np.int64))
        cache.put(("arr", 1), np.zeros(100, dtype=np.int64))
        assert cache.get(("arr", 1)) is None
        assert cache.info()["bytes"] == 0
        assert cache.info()["oversized"] == 1

    def test_entry_budget_alone_admits_any_size(self):
        # Only the byte budget defines "oversized".
        cache = ChunkCache(max_entries=2)
        big = np.zeros(1000, dtype=np.int64)
        cache.put(("arr", 1), big)
        assert cache.get(("arr", 1)) is big
        assert cache.info()["oversized"] == 0

    def test_reput_updates_byte_accounting(self):
        cache = ChunkCache(max_bytes=1000)
        cache.put(("arr", 1), np.zeros(10, dtype=np.int64))
        cache.put(("arr", 1), np.zeros(2, dtype=np.int64))
        assert cache.info()["entries"] == 1
        assert cache.info()["bytes"] == 16

    def test_invalidate_array_scopes_by_id(self):
        cache = ChunkCache(max_entries=8)
        data = np.zeros(4)
        cache.put((1, 1, "v", "c"), data)
        cache.put((1, 2, "v", "c"), data)
        cache.put((2, 1, "v", "c"), data)
        cache.invalidate_array(1)
        assert cache.info()["entries"] == 1
        assert cache.get((2, 1, "v", "c")) is data
        assert cache.info()["bytes"] == data.nbytes

    def test_hits_and_misses_flow_into_iostats(self):
        stats = IOStats()
        cache = ChunkCache(max_entries=4, stats=stats)
        data = np.zeros(4)
        cache.get(("arr", 1))
        cache.put(("arr", 1), data)
        cache.get(("arr", 1))
        assert (cache.hits, cache.misses) == (1, 1)
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)

    def test_clear(self):
        cache = ChunkCache(max_entries=4)
        cache.put(("arr", 1), np.zeros(4))
        cache.clear()
        assert cache.info()["entries"] == 0
        assert cache.info()["bytes"] == 0


class TestEagerValidation:
    def test_bad_policy_fails_before_side_effects(self, tmp_path):
        with pytest.raises(StorageError):
            VersionedStorageManager(tmp_path / "bad",
                                    delta_policy="psychic")
        # Nothing durable was created by the failed constructor.
        assert not (tmp_path / "bad").exists()


class TestManagerByteBudget:
    def test_cache_bytes_knob(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=2048,
                                          cache_bytes=1 << 20)
        manager.create_array("A", ArraySchema.simple((16, 16),
                                                     dtype=np.int32))
        data = rng.integers(0, 100, (16, 16)).astype(np.int32)
        manager.insert("A", data)
        manager.select("A", 1)
        before = manager.stats.chunks_read
        out = manager.select("A", 1)
        assert manager.stats.chunks_read == before  # served by cache
        assert manager.cache_info()["hits"] > 0
        assert 0 < manager.cache_info()["bytes"] <= 1 << 20
        np.testing.assert_array_equal(out.single(), data)
        manager.close()

    def test_byte_budget_bounds_occupancy(self, tmp_path, rng):
        # Each 8x8 int64 chunk is 512 bytes; a 1 KB budget keeps at
        # most two decoded chunks resident.
        manager = VersionedStorageManager(tmp_path, chunk_bytes=512,
                                          cache_bytes=1024)
        manager.create_array("A", ArraySchema.simple((16, 16),
                                                     dtype=np.int64))
        manager.insert("A", rng.integers(0, 9, (16, 16)).astype(np.int64))
        manager.select("A", 1)  # touches four chunks
        info = manager.cache_info()
        assert info["bytes"] <= 1024
        assert info["entries"] <= 2
        manager.close()


def _chained(tmp_path, placement, depth=4):
    manager = VersionedStorageManager(tmp_path / placement,
                                      chunk_bytes=800,
                                      compressor="none",
                                      delta_policy="chain",
                                      placement=placement)
    manager.create_array("A", ArraySchema.simple((20, 20),
                                                 dtype=np.int64))
    rng = np.random.default_rng(2012)
    data = rng.integers(0, 1000, (20, 20)).astype(np.int64)
    for _ in range(depth):
        manager.insert("A", data)
        data = np.where(rng.random((20, 20)) > 0.9, data + 1, data)
    return manager


class TestBatchedChainReads:
    def test_colocated_opens_one_file_per_chunk(self, tmp_path):
        manager = _chained(tmp_path, COLOCATED)
        with manager.stats.measure() as window:
            manager.select_region("A", 4, (0, 0), (9, 19))
        # Two chunks overlap the region; each chain is 4 payloads deep
        # but lives in one co-located object.
        assert window.chunks_read == 8
        assert window.file_opens == 2
        manager.close()

    def test_per_version_opens_one_file_per_payload(self, tmp_path):
        manager = _chained(tmp_path, PER_VERSION)
        with manager.stats.measure() as window:
            manager.select_region("A", 4, (0, 0), (9, 19))
        assert window.chunks_read == 8
        assert window.file_opens == 8
        manager.close()

    def test_batched_read_results_identical(self, tmp_path):
        colocated = _chained(tmp_path, COLOCATED)
        per_version = _chained(tmp_path, PER_VERSION)
        for version in (1, 2, 3, 4):
            np.testing.assert_array_equal(
                colocated.select("A", version).single(),
                per_version.select("A", version).single())
        colocated.close()
        per_version.close()
