"""Integration tests for the versioned storage manager (Section II)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.array import DeltaListPayload, DensePayload, SparsePayload
from repro.core.errors import (
    ArrayNotFoundError,
    StorageError,
    VersionNotFoundError,
)
from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.storage import (
    PER_VERSION,
    POLICY_AUTO,
    POLICY_MATERIALIZE,
    VersionedStorageManager,
)


@pytest.fixture
def schema() -> ArraySchema:
    return ArraySchema.simple((20, 20), dtype=np.int32)


@pytest.fixture
def manager(tmp_path) -> VersionedStorageManager:
    # Small chunks (400 B = 100 cells = 10x10) force multi-chunk arrays.
    return VersionedStorageManager(tmp_path, chunk_bytes=400,
                                   compressor="none")


def _versions(rng, count=4, shape=(20, 20)):
    base = rng.integers(0, 1000, size=shape).astype(np.int32)
    versions = [base]
    for _ in range(count - 1):
        nxt = versions[-1].copy()
        mask = rng.random(size=shape) > 0.9
        nxt[mask] += rng.integers(1, 5)
        versions.append(nxt)
    return versions


class TestLifecycle:
    def test_create_insert_select(self, manager, schema, rng):
        manager.create_array("A", schema)
        data = rng.integers(0, 100, size=(20, 20)).astype(np.int32)
        version = manager.insert("A", data)
        assert version == 1
        out = manager.select("A", 1)
        np.testing.assert_array_equal(out.single(), data)

    def test_versions_accumulate(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng)
        for v in versions:
            manager.insert("A", v)
        assert manager.get_versions("A") == [1, 2, 3, 4]
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                manager.select("A", number).single(), expected)

    def test_delete_array(self, manager, schema, rng):
        manager.create_array("A", schema)
        manager.insert("A", rng.integers(0, 9, (20, 20)).astype(np.int32))
        manager.delete_array("A")
        with pytest.raises(ArrayNotFoundError):
            manager.select("A", 1)
        assert manager.store.total_bytes("A") == 0

    def test_missing_version_rejected(self, manager, schema):
        manager.create_array("A", schema)
        with pytest.raises(VersionNotFoundError):
            manager.select("A", 1)

    def test_list_arrays(self, manager, schema):
        manager.create_array("B", schema)
        manager.create_array("A", schema)
        assert manager.list_arrays() == ["A", "B"]


class TestPayloadForms:
    def test_dense_payload(self, manager, schema, rng):
        manager.create_array("A", schema)
        data = rng.integers(0, 9, (20, 20)).astype(np.int32)
        manager.insert("A", DensePayload.of(data))
        np.testing.assert_array_equal(manager.select("A", 1).single(), data)

    def test_sparse_payload(self, manager, schema):
        manager.create_array("A", schema)
        manager.insert("A", SparsePayload.of(
            coords=np.array([[3, 4], [10, 10]]),
            values=np.array([7, 9], dtype=np.int32)))
        out = manager.select("A", 1).single()
        assert out[3, 4] == 7
        assert out[10, 10] == 9
        assert out.sum() == 16  # default 0 elsewhere

    def test_delta_list_payload(self, manager, schema, rng):
        manager.create_array("A", schema)
        base = rng.integers(0, 9, (20, 20)).astype(np.int32)
        manager.insert("A", base)
        manager.insert("A", DeltaListPayload.of(
            coords=np.array([[0, 0]]),
            values=np.array([99], dtype=np.int32),
            base_version=1))
        out = manager.select("A", 2).single()
        assert out[0, 0] == 99
        np.testing.assert_array_equal(out.ravel()[1:], base.ravel()[1:])


class TestDeltaEncodingOnInsert:
    def test_similar_versions_stored_as_deltas(self, manager, schema, rng):
        manager.create_array("A", schema)
        for v in _versions(rng):
            manager.insert("A", v)
        v2_chunks = manager.catalog.chunks_for_version(
            manager.catalog.get_array("A").array_id, 2)
        assert any(c.is_delta for c in v2_chunks)
        # Deltas must shrink storage well below 4x a full version.
        total = manager.stored_bytes("A")
        assert total < 4 * 20 * 20 * 4 * 0.7

    def test_materialize_policy_never_deltas(self, tmp_path, schema, rng):
        manager = VersionedStorageManager(
            tmp_path, chunk_bytes=400, delta_policy=POLICY_MATERIALIZE)
        manager.create_array("A", schema)
        for v in _versions(rng):
            manager.insert("A", v)
        array_id = manager.catalog.get_array("A").array_id
        for version in (1, 2, 3, 4):
            chunks = manager.catalog.chunks_for_version(array_id, version)
            assert all(not c.is_delta for c in chunks)

    def test_auto_policy_roundtrips(self, tmp_path, schema, rng):
        manager = VersionedStorageManager(
            tmp_path, chunk_bytes=400, delta_policy=POLICY_AUTO)
        manager.create_array("A", schema)
        versions = _versions(rng)
        for v in versions:
            manager.insert("A", v)
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                manager.select("A", number).single(), expected)

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            VersionedStorageManager(tmp_path, delta_policy="psychic")


class TestRegionSelects:
    def test_select_region(self, manager, schema, rng):
        manager.create_array("A", schema)
        data = rng.integers(0, 100, (20, 20)).astype(np.int32)
        manager.insert("A", data)
        out = manager.select_region("A", 1, (5, 5), (14, 14))
        np.testing.assert_array_equal(out.single(), data[5:15, 5:15])

    def test_region_reads_fewer_chunks(self, manager, schema, rng):
        manager.create_array("A", schema)
        manager.insert("A", rng.integers(0, 9, (20, 20)).astype(np.int32))
        with manager.stats.measure() as full:
            manager.select("A", 1)
        with manager.stats.measure() as sub:
            manager.select_region("A", 1, (0, 0), (5, 5))
        assert sub.chunks_read < full.chunks_read
        assert sub.chunks_read == 1  # 10x10 chunks; (0,0)-(5,5) fits in one

    def test_select_versions_stacks(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=3)
        for v in versions:
            manager.insert("A", v)
        stacked = manager.select_versions("A", [1, 2, 3])
        assert stacked.shape == (3, 20, 20)
        for layer, expected in enumerate(versions):
            np.testing.assert_array_equal(stacked[layer], expected)

    def test_select_versions_region(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=3)
        for v in versions:
            manager.insert("A", v)
        stacked = manager.select_versions_region("A", [2, 3], (0, 0), (4, 4))
        assert stacked.shape == (2, 5, 5)
        np.testing.assert_array_equal(stacked[0], versions[1][:5, :5])
        np.testing.assert_array_equal(stacked[1], versions[2][:5, :5])

    def test_range_select_shares_chain_reads(self, manager, schema, rng):
        # Reading versions [1..4] must not re-read the chain per version.
        manager.create_array("A", schema)
        for v in _versions(rng, count=4):
            manager.insert("A", v)
        with manager.stats.measure() as window:
            manager.select_versions("A", [1, 2, 3, 4])
        array_id = manager.catalog.get_array("A").array_id
        total_chunks = sum(
            len(manager.catalog.chunks_for_version(array_id, v))
            for v in (1, 2, 3, 4))
        assert window.chunks_read == total_chunks


class TestFig2Scenario:
    """Figure 2: 3-version chain, 4 chunks each, region query on V3.

    The queried region overlaps 2 chunks, so answering it must read
    exactly 6 chunks: the 2 overlapping chunks in each of the 3 versions.
    """

    def test_six_chunks_read(self, tmp_path, rng):
        schema = ArraySchema.simple((20, 20), dtype=np.int64)
        # 800-byte chunks of 8-byte cells -> stride 10 -> 2x2 = 4 chunks.
        manager = VersionedStorageManager(tmp_path, chunk_bytes=800)
        manager.create_array("A", schema)
        versions = _versions(rng, count=3, shape=(20, 20))
        for v in versions:
            manager.insert("A", np.asarray(v, dtype=np.int64))

        with manager.stats.measure() as window:
            out = manager.select_region("A", 3, (0, 0), (9, 19))
        np.testing.assert_array_equal(
            out.single(), versions[2][0:10, 0:20].astype(np.int64))
        # Region covers the top two chunks; chain depth 3 -> 6 reads.
        assert window.chunks_read == 6


class TestBranchAndMerge:
    def test_branch_copies_contents(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=3)
        for v in versions:
            manager.insert("A", v)
        manager.branch("A", 2, "B")
        np.testing.assert_array_equal(
            manager.select("B", 1).single(), versions[1])
        record = manager.catalog.get_array("B")
        assert record.parent_array == "A"
        assert record.parent_version == 2

    def test_branch_evolves_independently(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=2)
        for v in versions:
            manager.insert("A", v)
        manager.branch("A", 1, "B")
        branched = versions[0].copy()
        branched[0, 0] = 12345
        manager.insert("B", branched)
        assert manager.select("B", 2).single()[0, 0] == 12345
        assert manager.select("A", 2).single()[0, 0] == versions[1][0, 0]

    def test_merge_builds_sequence(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=3)
        for v in versions:
            manager.insert("A", v)
        manager.branch("A", 1, "B")
        manager.merge([("A", 3), ("B", 1)], "M")
        np.testing.assert_array_equal(
            manager.select("M", 1).single(), versions[2])
        np.testing.assert_array_equal(
            manager.select("M", 2).single(), versions[0])
        array_id = manager.catalog.get_array("M").array_id
        assert manager.catalog.merge_parents_of(array_id, 1) == [("A", 3)]
        assert manager.catalog.merge_parents_of(array_id, 2) == [("B", 1)]

    def test_merge_requires_two_parents(self, manager, schema, rng):
        manager.create_array("A", schema)
        manager.insert("A", rng.integers(0, 9, (20, 20)).astype(np.int32))
        with pytest.raises(StorageError):
            manager.merge([("A", 1)], "M")


class TestDeleteVersion:
    def test_delete_middle_of_chain(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=4)
        for v in versions:
            manager.insert("A", v)
        manager.delete_version("A", 2)
        assert manager.get_versions("A") == [1, 3, 4]
        # Survivors must still reconstruct exactly.
        np.testing.assert_array_equal(
            manager.select("A", 3).single(), versions[2])
        np.testing.assert_array_equal(
            manager.select("A", 4).single(), versions[3])

    def test_delete_root(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=3)
        for v in versions:
            manager.insert("A", v)
        manager.delete_version("A", 1)
        np.testing.assert_array_equal(
            manager.select("A", 2).single(), versions[1])
        np.testing.assert_array_equal(
            manager.select("A", 3).single(), versions[2])

    def test_delete_reclaims_space(self, manager, schema, rng):
        manager.create_array("A", schema)
        for v in _versions(rng, count=4):
            manager.insert("A", v)
        before = manager.store.total_bytes("A")
        manager.delete_version("A", 4)
        assert manager.store.total_bytes("A") < before


class TestTimestamps:
    def test_version_at(self, manager, schema, rng):
        manager.create_array("A", schema)
        manager.insert("A", rng.integers(0, 9, (20, 20)).astype(np.int32),
                       timestamp=100.0)
        manager.insert("A", rng.integers(0, 9, (20, 20)).astype(np.int32),
                       timestamp=200.0)
        assert manager.version_at("A", 150.0) == 1
        assert manager.version_at("A", 200.0) == 2


class TestProperties:
    def test_properties_shape(self, manager, schema, rng):
        manager.create_array("A", schema)
        data = np.zeros((20, 20), dtype=np.int32)
        data[0, 0] = 5
        manager.insert("A", data)
        props = manager.properties("A")
        assert props["versions"] == 1
        assert props["stored_bytes"] > 0
        assert props["sparsity"] == pytest.approx(399 / 400)


class TestApplyLayout:
    def test_re_encode_to_star_layout(self, manager, schema, rng):
        manager.create_array("A", schema)
        versions = _versions(rng, count=4)
        for v in versions:
            manager.insert("A", v)
        # Star on version 4: everything delta'ed directly against it.
        manager.apply_layout("A", {4: None, 3: 4, 2: 4, 1: 4})
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                manager.select("A", number).single(), expected)
        array_id = manager.catalog.get_array("A").array_id
        v4 = manager.catalog.chunks_for_version(array_id, 4)
        assert all(not c.is_delta for c in v4)

    def test_layout_must_cover_all_versions(self, manager, schema, rng):
        manager.create_array("A", schema)
        for v in _versions(rng, count=3):
            manager.insert("A", v)
        with pytest.raises(StorageError):
            manager.apply_layout("A", {1: None, 2: 1})

    def test_layout_cycle_rejected(self, manager, schema, rng):
        manager.create_array("A", schema)
        for v in _versions(rng, count=3):
            manager.insert("A", v)
        with pytest.raises(StorageError):
            manager.apply_layout("A", {1: 2, 2: 1, 3: None})

    def test_layout_without_root_rejected(self, manager, schema, rng):
        manager.create_array("A", schema)
        for v in _versions(rng, count=2):
            manager.insert("A", v)
        with pytest.raises(StorageError):
            manager.apply_layout("A", {1: 2, 2: 1})


class TestMultiAttribute:
    def test_attributes_stored_separately(self, manager, rng):
        schema = ArraySchema(
            dimensions=(Dimension("I", 0, 9), Dimension("J", 0, 9)),
            attributes=(Attribute("wind", np.float32),
                        Attribute("pressure", np.int32)),
        )
        manager.create_array("W", schema)
        from repro.core.array import ArrayData

        wind = rng.normal(0, 10, (10, 10)).astype(np.float32)
        pressure = rng.integers(900, 1100, (10, 10)).astype(np.int32)
        manager.insert("W", ArrayData(schema, {"wind": wind,
                                               "pressure": pressure}))
        out = manager.select("W", 1)
        np.testing.assert_array_equal(out.attribute("wind"), wind)
        np.testing.assert_array_equal(out.attribute("pressure"), pressure)

    def test_per_version_placement_roundtrip(self, tmp_path, schema, rng):
        manager = VersionedStorageManager(
            tmp_path, chunk_bytes=400, placement=PER_VERSION)
        manager.create_array("A", schema)
        versions = _versions(rng, count=3)
        for v in versions:
            manager.insert("A", v)
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                manager.select("A", number).single(), expected)

    def test_float_array_roundtrip(self, tmp_path, rng):
        schema = ArraySchema.simple((16, 16), dtype=np.float64)
        manager = VersionedStorageManager(tmp_path, chunk_bytes=512,
                                          compressor="lz")
        manager.create_array("F", schema)
        base = rng.normal(0, 1, (16, 16))
        manager.insert("F", base)
        manager.insert("F", base + 1e-9)
        np.testing.assert_array_equal(manager.select("F", 1).single(), base)
        np.testing.assert_array_equal(manager.select("F", 2).single(),
                                      base + 1e-9)
