"""Tests for fixed-stride chunk geometry (Section III-B.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DimensionError, StorageError
from repro.storage.chunking import ChunkGrid, stride_for


class TestStrideFor:
    def test_paper_example_binary_kcells(self):
        # 1 MB chunks of 8-byte cells: floor(sqrt(131072)) = 362.
        assert stride_for(2 ** 20, 8, 2) == 362

    def test_chunk_fits_budget(self):
        for ndim in (1, 2, 3):
            stride = stride_for(2 ** 20, 8, ndim)
            assert stride ** ndim * 8 <= 2 ** 20

    def test_one_dimensional(self):
        assert stride_for(1024, 4, 1) == 256

    def test_budget_smaller_than_cell_rejected(self):
        with pytest.raises(StorageError):
            stride_for(4, 8, 2)

    def test_minimum_stride_is_one(self):
        assert stride_for(8, 8, 3) == 1

    @settings(max_examples=50, deadline=None)
    @given(chunk_bytes=st.integers(64, 10 ** 7),
           cell_size=st.sampled_from([1, 2, 4, 8, 16]),
           ndim=st.integers(1, 4))
    def test_stride_is_maximal_within_budget(self, chunk_bytes, cell_size,
                                             ndim):
        stride = stride_for(chunk_bytes, cell_size, ndim)
        cells = chunk_bytes // cell_size
        assert stride ** ndim <= cells
        assert (stride + 1) ** ndim > cells


class TestChunkGrid:
    @pytest.fixture
    def grid(self) -> ChunkGrid:
        # 100x60 array of 8-byte cells in 3200-byte chunks: 400 cells
        # per chunk -> stride 20 -> 5x3 grid.
        return ChunkGrid((100, 60), cell_size=8, chunk_bytes=3200)

    def test_geometry(self, grid):
        assert grid.stride == 20
        assert grid.counts == (5, 3)
        assert grid.chunk_count == 15

    def test_chunk_names_match_paper_scheme(self, grid):
        first = grid.chunk_at((0, 0))
        assert first.name == "chunk-0-0-19-19.dat"
        second = grid.chunk_at((0, 1))
        assert second.name == "chunk-0-20-19-39.dat"

    def test_chunk_for_cell_closed_form(self, grid):
        assert grid.chunk_for_cell((0, 0)).index == (0, 0)
        assert grid.chunk_for_cell((19, 19)).index == (0, 0)
        assert grid.chunk_for_cell((20, 19)).index == (1, 0)
        assert grid.chunk_for_cell((99, 59)).index == (4, 2)

    def test_cell_out_of_bounds(self, grid):
        with pytest.raises(DimensionError):
            grid.chunk_for_cell((100, 0))
        with pytest.raises(DimensionError):
            grid.chunk_for_cell((0,))

    def test_ragged_edge_chunks(self):
        # 25 cells with stride 10: last chunk covers only 5 cells.
        grid = ChunkGrid((25,), cell_size=8, chunk_bytes=80)
        chunks = grid.chunks()
        assert [c.shape for c in chunks] == [(10,), (10,), (5,)]
        assert chunks[-1].lo == (20,)
        assert chunks[-1].hi == (24,)

    def test_chunks_cover_array_exactly_once(self, grid):
        canvas = np.zeros(grid.shape, dtype=np.int32)
        for chunk in grid.chunks():
            canvas[chunk.slices()] += 1
        assert (canvas == 1).all()

    def test_chunks_overlapping_single(self, grid):
        hits = grid.chunks_overlapping((5, 5), (5, 5))
        assert len(hits) == 1
        assert hits[0].index == (0, 0)

    def test_chunks_overlapping_straddles_boundary(self, grid):
        hits = grid.chunks_overlapping((15, 15), (25, 25))
        assert {c.index for c in hits} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_chunks_overlapping_whole_array(self, grid):
        hits = grid.chunks_overlapping((0, 0), (99, 59))
        assert len(hits) == grid.chunk_count

    def test_chunks_overlapping_validation(self, grid):
        with pytest.raises(DimensionError):
            grid.chunks_overlapping((5, 5), (4, 4))
        with pytest.raises(DimensionError):
            grid.chunks_overlapping((0, 0), (100, 0))

    def test_parse_name_roundtrip(self, grid):
        for chunk in grid.chunks():
            parsed = grid.parse_name(chunk.name)
            assert parsed == chunk

    def test_parse_name_rejects_garbage(self, grid):
        with pytest.raises(StorageError):
            grid.parse_name("not-a-chunk")
        with pytest.raises(StorageError):
            grid.parse_name("chunk-1-2.dat")

    def test_identical_chunking_across_versions(self):
        # "Every version of a given array is chunked identically" — the
        # grid is a pure function of (shape, cell size, budget).
        a = ChunkGrid((64, 64), 4, 1024)
        b = ChunkGrid((64, 64), 4, 1024)
        assert [c.name for c in a.chunks()] == [c.name for c in b.chunks()]
