"""Fused-vs-stepwise delta-chain read equivalence oracle.

The fused read path (:meth:`DecodePipeline.reconstruct` with
``fuse_chains``) folds a chain of composable deltas into one
accumulator and applies it to the materialized root in a single pass.
Its contract is byte-exactness: for every delta policy, both delta
modes (ARITHMETIC for integers, XOR for floats), every chain depth,
and adversarial cell values (int64 wraparound, NaN / signed-zero /
infinity bit patterns), the fused result must equal the stepwise
result bit for bit — and the store fingerprint must be identical too,
since the knob is read-only and may never leak into written bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import ArraySchema
from repro.storage.manager import VersionedStorageManager

DEPTH = 8
SHAPE = (16, 16)

#: (policy-id, manager kwargs) — the delta-policy axis of the oracle.
POLICIES = [
    ("dense", dict(delta_policy="chain", delta_codec="dense")),
    ("sparse", dict(delta_policy="chain", delta_codec="sparse")),
    ("hybrid", dict(delta_policy="chain", delta_codec="hybrid")),
    ("hybrid+lz", dict(delta_policy="chain", delta_codec="hybrid+lz")),
    ("auto", dict(delta_policy="auto")),
]


def _int_versions() -> list[np.ndarray]:
    """A DEPTH-long int64 version chain exercising ARITHMETIC mode.

    The root holds both int64 extremes; every level nudges the
    iinfo.max cell by +100, so the running value wraps around the
    signed range mid-chain — the fused accumulator must telescope
    through the wrap exactly.  Remaining mutations are small and
    sparse so every delta codec beats materialization and the chain
    actually reaches DEPTH levels.
    """
    rng = np.random.default_rng(7)
    info = np.iinfo(np.int64)
    cur = rng.integers(-1000, 1000, SHAPE, dtype=np.int64)
    cur[0, 0] = info.max
    cur[0, 1] = info.min
    versions = [cur]
    for level in range(1, DEPTH):
        cur = cur.copy()
        with np.errstate(over="ignore"):
            cur[0, 0] += 100          # crosses iinfo.max and wraps
            cur[0, 1] -= 100          # crosses iinfo.min and wraps
        rows = rng.integers(1, SHAPE[0], 6)
        cols = rng.integers(0, SHAPE[1], 6)
        cur[rows, cols] += rng.integers(-500, 500, 6)
        versions.append(cur)
    return versions


def _float_versions() -> list[np.ndarray]:
    """A DEPTH-long float64 version chain exercising XOR mode.

    The root seeds every special bit pattern (NaN, both signed zeros,
    both infinities, a denormal); some levels leave them untouched
    (identity folds must preserve the exact bit patterns) and later
    levels rewrite them (NaN -> finite, finite -> -0.0, -0.0 -> NaN),
    so the accumulator also composes the large XOR codes such
    transitions produce.
    """
    rng = np.random.default_rng(11)
    cur = rng.normal(0, 100, SHAPE)
    cur[0, 0] = np.nan
    cur[0, 1] = -0.0
    cur[0, 2] = 0.0
    cur[0, 3] = np.inf
    cur[0, 4] = -np.inf
    cur[0, 5] = 5e-324              # smallest positive denormal
    versions = [cur]
    for level in range(1, DEPTH):
        cur = cur.copy()
        rows = rng.integers(1, SHAPE[0], 6)
        cols = rng.integers(0, SHAPE[1], 6)
        cur[rows, cols] += rng.normal(0, 1, 6)
        if level == 4:
            cur[0, 0] = 1.5         # NaN -> finite
            cur[0, 2] = -0.0        # +0.0 -> -0.0 (sign-bit-only code)
        if level == 6:
            cur[0, 1] = np.nan      # -0.0 -> NaN
            cur[0, 3] = -np.inf     # inf sign flip
        versions.append(cur)
    return versions


MODES = [("arith", np.int64, _int_versions),
         ("xor", np.float64, _float_versions)]


def _build(root, versions, dtype, fuse, **kwargs):
    manager = VersionedStorageManager(root, fuse_chains=fuse, **kwargs)
    manager.create_array(
        "A", ArraySchema.simple(SHAPE, dtype, attribute="value"))
    for data in versions:
        manager.insert("A", data.copy())
    return manager


@pytest.mark.parametrize("policy,kwargs", POLICIES,
                         ids=[p for p, _ in POLICIES])
@pytest.mark.parametrize("mode,dtype,make_versions", MODES,
                         ids=[m for m, _, _ in MODES])
def test_fused_equals_stepwise(tmp_path, policy, kwargs, mode, dtype,
                               make_versions):
    """Byte-identical arrays and fingerprints at every depth 1..DEPTH."""
    versions = make_versions()
    with _build(tmp_path / "fused", versions, dtype, True,
                **kwargs) as fused, \
            _build(tmp_path / "step", versions, dtype, False,
                   **kwargs) as step:
        # The knob is read-only: both stores hold identical bytes.
        assert fused.fingerprint("A") == step.fingerprint("A")
        for depth in range(1, DEPTH + 1):
            got_fused = fused.select("A", depth).attribute("value")
            got_step = step.select("A", depth).attribute("value")
            expected = versions[depth - 1]
            # tobytes() comparison is NaN-exact and sign-of-zero-exact.
            assert got_fused.tobytes() == got_step.tobytes()
            assert got_fused.tobytes() == \
                np.ascontiguousarray(expected).tobytes()
        assert step.stats.snapshot().chains_fused == 0
        # Depth-2+ selects of a composable chain must actually fuse.
        assert fused.stats.snapshot().chains_fused > 0
        # Reading must not disturb the stores.
        assert fused.fingerprint("A") == step.fingerprint("A")


def test_fused_counters_exact(tmp_path):
    """One deep select records exactly one fused chain, all levels."""
    versions = _int_versions()
    with _build(tmp_path / "s", versions, np.int64, True,
                delta_policy="chain", delta_codec="sparse") as manager:
        with manager.stats.measure() as window:
            manager.select("A", DEPTH)
        assert window.chains_fused == 1
        assert window.fused_levels == DEPTH - 1
        # Every sparse level composes by scatter, not a dense pass.
        assert window.scatter_levels == DEPTH - 1
    with _build(tmp_path / "d", versions, np.int64, True,
                delta_policy="chain", delta_codec="dense") as manager:
        with manager.stats.measure() as window:
            manager.select("A", DEPTH)
        assert window.chains_fused == 1
        assert window.fused_levels == DEPTH - 1
        assert window.scatter_levels == 0


def test_depth_one_chain_stays_stepwise(tmp_path):
    """A single delta level is already one apply — no fusion counted."""
    versions = _int_versions()[:2]
    with _build(tmp_path / "s", versions, np.int64, True,
                delta_policy="chain", delta_codec="sparse") as manager:
        with manager.stats.measure() as window:
            got = manager.select("A", 2).attribute("value")
        assert np.array_equal(got, versions[1])
        assert window.chains_fused == 0


@pytest.mark.parametrize("codec", ["bsdiff", "mpeg-like"])
def test_non_composable_codecs_fall_back(tmp_path, codec):
    """Directional codecs decode level-by-level, results still exact."""
    versions = _int_versions()
    with _build(tmp_path / "s", versions, np.int64, True,
                delta_policy="chain", delta_codec=codec) as manager:
        with manager.stats.measure() as window:
            got = manager.select("A", DEPTH).attribute("value")
        assert got.tobytes() == \
            np.ascontiguousarray(versions[DEPTH - 1]).tobytes()
        assert window.chains_fused == 0


def test_select_versions_shares_chain_scope(tmp_path):
    """Multi-version stacked selects fold common chain prefixes once.

    The fused path records only requested versions into the shared
    scope, so ``_stacked_select`` resolves in ascending version order —
    each chain walk stops at the previous version and the payload-read
    count stays exactly one per stored chunk, fused or stepwise, for
    any requested order.
    """
    versions = _int_versions()
    order = [DEPTH, 3, 5, 1]        # deliberately unsorted
    stacks = {}
    reads = {}
    for fuse in (False, True):
        with _build(tmp_path / f"f{fuse}", versions, np.int64, fuse,
                    delta_policy="chain", delta_codec="hybrid") as m:
            with m.stats.measure() as window:
                full = m.select_versions("A", list(range(1, DEPTH + 1)))
            # Ascending contiguous range: every chunk payload is read
            # exactly once regardless of the decode path.
            total_chunks = sum(
                len(m.catalog.chunks_for_version(1, v))
                for v in range(1, DEPTH + 1))
            assert window.chunks_read == total_chunks
            stacks[fuse] = (full.tobytes(),
                            m.select_versions("A", order).tobytes())
            reads[fuse] = window.chunks_read
    assert stacks[False] == stacks[True]
    assert reads[False] == reads[True]
    for layer, version in enumerate(order):
        expected = versions[version - 1]
        got = np.frombuffer(stacks[True][1],
                            dtype=np.int64).reshape((len(order),) + SHAPE)
        assert np.array_equal(got[layer], expected)


def test_prefetch_cache_keeps_stepwise_path(tmp_path):
    """Chain-aware prefetch needs the intermediates: no fusion, and
    every version along the chain is admitted to the cache."""
    versions = _int_versions()
    with VersionedStorageManager(
            tmp_path / "s", delta_policy="chain", delta_codec="sparse",
            cache_chunks=64, fuse_chains=True) as manager:
        manager.create_array(
            "A", ArraySchema.simple(SHAPE, np.int64, attribute="value"))
        for data in versions:
            manager.insert("A", data.copy())
        manager.cache.clear()
        with manager.stats.measure() as window:
            manager.select("A", DEPTH)
        assert window.chains_fused == 0
        # The prefetch contract holds: an intermediate version is now
        # served from cache without any chunk read.
        with manager.stats.measure() as window:
            manager.select("A", DEPTH // 2)
        assert window.chunks_read == 0


def test_prefetch_off_cache_fuses(tmp_path):
    """Cache without prefetch admits only requested versions on either
    path, so the fused path runs and repeat reads still hit."""
    versions = _int_versions()
    with VersionedStorageManager(
            tmp_path / "s", delta_policy="chain", delta_codec="sparse",
            cache_chunks=64, prefetch=False,
            fuse_chains=True) as manager:
        manager.create_array(
            "A", ArraySchema.simple(SHAPE, np.int64, attribute="value"))
        for data in versions:
            manager.insert("A", data.copy())
        manager.cache.clear()
        with manager.stats.measure() as window:
            first = manager.select("A", DEPTH).attribute("value")
        assert window.chains_fused == 1
        with manager.stats.measure() as window:
            again = manager.select("A", DEPTH).attribute("value")
        assert window.chunks_read == 0
        assert first.tobytes() == again.tobytes()


def test_read_region_single_chunk_returns_view(tmp_path):
    """``read_region`` with one covering chunk slices the reconstructed
    chunk directly instead of copying through a canvas."""
    versions = _int_versions()
    with _build(tmp_path / "s", versions, np.int64, True,
                delta_policy="chain", delta_codec="hybrid") as manager:
        # SHAPE fits one default chunk, so any region is single-chunk.
        region = manager.select_region("A", DEPTH, (2, 3), (9, 12))
        got = region.attribute("value")
        assert np.array_equal(got, versions[DEPTH - 1][2:10, 3:13])
        # The full-array region is a zero-copy view of the chunk.
        full = manager.select_region(
            "A", DEPTH, (0, 0), (SHAPE[0] - 1, SHAPE[1] - 1))
        assert np.array_equal(full.attribute("value"),
                              versions[DEPTH - 1])
        assert not full.attribute("value").flags.writeable
