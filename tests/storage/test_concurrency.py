"""Concurrent decode, chain prefetch, and transactional write batching.

The parallel select path must be invisible except in wall-clock: the
same bytes, the same exact I/O counters, the same cache occupancy as
the serial pass.  The write path must be atomic at version granularity:
a failure anywhere mid-write leaves zero chunk rows in the catalog.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.errors import NoOverwriteError, StorageError
from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.storage import (
    ChunkLocation,
    ChunkRecord,
    MetadataCatalog,
    VersionedStorageManager,
)


def _two_attr_schema(shape=(24, 24)) -> ArraySchema:
    dims = tuple(Dimension(name, 0, extent - 1)
                 for name, extent in zip("IJ", shape))
    return ArraySchema(dimensions=dims,
                       attributes=(Attribute("a", np.dtype(np.int64)),
                                   Attribute("b", np.dtype(np.float32))))


def _loaded(root, *, versions=4, workers=0, **kwargs):
    manager = VersionedStorageManager(root, chunk_bytes=800,
                                      compressor="none",
                                      delta_policy="chain",
                                      workers=workers, **kwargs)
    schema = _two_attr_schema()
    manager.create_array("A", schema)
    rng = np.random.default_rng(42)
    a = rng.integers(0, 1000, (24, 24)).astype(np.int64)
    b = rng.random((24, 24)).astype(np.float32)
    from repro.core.array import ArrayData
    for _ in range(versions):
        manager.insert("A", ArrayData(schema, {"a": a, "b": b}))
        a = a + rng.integers(0, 3, (24, 24)).astype(np.int64)
        b = b + 0.5
    return manager


class TestParallelDecodeDeterminism:
    def test_read_version_byte_identical(self, tmp_path):
        serial = _loaded(tmp_path / "serial", workers=0)
        parallel = _loaded(tmp_path / "parallel", workers=4)
        for version in serial.get_versions("A"):
            left = serial.select("A", version)
            right = parallel.select("A", version)
            for attr in ("a", "b"):
                np.testing.assert_array_equal(left.attribute(attr),
                                              right.attribute(attr))
        serial.close()
        parallel.close()

    def test_read_region_byte_identical(self, tmp_path):
        serial = _loaded(tmp_path / "serial", workers=0)
        parallel = _loaded(tmp_path / "parallel", workers=4)
        for lo, hi in [((0, 0), (23, 23)), ((3, 5), (20, 18)),
                       ((7, 7), (7, 7))]:
            left = serial.select_region("A", 4, lo, hi)
            right = parallel.select_region("A", 4, lo, hi)
            for attr in ("a", "b"):
                np.testing.assert_array_equal(left.attribute(attr),
                                              right.attribute(attr))
        serial.close()
        parallel.close()

    def test_per_call_workers_override(self, tmp_path):
        manager = _loaded(tmp_path, workers=0)
        record = manager.catalog.get_array("A")
        grid = manager.grid_for(record)
        serial = manager.decoder.read_version(record, grid, 4, workers=1)
        parallel = manager.decoder.read_version(record, grid, 4,
                                                workers=4)
        for attr in ("a", "b"):
            np.testing.assert_array_equal(serial.attribute(attr),
                                          parallel.attribute(attr))
        manager.close()

    def test_io_counters_exact_under_parallelism(self, tmp_path):
        """Lock-protected IOStats: not one lost increment at workers=4."""
        serial = _loaded(tmp_path / "serial", workers=0)
        parallel = _loaded(tmp_path / "parallel", workers=4)
        with serial.stats.measure() as expected:
            serial.select("A", 4)
        with parallel.stats.measure() as observed:
            parallel.select("A", 4)
        assert observed.chunks_read == expected.chunks_read
        assert observed.bytes_read == expected.bytes_read
        assert observed.file_opens == expected.file_opens
        serial.close()
        parallel.close()

    def test_concurrent_selects_share_one_cache_exactly(self, tmp_path):
        """Many threads select through one locked cache; byte
        accounting must match a single-threaded replay."""
        manager = _loaded(tmp_path, workers=2, cache_bytes=1 << 20)
        versions = manager.get_versions("A")
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(manager.select, "A", version)
                       for version in versions for _ in range(3)]
            results = [future.result() for future in futures]
        expected = {v: manager.select("A", v) for v in versions}
        for (version, _), result in zip(
                [(v, i) for v in versions for i in range(3)], results):
            np.testing.assert_array_equal(
                result.attribute("a"), expected[version].attribute("a"))
        info = manager.cache_info()
        # Bytes accounting stayed consistent under contention.
        assert info["bytes"] == sum(
            entry.nbytes
            for entry in manager.cache._entries.values())
        manager.close()


class TestWorkersConfiguration:
    def test_malformed_env_rejected_loudly(self, tmp_path, monkeypatch):
        """A misconfigured REPRO_WORKERS must fail, not silently run
        serial (the CI parallel matrix cell would test nothing)."""
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.raises(StorageError):
            VersionedStorageManager(tmp_path / "bad")
        assert not (tmp_path / "bad").exists()  # no durable state

    def test_env_default_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        manager = VersionedStorageManager(tmp_path, backend="memory")
        assert manager.workers == 3
        manager.close()

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            VersionedStorageManager(tmp_path / "bad", workers=-1)
        assert not (tmp_path / "bad").exists()

    def test_close_shuts_down_span_pool(self, tmp_path):
        manager = _loaded(tmp_path, workers=4)
        manager.select("A", 4)  # spins up decode + span executors
        backend = manager.store.backend
        manager.close()
        assert getattr(backend, "_span_executor", None) is None
        # The backend stays usable: a pool is lazily recreated.
        backend.write("probe.dat", b"xy")
        assert backend.read_many("probe.dat", [(0, 1), (1, 1)],
                                 max_workers=2) == [b"x", b"y"]


def _chained(root, depth=5, **kwargs):
    """A 2x2-chunk array whose five versions form full delta chains
    (the same construction test_pipeline's chain-read tests rely on)."""
    manager = VersionedStorageManager(root, chunk_bytes=800,
                                      compressor="none",
                                      delta_policy="chain", **kwargs)
    manager.create_array("C", ArraySchema.simple((20, 20),
                                                 dtype=np.int64))
    rng = np.random.default_rng(2012)
    data = rng.integers(0, 1000, (20, 20)).astype(np.int64)
    for _ in range(depth):
        manager.insert("C", data)
        data = np.where(rng.random((20, 20)) > 0.9, data + 1, data)
    return manager


class TestChainPrefetch:
    def test_deep_select_prefetches_whole_chain(self, tmp_path):
        manager = _chained(tmp_path, cache_bytes=1 << 20)
        with manager.stats.measure() as first:
            manager.select("C", 5)  # decodes every chain root→5 once
        assert first.chunks_read == 4 * 5  # 4 chunks, 5-deep chains
        with manager.stats.measure() as window:
            for version in (1, 2, 3, 4):
                manager.select("C", version)
        assert window.chunks_read == 0  # all served by the prefetch
        manager.close()

    def test_prefetch_terminates_later_chain_walks(self, tmp_path):
        manager = _chained(tmp_path, cache_bytes=1 << 20)
        manager.select("C", 3)
        with manager.stats.measure() as window:
            manager.select("C", 5)  # chain walk stops at cached v3
        # Only the v4+v5 suffix of each of the four chains is read.
        assert window.chunks_read == 4 * 2
        manager.close()

    def test_prefetch_disabled(self, tmp_path):
        manager = _chained(tmp_path, cache_bytes=1 << 20,
                           prefetch=False)
        manager.select("C", 5)
        with manager.stats.measure() as window:
            manager.select("C", 1)
        assert window.chunks_read > 0  # v1 was not prefetched
        manager.close()

    def test_prefetch_identical_results(self, tmp_path):
        plain = _chained(tmp_path / "plain")  # cache off entirely
        prefetching = _chained(tmp_path / "pre", cache_bytes=1 << 20)
        prefetching.select("C", 5)
        for version in (1, 2, 3, 4, 5):
            np.testing.assert_array_equal(
                prefetching.select("C", version).single(),
                plain.select("C", version).single())
        plain.close()
        prefetching.close()


class TestTransactionalWriteBatching:
    def test_mid_write_failure_leaves_zero_chunk_rows(self, tmp_path):
        manager = _loaded(tmp_path, versions=2)
        record = manager.catalog.get_array("A")
        original = manager.store.write_chunk
        calls = {"n": 0}

        def failing_write(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 3:  # fail mid-version, after some payloads
                raise StorageError("disk full")
            return original(*args, **kwargs)

        manager.store.write_chunk = failing_write
        data = manager.select("A", 2)
        with pytest.raises(StorageError):
            manager.insert("A", data)
        manager.store.write_chunk = original

        # Zero chunk rows and no version row for the failed insert.
        assert manager.catalog.chunks_for_version(record.array_id, 3) \
            == []
        assert manager.get_versions("A") == [1, 2]
        # The store recovers: the next insert lands cleanly as v3.
        assert manager.insert("A", data) == 3
        np.testing.assert_array_equal(
            manager.select("A", 3).attribute("a"), data.attribute("a"))
        manager.close()

    def test_put_chunks_rolls_back_whole_batch(self):
        catalog = MetadataCatalog()
        schema = ArraySchema.simple((4, 4), dtype=np.int32)
        record = catalog.create_array("A", schema, chunk_bytes=64,
                                      compressor="none", created_at=0.0)

        def chunk_row(name, offset):
            return ChunkRecord(
                array_id=record.array_id, version=1, attribute="value",
                chunk_name=name, delta_codec=None, base_version=None,
                compressor="none",
                location=ChunkLocation("A/chunks/value/" + name,
                                       offset, 16))

        poisoned = chunk_row("chunk-1", 16)
        # A location sqlite cannot bind: executemany fails after BEGIN.
        object.__setattr__(poisoned, "location",
                           ChunkLocation("A", object(), 16))
        with pytest.raises(Exception):
            catalog.put_chunks([chunk_row("chunk-0", 0), poisoned])
        assert catalog.chunks_for_version(record.array_id, 1) == []

        catalog.put_chunks([chunk_row("chunk-0", 0),
                            chunk_row("chunk-1", 16)])
        assert len(catalog.chunks_for_version(record.array_id, 1)) == 2
        catalog.close()

    def test_failed_branch_leaves_no_partial_array(self, tmp_path):
        manager = _loaded(tmp_path, versions=2)
        original = manager.store.write_chunk
        calls = {"n": 0}

        def failing_write(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise StorageError("disk full")
            return original(*args, **kwargs)

        manager.store.write_chunk = failing_write
        with pytest.raises(StorageError):
            manager.branch("A", 2, "B")
        manager.store.write_chunk = original
        assert manager.list_arrays() == ["A"]
        # The branch works once the fault clears.
        manager.branch("A", 2, "B")
        assert manager.get_versions("B") == [1]
        manager.close()

    def test_failed_merge_leaves_no_partial_array(self, tmp_path):
        manager = _loaded(tmp_path, versions=3)
        original = manager.store.write_chunk
        calls = {"n": 0}

        def failing_write(*args, **kwargs):
            calls["n"] += 1
            # Let the first parent replay fully, fail during the second.
            if calls["n"] > 20:
                raise StorageError("disk full")
            return original(*args, **kwargs)

        manager.store.write_chunk = failing_write
        with pytest.raises(StorageError):
            manager.merge([("A", 1), ("A", 3)], "M")
        manager.store.write_chunk = original
        assert manager.list_arrays() == ["A"]
        manager.merge([("A", 1), ("A", 3)], "M")
        assert manager.get_versions("M") == [1, 2]
        manager.close()

    def test_rejected_overwrite_keeps_cache_warm(self, tmp_path):
        """Regression: NoOverwriteError must not invalidate the cache."""
        manager = _loaded(tmp_path, versions=2, cache_bytes=1 << 20)
        contents = manager.select("A", 2)  # warms the cache
        warm = manager.cache_info()["entries"]
        assert warm > 0
        record = manager.catalog.get_array("A")
        with pytest.raises(NoOverwriteError):
            manager.encoder.write_version(
                record, manager.grid_for(record), 2, contents,
                base_data=None, base_version=None)
        assert manager.cache_info()["entries"] == warm
        with manager.stats.measure() as window:
            manager.select("A", 2)
        assert window.chunks_read == 0  # still served from cache
        manager.close()
