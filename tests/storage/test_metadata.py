"""Tests for the SQLite version metadata catalog (Section II-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    ArrayExistsError,
    ArrayNotFoundError,
    VersionNotFoundError,
)
from repro.core.schema import ArraySchema
from repro.storage.chunkstore import ChunkLocation
from repro.storage.metadata import ChunkRecord, MetadataCatalog


@pytest.fixture
def catalog() -> MetadataCatalog:
    return MetadataCatalog(None)  # in-memory


@pytest.fixture
def schema() -> ArraySchema:
    return ArraySchema.simple((8, 8), dtype=np.int32)


class TestArrays:
    def test_create_and_get(self, catalog, schema):
        record = catalog.create_array("A", schema, 1024, "lz", 100.0)
        fetched = catalog.get_array("A")
        assert fetched == record
        assert fetched.schema == schema
        assert fetched.compressor == "lz"

    def test_duplicate_name_rejected(self, catalog, schema):
        catalog.create_array("A", schema, 1024, "none", 1.0)
        with pytest.raises(ArrayExistsError):
            catalog.create_array("A", schema, 1024, "none", 2.0)

    def test_missing_array(self, catalog):
        with pytest.raises(ArrayNotFoundError):
            catalog.get_array("ghost")
        with pytest.raises(ArrayNotFoundError):
            catalog.get_array_by_id(999)

    def test_list_sorted(self, catalog, schema):
        for name in ("zulu", "alpha", "mike"):
            catalog.create_array(name, schema, 1024, "none", 1.0)
        assert catalog.list_arrays() == ["alpha", "mike", "zulu"]

    def test_branch_parent_recorded(self, catalog, schema):
        catalog.create_array("A", schema, 1024, "none", 1.0)
        record = catalog.create_array("B", schema, 1024, "none", 2.0,
                                      parent_array="A", parent_version=3)
        assert record.parent_array == "A"
        assert record.parent_version == 3

    def test_delete_cascades(self, catalog, schema):
        record = catalog.create_array("A", schema, 1024, "none", 1.0)
        catalog.add_version(record.array_id, 1, None, "insert", 1.0)
        catalog.put_chunk(ChunkRecord(
            record.array_id, 1, "value", "c.dat", None, None, "none",
            ChunkLocation("p", 0, 10)))
        catalog.delete_array("A")
        with pytest.raises(ArrayNotFoundError):
            catalog.get_array("A")
        # Recreate with the same name: must start clean.
        fresh = catalog.create_array("A", schema, 1024, "none", 2.0)
        assert catalog.get_versions(fresh.array_id) == []


class TestVersions:
    @pytest.fixture
    def array_id(self, catalog, schema) -> int:
        return catalog.create_array("A", schema, 1024, "none", 1.0).array_id

    def test_sequence(self, catalog, array_id):
        catalog.add_version(array_id, 1, None, "insert", 10.0)
        catalog.add_version(array_id, 2, 1, "insert", 20.0)
        versions = catalog.get_versions(array_id)
        assert [v.version for v in versions] == [1, 2]
        assert versions[1].parent_version == 1
        assert catalog.latest_version(array_id) == 2

    def test_latest_of_empty(self, catalog, array_id):
        assert catalog.latest_version(array_id) is None

    def test_version_at_timestamp(self, catalog, array_id):
        catalog.add_version(array_id, 1, None, "insert", 10.0)
        catalog.add_version(array_id, 2, 1, "insert", 20.0)
        assert catalog.version_at(array_id, 15.0) == 1
        assert catalog.version_at(array_id, 20.0) == 2
        assert catalog.version_at(array_id, 99.0) == 2
        with pytest.raises(VersionNotFoundError):
            catalog.version_at(array_id, 5.0)

    def test_merge_parents(self, catalog, array_id):
        catalog.add_version(array_id, 1, None, "merge", 1.0,
                            merge_parents=[("X", 3), ("Y", 7)])
        assert catalog.merge_parents_of(array_id, 1) == [("X", 3), ("Y", 7)]

    def test_missing_version(self, catalog, array_id):
        with pytest.raises(VersionNotFoundError):
            catalog.get_version(array_id, 1)

    def test_delete_version(self, catalog, array_id):
        catalog.add_version(array_id, 1, None, "insert", 1.0)
        catalog.delete_version(array_id, 1)
        with pytest.raises(VersionNotFoundError):
            catalog.get_version(array_id, 1)


class TestChunks:
    @pytest.fixture
    def array_id(self, catalog, schema) -> int:
        record = catalog.create_array("A", schema, 1024, "none", 1.0)
        catalog.add_version(record.array_id, 1, None, "insert", 1.0)
        catalog.add_version(record.array_id, 2, 1, "insert", 2.0)
        return record.array_id

    def test_put_get(self, catalog, array_id):
        record = ChunkRecord(array_id, 1, "value", "c.dat", None, None,
                             "lz", ChunkLocation("A/c.dat", 0, 128))
        catalog.put_chunk(record)
        fetched = catalog.get_chunk(array_id, 1, "value", "c.dat")
        assert fetched == record
        assert not fetched.is_delta

    def test_replace_on_put(self, catalog, array_id):
        original = ChunkRecord(array_id, 1, "value", "c.dat", None, None,
                               "none", ChunkLocation("p", 0, 10))
        catalog.put_chunk(original)
        updated = ChunkRecord(array_id, 1, "value", "c.dat", "hybrid", 2,
                              "none", ChunkLocation("p", 10, 4))
        catalog.put_chunk(updated)
        fetched = catalog.get_chunk(array_id, 1, "value", "c.dat")
        assert fetched.is_delta
        assert fetched.base_version == 2
        assert fetched.location.offset == 10

    def test_dependents(self, catalog, array_id):
        catalog.put_chunk(ChunkRecord(
            array_id, 1, "value", "c.dat", None, None, "none",
            ChunkLocation("p", 0, 10)))
        catalog.put_chunk(ChunkRecord(
            array_id, 2, "value", "c.dat", "hybrid", 1, "none",
            ChunkLocation("p", 10, 4)))
        dependents = catalog.dependents_of(array_id, 1)
        assert [d.version for d in dependents] == [2]
        assert catalog.dependents_of(array_id, 2) == []

    def test_stored_bytes(self, catalog, array_id):
        catalog.put_chunk(ChunkRecord(
            array_id, 1, "value", "a.dat", None, None, "none",
            ChunkLocation("p", 0, 100)))
        catalog.put_chunk(ChunkRecord(
            array_id, 2, "value", "a.dat", "hybrid", 1, "none",
            ChunkLocation("p", 100, 20)))
        assert catalog.stored_bytes(array_id) == 120
        assert catalog.stored_bytes(array_id, 2) == 20

    def test_missing_chunk(self, catalog, array_id):
        with pytest.raises(VersionNotFoundError):
            catalog.get_chunk(array_id, 1, "value", "none.dat")
