"""Tests for the optional chunk cache (off by default per the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import ArraySchema
from repro.storage import VersionedStorageManager


@pytest.fixture
def cached_manager(tmp_path):
    return VersionedStorageManager(tmp_path, chunk_bytes=2048,
                                   cache_chunks=32)


@pytest.fixture
def filled(cached_manager, rng):
    manager = cached_manager
    manager.create_array("A", ArraySchema.simple((16, 16),
                                                 dtype=np.int32))
    versions = []
    data = rng.integers(0, 100, (16, 16)).astype(np.int32)
    for _ in range(4):
        versions.append(data)
        manager.insert("A", data)
        data = data + 1
    return manager, versions


class TestChunkCache:
    def test_disabled_by_default(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=2048)
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int32))
        manager.insert("A", rng.integers(0, 9, (8, 8)).astype(np.int32))
        manager.select("A", 1)
        manager.select("A", 1)
        info = manager.cache_info()
        assert info["capacity"] == 0
        assert info["hits"] == 0

    def test_repeat_reads_hit(self, filled):
        manager, versions = filled
        manager.select("A", 4)
        before = manager.stats.chunks_read
        out = manager.select("A", 4)
        assert manager.stats.chunks_read == before  # no disk I/O
        assert manager.cache_info()["hits"] > 0
        np.testing.assert_array_equal(out.single(), versions[3])

    def test_capacity_evicts_lru(self, tmp_path, rng):
        manager = VersionedStorageManager(tmp_path, chunk_bytes=2048,
                                          cache_chunks=2)
        manager.create_array("A", ArraySchema.simple((8, 8),
                                                     dtype=np.int32))
        for index in range(5):
            manager.insert(
                "A", np.full((8, 8), index, dtype=np.int32))
        for version in (1, 2, 3, 4, 5):
            manager.select("A", version)
        assert manager.cache_info()["entries"] <= 2

    def test_write_invalidates(self, filled, rng):
        manager, versions = filled
        manager.select("A", 4)  # warm the cache
        manager.apply_layout("A", {4: None, 3: 4, 2: 3, 1: 2})
        # Contents must come from the re-encoded layout, not the cache.
        for number, expected in enumerate(versions, 1):
            np.testing.assert_array_equal(
                manager.select("A", number).single(), expected)

    def test_delete_version_invalidates(self, filled):
        manager, versions = filled
        manager.select("A", 2)
        manager.delete_version("A", 2)
        np.testing.assert_array_equal(
            manager.select("A", 3).single(), versions[2])

    def test_delete_array_invalidates(self, filled, rng):
        manager, _ = filled
        manager.select("A", 1)
        manager.delete_array("A")
        manager.create_array("A", ArraySchema.simple((16, 16),
                                                     dtype=np.int32))
        fresh = rng.integers(500, 600, (16, 16)).astype(np.int32)
        manager.insert("A", fresh)
        np.testing.assert_array_equal(manager.select("A", 1).single(),
                                      fresh)

    def test_cached_contents_identical(self, filled):
        manager, versions = filled
        first = manager.select("A", 2).single()
        second = manager.select("A", 2).single()
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, versions[1])
