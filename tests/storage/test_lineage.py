"""Tests for version lineage graphs (trees and, with Merge, DAGs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schema import ArraySchema
from repro.storage import VersionedStorageManager
from repro.storage.lineage import build_lineage


@pytest.fixture
def tree_store(tmp_path, rng):
    manager = VersionedStorageManager(tmp_path, chunk_bytes=4096)
    manager.create_array("raw", ArraySchema.simple((8, 8),
                                                   dtype=np.int32))
    data = rng.integers(0, 99, (8, 8)).astype(np.int32)
    manager.insert("raw", data)
    manager.insert("raw", data + 1)
    manager.branch("raw", 1, "cookedA")
    manager.insert("cookedA", data * 2)
    manager.branch("raw", 2, "cookedB")
    return manager


class TestLineageTree:
    def test_nodes_and_edges(self, tree_store):
        graph = build_lineage(tree_store)
        labels = {node.label for node in graph.nodes}
        assert labels == {"raw@1", "raw@2", "cookedA@1", "cookedA@2",
                          "cookedB@1"}
        kinds = {(e.parent.label, e.child.label, e.kind)
                 for e in graph.edges}
        assert ("raw@1", "raw@2", "insert") in kinds
        assert ("raw@1", "cookedA@1", "branch") in kinds
        assert ("raw@2", "cookedB@1", "branch") in kinds
        assert ("cookedA@1", "cookedA@2", "insert") in kinds

    def test_roots(self, tree_store):
        graph = build_lineage(tree_store)
        assert [node.label for node in graph.roots()] == ["raw@1"]

    def test_navigation(self, tree_store):
        graph = build_lineage(tree_store)
        children = {n.label for n in graph.children_of("raw", 1)}
        assert children == {"raw@2", "cookedA@1"}
        parents = {n.label for n in graph.parents_of("cookedB", 1)}
        assert parents == {"raw@2"}

    def test_is_tree_without_merges(self, tree_store):
        assert build_lineage(tree_store).is_tree()

    def test_unknown_node(self, tree_store):
        graph = build_lineage(tree_store)
        with pytest.raises(KeyError):
            graph.node("ghost", 1)


class TestLineageWithMerge:
    def test_merge_makes_dag(self, tree_store):
        tree_store.merge([("raw", 2), ("cookedA", 2)], "combined")
        graph = build_lineage(tree_store)
        # "The existence of merge allows the version hierarchy to be a
        # graph and not strictly a tree."
        assert not graph.is_tree()
        parents = {n.label for n in graph.parents_of("combined", 1)}
        assert "raw@2" in parents

    def test_merge_edges_kind(self, tree_store):
        tree_store.merge([("raw", 2), ("cookedA", 2)], "combined")
        graph = build_lineage(tree_store)
        merge_edges = [e for e in graph.edges if e.kind == "merge"]
        assert {(e.parent.label, e.child.label) for e in merge_edges} == \
            {("raw@2", "combined@1"), ("cookedA@2", "combined@2")}


class TestRendering:
    def test_dot_output(self, tree_store):
        dot = build_lineage(tree_store).to_dot()
        assert dot.startswith("digraph versions {")
        assert '"raw@1" -> "raw@2"' in dot
        assert "style=dashed" in dot  # branch edges
        assert dot.endswith("}")

    def test_text_output(self, tree_store):
        text = build_lineage(tree_store).to_text()
        lines = text.splitlines()
        assert lines[0] == "raw@1"
        assert any(line.strip().startswith("cookedA@1") for line in lines)
        # Children are indented under their parents.
        raw2 = next(line for line in lines if "raw@2" in line)
        assert raw2.startswith("  ")
