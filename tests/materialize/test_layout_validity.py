"""Layout validity tests — Figure 3 and Observations 1-4 (Section IV-B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidLayoutError
from repro.materialize import Layout, MaterializationMatrix


class TestFigure3:
    """The paper's worked example: three versions, two candidate layouts."""

    def test_cycle_layout_invalid(self):
        # Left of Figure 3: V1 <- V2 <- V3 <- V1 — a pure delta cycle.
        layout = Layout({1: 2, 2: 3, 3: 1})
        assert not layout.is_valid()
        with pytest.raises(InvalidLayoutError):
            layout.require_valid()

    def test_chain_with_materialized_root_valid(self):
        # Right of Figure 3: V1 <- V2 <- V3 with V3 materialized.
        layout = Layout({1: 2, 2: 3, 3: None})
        assert layout.is_valid()
        assert layout.materialized == (3,)


class TestObservations:
    def test_observation1_edge_count(self):
        layout = Layout({1: None, 2: 1, 3: 1, 4: 2})
        assert layout.edge_count == 4  # n edges for n versions

    def test_observation2_any_cycle_invalid(self):
        # Even with another materialized version present, a cycle among
        # other versions leaves them unreconstructable.
        layout = Layout({1: 2, 2: 1, 3: None})
        assert not layout.is_valid()

    def test_observation3_one_root_per_component(self):
        valid = Layout({1: None, 2: 1, 3: None, 4: 3})
        assert valid.is_valid()
        # Two components, but one has no materialization.
        no_root = Layout({1: None, 2: 1, 3: 4, 4: 3})
        assert not no_root.is_valid()

    def test_observation4_forest_is_valid(self):
        forest = Layout({1: None, 2: 1, 3: 1, 4: None, 5: 4, 6: 5})
        assert forest.is_valid()

    def test_self_delta_invalid(self):
        assert not Layout({1: 1}).is_valid()

    def test_parent_outside_layout_invalid(self):
        assert not Layout({1: None, 2: 99}).is_valid()

    def test_all_materialized_valid(self):
        assert Layout.all_materialized([1, 2, 3]).is_valid()

    def test_single_version(self):
        assert Layout({7: None}).is_valid()
        assert not Layout({7: 7}).is_valid()


class TestPathsAndClosures:
    @pytest.fixture
    def layout(self) -> Layout:
        #      4 (materialized)
        #     / \
        #    3   5
        #    |
        #    2
        #    |
        #    1
        return Layout({4: None, 3: 4, 5: 4, 2: 3, 1: 2})

    def test_path_to_root(self, layout):
        assert layout.path_to_root(1) == [1, 2, 3, 4]
        assert layout.path_to_root(5) == [5, 4]
        assert layout.path_to_root(4) == [4]

    def test_path_missing_version(self, layout):
        with pytest.raises(InvalidLayoutError):
            layout.path_to_root(42)

    def test_closure_union(self, layout):
        assert layout.closure([1]) == {1, 2, 3, 4}
        assert layout.closure([5]) == {5, 4}
        assert layout.closure([1, 5]) == {1, 2, 3, 4, 5}

    def test_cycle_detected_on_path(self):
        broken = Layout({1: 2, 2: 1})
        with pytest.raises(InvalidLayoutError):
            broken.path_to_root(1)


class TestCosts:
    @pytest.fixture
    def matrix(self) -> MaterializationMatrix:
        costs = np.array([
            [100.0, 10.0, 50.0],
            [10.0, 100.0, 20.0],
            [50.0, 20.0, 100.0],
        ])
        return MaterializationMatrix(versions=(1, 2, 3), costs=costs)

    def test_total_size(self, matrix):
        chain = Layout({1: None, 2: 1, 3: 2})
        assert chain.total_size(matrix) == 100 + 10 + 20

    def test_io_cost_counts_closure_sizes(self, matrix):
        chain = Layout({1: None, 2: 1, 3: 2})
        # Query for version 3 must fetch 3 (20), 2 (10) and 1 (100).
        assert chain.io_cost([3], matrix) == 130
        assert chain.io_cost([1], matrix) == 100

    def test_materialized_head_cheap_head_queries(self, matrix):
        head = Layout({3: None, 2: 3, 1: 2})
        assert head.io_cost([3], matrix) == 100
        assert head.io_cost([1], matrix) == 100 + 20 + 10


class TestConstructors:
    def test_linear_chain_forward(self):
        chain = Layout.linear_chain([1, 2, 3])
        assert chain.parent_of == {1: None, 2: 1, 3: 2}

    def test_linear_chain_backward(self):
        chain = Layout.linear_chain([1, 2, 3], newest_materialized=True)
        assert chain.parent_of == {3: None, 2: 3, 1: 2}

    def test_linear_chain_empty_rejected(self):
        with pytest.raises(InvalidLayoutError):
            Layout.linear_chain([])

    def test_with_parent_copies(self):
        original = Layout({1: None, 2: 1})
        changed = original.with_parent(2, None)
        assert original.parent_of[2] == 1
        assert changed.parent_of[2] is None


@settings(max_examples=100, deadline=None)
@given(data=st.data(), n=st.integers(1, 8))
def test_random_parent_maps_validity_matches_reachability(data, n):
    """Property: is_valid() == every version reconstructs to a root."""
    versions = list(range(1, n + 1))
    parent_of = {}
    for v in versions:
        parent_of[v] = data.draw(
            st.one_of(st.none(), st.sampled_from(versions)))
    layout = Layout(parent_of)

    def reconstructs(v: int) -> bool:
        seen = set()
        while v is not None:
            if v in seen:
                return False
            seen.add(v)
            v = parent_of[v]
        return True

    expected = all(reconstructs(v) for v in versions)
    assert layout.is_valid() == expected
