"""Tests for the Materialization Matrix (Section IV-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import LempelZivCodec
from repro.core.errors import DeltaShapeMismatchError, ReproError
from repro.materialize import MaterializationMatrix


def _version_family(rng, count=5, shape=(32, 32)):
    base = rng.integers(0, 10000, size=shape).astype(np.int32)
    contents = {1: base}
    for v in range(2, count + 1):
        nxt = contents[v - 1].copy()
        mask = rng.random(size=shape) > 0.95
        nxt[mask] += rng.integers(1, 10)
        contents[v] = nxt
    return contents


class TestBuild:
    def test_symmetric(self, rng):
        matrix = MaterializationMatrix.build(_version_family(rng))
        np.testing.assert_allclose(matrix.costs, matrix.costs.T)

    def test_diagonal_is_materialization(self, rng):
        contents = _version_family(rng)
        matrix = MaterializationMatrix.build(contents)
        # Identity codec: materialized size ~ raw bytes + small header.
        raw = contents[1].nbytes
        assert raw <= matrix.materialize_size(1) <= raw + 64

    def test_similar_versions_have_small_deltas(self, rng):
        matrix = MaterializationMatrix.build(_version_family(rng))
        assert matrix.delta_size(1, 2) < matrix.materialize_size(1) / 5

    def test_custom_compressor(self, rng):
        contents = {1: np.zeros((64, 64), dtype=np.int32),
                    2: np.ones((64, 64), dtype=np.int32)}
        matrix = MaterializationMatrix.build(
            contents, compressor=LempelZivCodec())
        # All-constant arrays LZ down to almost nothing.
        assert matrix.materialize_size(1) < 200

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            MaterializationMatrix.build({})

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(DeltaShapeMismatchError):
            MaterializationMatrix.build({
                1: np.zeros((4, 4), dtype=np.int32),
                2: np.zeros((4, 5), dtype=np.int32),
            })

    def test_size_accessors(self, rng):
        matrix = MaterializationMatrix.build(_version_family(rng, count=3))
        assert matrix.size(1, None) == matrix.materialize_size(1)
        assert matrix.size(1, 2) == matrix.delta_size(1, 2)
        with pytest.raises(ReproError):
            matrix.delta_size(1, 1)
        with pytest.raises(ReproError):
            matrix.materialize_size(99)

    def test_assumption_check(self, rng):
        matrix = MaterializationMatrix.build(_version_family(rng))
        # Similar versions: deltas always beat materialization.
        assert matrix.materialization_always_larger()
        # Unrelated uint8 versions: zigzag'ed deltas span [-255, 255]
        # and need 9 bits per cell, more than the 8-bit materialization.
        unrelated = {
            1: rng.integers(0, 256, (64, 64)).astype(np.uint8),
            2: rng.integers(0, 256, (64, 64)).astype(np.uint8),
        }
        assert not MaterializationMatrix.build(
            unrelated).materialization_always_larger()


class TestSampling:
    def test_sampled_estimate_close_to_exact(self, rng):
        contents = _version_family(rng, count=4, shape=(128, 128))
        exact = MaterializationMatrix.build(contents)
        sampled = MaterializationMatrix.build(
            contents, sample_fraction=0.05, rng=rng)
        for i in (1, 2, 3):
            estimate = sampled.delta_size(i, i + 1)
            truth = exact.delta_size(i, i + 1)
            assert estimate == pytest.approx(truth, rel=0.5, abs=200)

    def test_sampled_is_cheaper_to_build(self, rng):
        # Structural check: the sample really is smaller than the array.
        contents = _version_family(rng, count=3, shape=(64, 64))
        matrix = MaterializationMatrix.build(
            contents, sample_fraction=0.01, rng=rng)
        assert matrix.n == 3  # built successfully from 1% of cells

    def test_invalid_fraction(self, rng):
        contents = _version_family(rng, count=2)
        with pytest.raises(ReproError):
            MaterializationMatrix.build(contents, sample_fraction=0.0)
        with pytest.raises(ReproError):
            MaterializationMatrix.build(contents, sample_fraction=1.5)


class TestRestrict:
    def test_submatrix(self, rng):
        matrix = MaterializationMatrix.build(_version_family(rng, count=5))
        sub = matrix.restrict([2, 4, 5])
        assert sub.versions == (2, 4, 5)
        assert sub.delta_size(2, 4) == matrix.delta_size(2, 4)
        assert sub.materialize_size(5) == matrix.materialize_size(5)

    def test_restrict_unknown_version(self, rng):
        matrix = MaterializationMatrix.build(_version_family(rng, count=3))
        with pytest.raises(ReproError):
            matrix.restrict([1, 99])


class TestFromManager:
    def test_matches_in_memory_build(self, tmp_path, rng):
        from repro.core.schema import ArraySchema
        from repro.storage import VersionedStorageManager

        contents = _version_family(rng, count=3, shape=(16, 16))
        manager = VersionedStorageManager(tmp_path, chunk_bytes=1 << 20)
        manager.create_array("A", ArraySchema.simple((16, 16),
                                                     dtype=np.int32))
        for v in sorted(contents):
            manager.insert("A", contents[v])
        from_manager = MaterializationMatrix.from_manager(manager, "A")
        direct = MaterializationMatrix.build(contents)
        np.testing.assert_allclose(from_manager.costs, direct.costs)
