"""Tests for the harmonic-analysis delta estimator (Section IV-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.datasets import noaa_series
from repro.materialize import MaterializationMatrix, optimal_layout
from repro.materialize.spectral import (
    SpectralEstimator,
    estimate_delta_bits,
    spectral_signature,
)


class TestSignature:
    def test_shape_and_padding(self, rng):
        small = rng.normal(0, 1, (4, 4))
        signature = spectral_signature(small, k=16)
        assert signature.shape == (16, 16)
        # Regions beyond the array's spectrum stay zero.
        assert np.all(signature[4:, :] == 0)

    def test_1d_and_3d_inputs(self, rng):
        assert spectral_signature(rng.normal(0, 1, 64), k=8).shape == (8, 8)
        assert spectral_signature(rng.normal(0, 1, (4, 4, 4)),
                                  k=8).shape == (8, 8)

    def test_identical_arrays_zero_distance(self, rng):
        array = rng.normal(0, 100, (32, 32))
        a = spectral_signature(array)
        b = spectral_signature(array.copy())
        assert estimate_delta_bits(a, b) == 0.0

    def test_distance_grows_with_difference(self, rng):
        base = rng.normal(0, 10, (32, 32))
        near = spectral_signature(base + 0.01)
        far = spectral_signature(base + 10.0)
        reference = spectral_signature(base)
        assert estimate_delta_bits(reference, near) < \
            estimate_delta_bits(reference, far)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            estimate_delta_bits(np.zeros((4, 4)), np.zeros((8, 8)))

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            spectral_signature(np.zeros((4, 4)), k=0)

    def test_sketch_much_smaller_than_array(self, rng):
        estimator = SpectralEstimator(k=16)
        array = rng.normal(0, 1, (512, 512))
        assert estimator.signature_bytes(array) < array.nbytes / 100


class TestSpectralMatrix:
    def test_builds_symmetric_matrix(self, rng):
        frames = noaa_series(5, shape=(64, 64))["humidity"]
        contents = {i: f for i, f in enumerate(frames, 1)}
        matrix = SpectralEstimator().build(contents)
        assert matrix.n == 5
        np.testing.assert_allclose(matrix.costs, matrix.costs.T)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            SpectralEstimator().build({})

    def test_ranks_like_exact_matrix_on_smooth_drift(self):
        """The estimator must order delta partners like the truth.

        A cumulative low-frequency drift series: the further apart two
        versions are, the larger their delta — the estimator's ordering
        of candidate partners must be monotone in that distance
        (distance *ties*, e.g. the two neighbours of an anchor, may
        order either way).
        """
        rng = np.random.default_rng(7)
        y = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        x = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        current = 100 * np.outer(np.sin(y), np.cos(x))
        contents = {}
        for version in range(1, 7):
            contents[version] = np.round(current).astype(np.int32)
            fy, fx = rng.integers(1, 3, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            current = current + 5 * np.outer(np.sin(fy * y + phase_y),
                                             np.cos(fx * x + phase_x))
        spectral = SpectralEstimator().build(contents)
        exact = MaterializationMatrix.build(contents)
        for anchor in (1, 3, 6):
            others = [v for v in contents if v != anchor]
            estimated_order = sorted(
                others, key=lambda v: spectral.delta_size(anchor, v))
            exact_order = sorted(
                others, key=lambda v: exact.delta_size(anchor, v))
            # Rank agreement with the exact matrix (Spearman footrule:
            # total rank displacement small relative to worst case).
            displacement = sum(
                abs(estimated_order.index(v) - exact_order.index(v))
                for v in others)
            assert displacement <= len(others)

    def test_optimal_layout_from_sketch_is_near_optimal(self):
        """Planning on the sketch matrix must land near the true optimum
        when evaluated with true costs — the use case of Section IV-A."""
        rng = np.random.default_rng(11)
        current = rng.normal(0, 100, (64, 64))
        contents = {}
        for version in range(1, 9):
            contents[version] = np.round(current).astype(np.int32)
            current = current + rng.normal(0, 2, (64, 64))
        exact = MaterializationMatrix.build(contents)
        sketch = SpectralEstimator().build(contents)
        true_best = optimal_layout(exact).total_size(exact)
        sketch_layout = optimal_layout(sketch)
        achieved = sketch_layout.total_size(exact)
        assert achieved <= true_best * 1.25
