"""Tests for incremental and batch update policies (Section IV-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.materialize import (
    BatchUpdatePlanner,
    Layout,
    MaterializationMatrix,
    extend_matrix,
    incremental_insert,
    optimal_layout,
)


def _family(rng, count, shape=(16, 16)):
    base = rng.integers(0, 1000, size=shape).astype(np.int32)
    contents = {1: base}
    for v in range(2, count + 1):
        nxt = contents[v - 1].copy()
        nxt[rng.random(size=shape) > 0.9] += 1
        contents[v] = nxt
    return contents


class TestExtendMatrix:
    def test_adds_row_and_column(self, rng):
        contents = _family(rng, 3)
        matrix = MaterializationMatrix.build(contents)
        new = contents[3].copy()
        new[0, 0] += 7
        extended = extend_matrix(matrix, contents, 4, new)
        assert extended.versions == (1, 2, 3, 4)
        # Old entries unchanged.
        assert extended.delta_size(1, 2) == matrix.delta_size(1, 2)
        # New version is closest to version 3.
        assert extended.delta_size(4, 3) <= extended.delta_size(4, 1)

    def test_matches_full_rebuild(self, rng):
        contents = _family(rng, 3)
        matrix = MaterializationMatrix.build(contents)
        new = contents[3] + 1
        extended = extend_matrix(matrix, contents, 4, new,
                                 materialized_size=float(new.nbytes))
        full = MaterializationMatrix.build({**contents, 4: new})
        np.testing.assert_allclose(
            extended.costs[:3, :3], full.costs[:3, :3])
        np.testing.assert_allclose(extended.costs[3, :3],
                                   full.costs[3, :3])

    def test_duplicate_version_rejected(self, rng):
        contents = _family(rng, 2)
        matrix = MaterializationMatrix.build(contents)
        with pytest.raises(ReproError):
            extend_matrix(matrix, contents, 2, contents[2])

    def test_missing_contents_rejected(self, rng):
        contents = _family(rng, 3)
        matrix = MaterializationMatrix.build(contents)
        with pytest.raises(ReproError):
            extend_matrix(matrix, {1: contents[1]}, 4, contents[3])


class TestIncrementalInsert:
    def test_deltas_against_best_parent(self):
        costs = np.array([
            [100.0, 10.0, 90.0],
            [10.0, 100.0, 5.0],
            [90.0, 5.0, 100.0],
        ])
        matrix = MaterializationMatrix(versions=(1, 2, 3), costs=costs)
        layout = Layout({1: None, 2: 1})
        updated = incremental_insert(layout, matrix, 3)
        assert updated.parent_of[3] == 2  # the cheapest delta
        assert updated.is_valid()

    def test_materializes_when_cheaper(self):
        costs = np.array([
            [100.0, 500.0],
            [500.0, 50.0],
        ])
        matrix = MaterializationMatrix(versions=(1, 2), costs=costs)
        layout = Layout({1: None})
        updated = incremental_insert(layout, matrix, 2)
        assert updated.parent_of[2] is None

    def test_existing_version_rejected(self):
        matrix = MaterializationMatrix(
            versions=(1,), costs=np.array([[10.0]]))
        with pytest.raises(ReproError):
            incremental_insert(Layout({1: None}), matrix, 1)


class TestBatchPlanner:
    def test_flushes_on_batch_size(self, rng):
        planner = BatchUpdatePlanner(batch_size=3)
        contents = _family(rng, 6)
        flushes = []
        for v in sorted(contents):
            result = planner.add(v, contents[v])
            if result is not None:
                flushes.append(result)
        assert len(flushes) == 2
        assert planner.flushed_batches == 2
        assert planner.pending_count == 0

    def test_batches_stay_separate(self, rng):
        planner = BatchUpdatePlanner(batch_size=3)
        contents = _family(rng, 6)
        for v in sorted(contents):
            planner.add(v, contents[v])
        layout = planner.layout
        assert layout.is_valid()
        # No delta edge may cross the batch boundary between 3 and 4.
        for version, parent in layout.parent_of.items():
            if parent is not None:
                assert (version <= 3) == (parent <= 3)

    def test_chain_length_bounded_by_batch(self, rng):
        planner = BatchUpdatePlanner(batch_size=4)
        contents = _family(rng, 12)
        for v in sorted(contents):
            planner.add(v, contents[v])
        assert planner.max_chain_length() <= 4

    def test_each_batch_is_optimal(self, rng):
        planner = BatchUpdatePlanner(batch_size=3)
        contents = _family(rng, 3)
        batch_layout = None
        for v in sorted(contents):
            result = planner.add(v, contents[v])
            if result is not None:
                batch_layout = result
        matrix = MaterializationMatrix.build(contents)
        expected = optimal_layout(matrix)
        assert batch_layout.total_size(matrix) == \
            pytest.approx(expected.total_size(matrix))

    def test_manual_flush(self, rng):
        planner = BatchUpdatePlanner(batch_size=100)
        contents = _family(rng, 2)
        for v in sorted(contents):
            assert planner.add(v, contents[v]) is None
        assert planner.flush() is not None
        assert planner.flush() is None  # idempotent on empty
        assert planner.layout.is_valid()

    def test_duplicate_rejected(self, rng):
        planner = BatchUpdatePlanner(batch_size=5)
        contents = _family(rng, 1)
        planner.add(1, contents[1])
        with pytest.raises(ReproError):
            planner.add(1, contents[1])

    def test_bad_batch_size(self):
        with pytest.raises(ReproError):
            BatchUpdatePlanner(batch_size=0)

    def test_empty_layout(self):
        planner = BatchUpdatePlanner()
        assert planner.max_chain_length() == 0
