"""Tests for the spanning-tree / forest layout algorithms (Section IV-C)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.materialize import (
    Layout,
    MaterializationMatrix,
    UnionFind,
    algorithm1_mst,
    algorithm2_forest,
    kruskal_mst,
    optimal_layout,
    prim_mst,
)


def _matrix(costs: list[list[float]]) -> MaterializationMatrix:
    array = np.array(costs, dtype=float)
    return MaterializationMatrix(
        versions=tuple(range(1, len(costs) + 1)), costs=array)


def _brute_force_optimum(matrix: MaterializationMatrix) -> float:
    """Minimum total size over every valid layout (tiny n only)."""
    versions = matrix.versions
    best = np.inf
    choices = [(None, *[u for u in versions if u != v]) for v in versions]
    for assignment in itertools.product(*choices):
        layout = Layout(dict(zip(versions, assignment)))
        if layout.is_valid():
            best = min(best, layout.total_size(matrix))
    return best


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind([1, 2, 3, 4])
        assert uf.union(1, 2)
        assert not uf.union(2, 1)
        assert uf.find(1) == uf.find(2)
        assert uf.find(3) != uf.find(1)

    def test_union_by_size_path_compression(self):
        uf = UnionFind(range(100))
        for i in range(99):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))


class TestMSTPrimitives:
    def test_kruskal_known_graph(self):
        edges = [(1.0, 1, 2), (2.0, 2, 3), (10.0, 1, 3)]
        mst = kruskal_mst([1, 2, 3], edges)
        assert sum(w for w, _, _ in mst) == 3.0

    def test_prim_agrees_with_kruskal(self, rng):
        nodes = list(range(6))
        weights = {}
        edges = []
        for a in nodes:
            for b in nodes:
                if a < b:
                    w = float(rng.integers(1, 100))
                    weights[(a, b)] = w
                    weights[(b, a)] = w
                    edges.append((w, a, b))
        kruskal_total = sum(w for w, _, _ in kruskal_mst(nodes, edges))
        prim_total = sum(w for w, _, _ in prim_mst(nodes, weights))
        assert kruskal_total == prim_total


class TestAlgorithm1:
    def test_single_version(self):
        layout = algorithm1_mst(_matrix([[42.0]]))
        assert layout.parent_of == {1: None}

    def test_roots_at_cheapest_materialization(self):
        matrix = _matrix([
            [100, 5, 9],
            [5, 60, 5],
            [9, 5, 90],
        ])
        layout = algorithm1_mst(matrix)
        assert layout.materialized == (2,)
        assert layout.is_valid()

    def test_optimal_when_assumption_holds(self):
        # Deltas all cheaper than any materialization: Algorithm 1 must
        # equal the exact optimum (the paper's claim).
        matrix = _matrix([
            [100, 10, 30, 40],
            [10, 110, 15, 35],
            [30, 15, 120, 12],
            [40, 35, 12, 90],
        ])
        assert matrix.materialization_always_larger()
        layout = algorithm1_mst(matrix)
        assert layout.total_size(matrix) == _brute_force_optimum(matrix)

    def test_prim_variant_same_cost(self):
        matrix = _matrix([
            [100, 10, 30],
            [10, 110, 15],
            [30, 15, 120],
        ])
        a = algorithm1_mst(matrix, use_prim=False)
        b = algorithm1_mst(matrix, use_prim=True)
        assert a.total_size(matrix) == b.total_size(matrix)


class TestAlgorithm2:
    def test_splits_when_materialization_beats_delta(self):
        # Two clusters of similar versions with an expensive delta
        # between them: materializing one per cluster wins.
        matrix = _matrix([
            [100, 5, 500, 500],
            [5, 100, 500, 500],
            [500, 500, 100, 5],
            [500, 500, 5, 100],
        ])
        tree = algorithm1_mst(matrix)
        forest = algorithm2_forest(matrix)
        assert forest.total_size(matrix) < tree.total_size(matrix)
        assert len(forest.materialized) == 2
        assert forest.is_valid()
        assert forest.total_size(matrix) == 100 + 5 + 100 + 5

    def test_no_split_when_assumption_holds(self):
        matrix = _matrix([
            [100, 10, 30],
            [10, 110, 15],
            [30, 15, 120],
        ])
        tree = algorithm1_mst(matrix)
        forest = algorithm2_forest(matrix)
        assert forest.parent_of == tree.parent_of


class TestOptimalLayout:
    def test_matches_brute_force(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 6))
            costs = rng.integers(1, 100, size=(n, n)).astype(float)
            costs = (costs + costs.T) / 2
            matrix = MaterializationMatrix(
                versions=tuple(range(1, n + 1)), costs=costs)
            layout = optimal_layout(matrix)
            assert layout.is_valid()
            assert layout.total_size(matrix) == \
                pytest.approx(_brute_force_optimum(matrix))

    def test_never_worse_than_heuristics(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 7))
            costs = rng.integers(1, 1000, size=(n, n)).astype(float)
            costs = (costs + costs.T) / 2
            matrix = MaterializationMatrix(
                versions=tuple(range(1, n + 1)), costs=costs)
            exact = optimal_layout(matrix).total_size(matrix)
            assert exact <= algorithm1_mst(matrix).total_size(matrix) + 1e-9
            assert exact <= algorithm2_forest(matrix) \
                .total_size(matrix) + 1e-9

    def test_algorithm1_matches_optimal_under_assumption(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 6))
            deltas = rng.integers(1, 50, size=(n, n)).astype(float)
            deltas = (deltas + deltas.T) / 2
            costs = deltas.copy()
            np.fill_diagonal(costs, 1000.0)  # materialization dominates
            matrix = MaterializationMatrix(
                versions=tuple(range(1, n + 1)), costs=costs)
            assert matrix.materialization_always_larger()
            assert algorithm1_mst(matrix).total_size(matrix) == \
                pytest.approx(optimal_layout(matrix).total_size(matrix))

    def test_periodic_pattern_found(self):
        """The Section V-D synthetic scenario in miniature: versions
        recur with period 2; the optimal layout deltas each recurrence
        against its previous occurrence, not its neighbour."""
        big, tiny = 1000.0, 1.0
        n = 6
        costs = np.full((n, n), big)
        for i in range(n):
            for j in range(n):
                if i != j and (i - j) % 2 == 0:
                    costs[i, j] = tiny
        matrix = MaterializationMatrix(
            versions=tuple(range(1, n + 1)), costs=costs)
        layout = optimal_layout(matrix)
        # Expect: two materialized-ish clusters, all deltas tiny.
        delta_edges = [(v, p) for v, p in layout.parent_of.items()
                       if p is not None]
        assert all((v - p) % 2 == 0 for v, p in delta_edges)
        assert layout.total_size(matrix) == 2 * big + 4 * tiny

    def test_real_version_family_linear_chainish(self, rng):
        """Smoothly evolving versions: the optimum degenerates to a
        linear chain (the Section V-D confirmation experiment)."""
        shape = (32, 32)
        base = rng.integers(0, 1000, size=shape).astype(np.int32)
        contents = {1: base}
        for v in range(2, 7):
            nxt = contents[v - 1].copy()
            # Monotone drift: nearby versions are closest.
            nxt += rng.integers(0, 3, size=shape).astype(np.int32)
            contents[v] = nxt
        matrix = MaterializationMatrix.build(contents)
        layout = optimal_layout(matrix)
        # Every delta edge connects adjacent versions.
        for version, parent in layout.parent_of.items():
            if parent is not None:
                assert abs(version - parent) == 1


@settings(max_examples=30, deadline=None)
@given(data=st.data(), n=st.integers(2, 5))
def test_optimal_layout_property(data, n):
    """optimal_layout is valid and never beaten by random valid layouts."""
    values = data.draw(st.lists(
        st.floats(min_value=1, max_value=1e6), min_size=n * n,
        max_size=n * n))
    costs = np.array(values).reshape(n, n)
    costs = (costs + costs.T) / 2
    matrix = MaterializationMatrix(versions=tuple(range(n)), costs=costs)
    layout = optimal_layout(matrix)
    assert layout.is_valid()
    optimal_size = layout.total_size(matrix)

    versions = matrix.versions
    for _ in range(20):
        parent_of = {}
        for v in versions:
            parent_of[v] = data.draw(st.one_of(
                st.none(), st.sampled_from([u for u in versions if u != v])))
        candidate = Layout(parent_of)
        if candidate.is_valid():
            assert optimal_size <= candidate.total_size(matrix) + 1e-6
