"""Tests for chunk-fraction region queries in the IV-D cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import WorkloadError
from repro.materialize import (
    Layout,
    MaterializationMatrix,
    RegionQuery,
    WeightedQuery,
    greedy_workload_layout,
    workload_cost,
)


@pytest.fixture
def matrix() -> MaterializationMatrix:
    costs = np.array([
        [100.0, 10.0, 20.0],
        [10.0, 100.0, 10.0],
        [20.0, 10.0, 100.0],
    ])
    return MaterializationMatrix(versions=(1, 2, 3), costs=costs)


class TestRegionQuery:
    def test_versions(self):
        assert RegionQuery(3, fraction=0.25).versions() == (3,)

    def test_invalid_fraction(self):
        with pytest.raises(WorkloadError):
            RegionQuery(1, fraction=0.0)
        with pytest.raises(WorkloadError):
            RegionQuery(1, fraction=1.5)

    def test_cost_scales_by_fraction(self, matrix):
        chain = Layout({1: None, 2: 1, 3: 2})
        full = workload_cost(chain,
                             [WeightedQuery(RegionQuery(3, 1.0))], matrix)
        quarter = workload_cost(chain,
                                [WeightedQuery(RegionQuery(3, 0.25))],
                                matrix)
        assert quarter == pytest.approx(full / 4)

    def test_default_fraction_matches_snapshot(self, matrix):
        from repro.materialize import SnapshotQuery

        chain = Layout({1: None, 2: 1, 3: 2})
        region = workload_cost(chain,
                               [WeightedQuery(RegionQuery(2))], matrix)
        snapshot = workload_cost(chain,
                                 [WeightedQuery(SnapshotQuery(2))],
                                 matrix)
        assert region == snapshot

    def test_optimizer_accepts_region_queries(self, matrix):
        workload = [WeightedQuery(RegionQuery(3, 0.1), weight=100.0),
                    WeightedQuery(RegionQuery(1, 0.9), weight=1.0)]
        layout = greedy_workload_layout(matrix, workload)
        assert layout.is_valid()
        # The hammered version's reconstruction must be cheap.
        assert layout.io_cost([3], matrix) <= 110
