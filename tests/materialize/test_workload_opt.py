"""Tests for workload-aware layouts (Section IV-D / IV-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError, WorkloadError
from repro.materialize import (
    Layout,
    MaterializationMatrix,
    RangeQuery,
    SnapshotQuery,
    WeightedQuery,
    exhaustive_optimal,
    greedy_workload_layout,
    head_biased_layout,
    optimal_layout,
    segmented_layout,
    workload_aware_layout,
    workload_cost,
)


def _chain_matrix(n=5, materialize=1000.0, near=10.0,
                  far_step=10.0) -> MaterializationMatrix:
    """Versions on a line: delta cost grows with version distance."""
    costs = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            costs[i, j] = materialize if i == j \
                else near + far_step * (abs(i - j) - 1)
    return MaterializationMatrix(versions=tuple(range(1, n + 1)),
                                 costs=costs)


class TestQueries:
    def test_snapshot_versions(self):
        assert SnapshotQuery(3).versions() == (3,)

    def test_range_versions(self):
        assert RangeQuery(2, 4).versions() == (2, 3, 4)

    def test_reversed_range_rejected(self):
        with pytest.raises(WorkloadError):
            RangeQuery(4, 2)

    def test_unknown_version_rejected(self):
        matrix = _chain_matrix(3)
        workload = [WeightedQuery(SnapshotQuery(99))]
        with pytest.raises(WorkloadError):
            workload_cost_check = greedy_workload_layout(matrix, workload)


class TestWorkloadCost:
    def test_weighted_sum(self):
        matrix = _chain_matrix(3)
        layout = Layout({1: None, 2: 1, 3: 2})
        workload = [
            WeightedQuery(SnapshotQuery(1), weight=2.0),
            WeightedQuery(SnapshotQuery(3), weight=1.0),
        ]
        v1 = layout.io_cost([1], matrix)
        v3 = layout.io_cost([3], matrix)
        assert workload_cost(layout, workload, matrix) == 2 * v1 + v3


class TestHeadBiased:
    def test_newest_materialized(self):
        matrix = _chain_matrix(6)
        layout = head_biased_layout(matrix)
        assert layout.parent_of[6] is None
        assert layout.is_valid()

    def test_head_queries_cheap(self):
        matrix = _chain_matrix(6)
        head = head_biased_layout(matrix)
        chain = Layout.linear_chain(matrix.versions)  # oldest materialized
        head_cost = head.io_cost([6], matrix)
        chain_cost = chain.io_cost([6], matrix)
        assert head_cost < chain_cost


class TestExhaustive:
    def test_single_version(self):
        matrix = _chain_matrix(1)
        layout = exhaustive_optimal(matrix,
                                    [WeightedQuery(SnapshotQuery(1))])
        assert layout.parent_of == {1: None}

    def test_materializes_hot_version(self):
        matrix = _chain_matrix(4)
        hot = [WeightedQuery(SnapshotQuery(3), weight=100.0),
               WeightedQuery(SnapshotQuery(1), weight=0.01)]
        layout = exhaustive_optimal(matrix, hot)
        # Version 3 dominates the workload: it must be a root.
        assert layout.parent_of[3] is None

    def test_respects_version_limit(self):
        matrix = _chain_matrix(9)
        with pytest.raises(ReproError):
            exhaustive_optimal(matrix, [WeightedQuery(SnapshotQuery(1))],
                               max_versions=7)

    def test_beats_or_matches_all_heuristics(self, rng):
        for _ in range(5):
            n = 5
            costs = rng.integers(1, 500, size=(n, n)).astype(float)
            costs = (costs + costs.T) / 2
            matrix = MaterializationMatrix(
                versions=tuple(range(1, n + 1)), costs=costs)
            workload = [
                WeightedQuery(SnapshotQuery(int(rng.integers(1, n + 1))),
                              weight=float(rng.integers(1, 10)))
                for _ in range(3)
            ] + [WeightedQuery(RangeQuery(1, 3), weight=2.0)]
            exact = workload_cost(
                exhaustive_optimal(matrix, workload), workload, matrix)
            for heuristic in (optimal_layout(matrix),
                              head_biased_layout(matrix),
                              segmented_layout(matrix, workload),
                              greedy_workload_layout(matrix, workload)):
                assert exact <= workload_cost(heuristic, workload,
                                              matrix) + 1e-6


class TestGreedy:
    def test_improves_on_space_optimal_for_skewed_workloads(self):
        matrix = _chain_matrix(8, materialize=100.0, near=30.0,
                               far_step=5.0)
        # Everything reads version 8; space optimum keeps long chains.
        workload = [WeightedQuery(SnapshotQuery(8), weight=10.0)]
        space = optimal_layout(matrix)
        tuned = greedy_workload_layout(matrix, workload, start=space)
        assert workload_cost(tuned, workload, matrix) <= \
            workload_cost(space, workload, matrix)
        assert tuned.parent_of[8] is None

    def test_result_valid(self):
        matrix = _chain_matrix(7)
        workload = [WeightedQuery(RangeQuery(2, 5)),
                    WeightedQuery(SnapshotQuery(7), weight=3.0)]
        layout = greedy_workload_layout(matrix, workload)
        assert layout.is_valid()


class TestSegmented:
    def test_overlapping_ranges_create_segments(self):
        matrix = _chain_matrix(10)
        # Two ranges overlapping on [4..6]: segments 1-3, 4-6, 7-10.
        workload = [WeightedQuery(RangeQuery(1, 6)),
                    WeightedQuery(RangeQuery(4, 10))]
        layout = segmented_layout(matrix, workload)
        assert layout.is_valid()
        # No closure may escape the union of the query's own versions
        # plus its segment roots — check query 1 never pulls version 10.
        assert 10 not in layout.closure(range(1, 7))

    def test_beats_space_optimal_on_disjoint_hot_ranges(self):
        # Far-apart versions delta expensively; two hot disjoint ranges.
        matrix = _chain_matrix(10, materialize=50.0, near=20.0,
                               far_step=15.0)
        workload = [WeightedQuery(RangeQuery(1, 3), weight=5.0),
                    WeightedQuery(RangeQuery(8, 10), weight=5.0)]
        segmented = segmented_layout(matrix, workload)
        space = optimal_layout(matrix)
        assert workload_cost(segmented, workload, matrix) <= \
            workload_cost(space, workload, matrix)


class TestFrontDoor:
    def test_small_goes_exact(self):
        matrix = _chain_matrix(4)
        workload = [WeightedQuery(SnapshotQuery(4), weight=5.0)]
        front = workload_aware_layout(matrix, workload)
        exact = exhaustive_optimal(matrix, workload)
        assert workload_cost(front, workload, matrix) == \
            pytest.approx(workload_cost(exact, workload, matrix))

    def test_large_returns_valid_competitive_layout(self):
        matrix = _chain_matrix(12)
        workload = [
            WeightedQuery(RangeQuery(1, 10), weight=1.0),
            WeightedQuery(RangeQuery(7, 12), weight=1.0),
            WeightedQuery(SnapshotQuery(12), weight=4.0),
        ]
        layout = workload_aware_layout(matrix, workload)
        assert layout.is_valid()
        baseline = Layout.linear_chain(matrix.versions)
        assert workload_cost(layout, workload, matrix) <= \
            workload_cost(baseline, workload, matrix)
