"""Round-trip and behaviour tests for all compression codecs (Table II set)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    IdentityCodec,
    JPEG2000LikeCodec,
    LZWCodec,
    LempelZivCodec,
    NullSuppressionCodec,
    PNGLikeCodec,
    RunLengthCodec,
    codec_names,
    get_codec,
    lz_bytes,
    unlz_bytes,
)
from repro.core.errors import CodecError

ALL_CODECS = [
    IdentityCodec(),
    RunLengthCodec(),
    NullSuppressionCodec(),
    LempelZivCodec(),
    LZWCodec(),
    PNGLikeCodec(),
    JPEG2000LikeCodec(),
]

DTYPES = [np.uint8, np.int16, np.int32, np.int64, np.float32, np.float64]


def _sample_array(dtype, shape, rng):
    if np.dtype(dtype).kind == "f":
        return rng.normal(0, 100, size=shape).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, size=shape,
                        endpoint=True).astype(dtype)


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestRoundTripAllCodecs:
    @pytest.mark.parametrize("dtype", DTYPES, ids=str)
    def test_random_2d(self, codec, dtype, rng):
        array = _sample_array(dtype, (13, 17), rng)
        out = codec.decode(codec.encode(array))
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert out.tobytes() == array.tobytes()

    def test_1d(self, codec, rng):
        array = _sample_array(np.int32, (101,), rng)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_3d(self, codec, rng):
        array = _sample_array(np.int16, (5, 7, 9), rng)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_constant_array(self, codec):
        array = np.full((20, 20), 42, dtype=np.int32)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_zeros(self, codec):
        array = np.zeros((16, 16), dtype=np.int64)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_single_cell(self, codec):
        array = np.array([[123.5]], dtype=np.float64)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_odd_extents(self, codec, rng):
        array = _sample_array(np.int32, (3, 5), rng)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_nan_and_inf_bit_exact(self, codec):
        array = np.array([[np.nan, np.inf], [-np.inf, -0.0]],
                         dtype=np.float64)
        out = codec.decode(codec.encode(array))
        assert out.tobytes() == array.tobytes()

    def test_smooth_field(self, codec, smooth_field):
        out = codec.decode(codec.encode(smooth_field))
        assert out.tobytes() == smooth_field.tobytes()


class TestCompressionEffectiveness:
    """Codecs must actually compress the data they were designed for."""

    def test_rle_crushes_runs(self):
        array = np.repeat(np.arange(10, dtype=np.int64), 1000)
        codec = RunLengthCodec()
        assert len(codec.encode(array)) < array.nbytes / 50

    def test_null_suppression_crushes_small_ints(self, rng):
        array = rng.integers(0, 100, size=5000).astype(np.int64)
        codec = NullSuppressionCodec()
        assert len(codec.encode(array)) < array.nbytes / 3

    def test_lz_crushes_repetitive_bytes(self):
        array = np.tile(np.arange(64, dtype=np.uint8), 512)
        codec = LempelZivCodec()
        assert len(codec.encode(array)) < array.nbytes / 20

    def test_lzw_crushes_repetitive_bytes(self):
        array = np.tile(np.arange(16, dtype=np.uint8), 256)
        codec = LZWCodec()
        assert len(codec.encode(array)) < array.nbytes / 2

    def test_png_beats_plain_lz_on_gradients(self):
        # Smooth gradients are exactly what the filters decorrelate.
        gradient = np.add.outer(np.arange(128), np.arange(128)) \
            .astype(np.uint8)
        png_size = len(PNGLikeCodec().encode(gradient))
        lz_size = len(LempelZivCodec().encode(gradient))
        assert png_size <= lz_size

    def test_wavelet_crushes_smooth_integers(self):
        x = np.linspace(0, 8 * np.pi, 256)
        smooth = (1000 * np.sin(x)[None, :] * np.sin(x)[:, None]) \
            .astype(np.int32)
        codec = JPEG2000LikeCodec()
        assert len(codec.encode(smooth)) < smooth.nbytes / 2


class TestLZWResets:
    def test_dictionary_reset_roundtrip(self, rng):
        # A small code budget forces repeated dictionary resets.
        codec = LZWCodec(max_code_bits=9)
        data = rng.integers(0, 256, size=4096).astype(np.uint8)
        out = codec.decode(codec.encode(data))
        assert out.tobytes() == data.tobytes()

    def test_invalid_code_bits(self):
        with pytest.raises(CodecError):
            LZWCodec(max_code_bits=5)


class TestRegistry:
    def test_names_present(self):
        names = codec_names()
        for expected in ("none", "rle", "lz", "png", "jpeg2000",
                         "null-suppression", "lzw"):
            assert expected in names

    def test_get_codec(self):
        assert get_codec("lz").name == "lz"

    def test_unknown_codec(self):
        with pytest.raises(CodecError):
            get_codec("brotli")


class TestByteHelpers:
    def test_lz_bytes_roundtrip(self):
        blob = b"versioned arrays" * 100
        assert unlz_bytes(lz_bytes(blob)) == blob

    def test_corrupt_stream_rejected(self):
        with pytest.raises(CodecError):
            unlz_bytes(b"not a zlib stream")


class TestCorruptionHandling:
    def test_rle_truncated(self, rng):
        codec = RunLengthCodec()
        data = codec.encode(rng.integers(0, 5, size=100).astype(np.int32))
        with pytest.raises(CodecError):
            codec.decode(data[:8])

    def test_lz_corrupt_payload(self, rng):
        codec = LempelZivCodec()
        data = bytearray(
            codec.encode(rng.integers(0, 5, size=100).astype(np.int32)))
        data[-10:] = b"\x00" * 10
        with pytest.raises(CodecError):
            codec.decode(bytes(data))

    def test_invalid_zlib_level(self):
        with pytest.raises(CodecError):
            LempelZivCodec(level=0)
        with pytest.raises(CodecError):
            PNGLikeCodec(level=10)

    def test_invalid_wavelet_levels(self):
        with pytest.raises(CodecError):
            JPEG2000LikeCodec(levels=0)


@settings(max_examples=25, deadline=None)
@given(data=st.data(),
       codec_name=st.sampled_from(["none", "rle", "lz", "png", "jpeg2000",
                                   "null-suppression"]))
def test_roundtrip_property(data, codec_name):
    codec = get_codec(codec_name)
    dtype = data.draw(st.sampled_from([np.uint8, np.int32, np.float64]))
    shape = data.draw(hnp.array_shapes(min_dims=1, max_dims=3, max_side=12))
    elements = (
        st.floats(allow_nan=False, width=64)
        if np.dtype(dtype).kind == "f"
        else st.integers(np.iinfo(dtype).min, np.iinfo(dtype).max)
    )
    array = data.draw(hnp.arrays(dtype, shape, elements=elements))
    out = codec.decode(codec.encode(array))
    assert out.tobytes() == array.tobytes()
    assert out.shape == array.shape
