"""Tests for adaptive LZ (Table IV's "future work" implemented)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import AdaptiveLZCodec, get_codec
from repro.core.errors import CodecError


class TestAdaptiveLZ:
    def test_registered(self):
        assert get_codec("adaptive-lz").name == "adaptive-lz"

    def test_small_payloads_stay_raw(self):
        codec = AdaptiveLZCodec(min_bytes=4096)
        array = np.zeros(100, dtype=np.int32)  # 400 B, compressible
        encoded = codec.encode(array)
        # Raw + header: no LZ despite perfect compressibility.
        assert len(encoded) >= array.nbytes
        assert codec.decode(encoded).tobytes() == array.tobytes()

    def test_compressible_large_payloads_get_lz(self):
        codec = AdaptiveLZCodec(min_bytes=1024)
        array = np.zeros(65536, dtype=np.int32)
        encoded = codec.encode(array)
        assert len(encoded) < array.nbytes / 50
        assert codec.decode(encoded).tobytes() == array.tobytes()

    def test_incompressible_large_payloads_stay_raw(self, rng):
        codec = AdaptiveLZCodec(min_bytes=1024)
        array = rng.integers(0, 2**62, size=8192).astype(np.uint64)
        encoded = codec.encode(array)
        # Within a few bytes of raw: LZ was predicted useless and skipped.
        assert len(encoded) <= array.nbytes + 64
        assert codec.decode(encoded).tobytes() == array.tobytes()

    def test_anticipated_ratio_bounds(self, rng):
        codec = AdaptiveLZCodec()
        assert codec.anticipated_ratio(b"") == 1.0
        compressible = bytes(10000)
        assert codec.anticipated_ratio(compressible) < 0.1
        random_bytes = rng.integers(0, 256, 10000).astype(np.uint8) \
            .tobytes()
        assert codec.anticipated_ratio(random_bytes) > 0.9

    def test_prediction_uses_prefix_only(self, rng):
        # A payload whose head is random but whose tail is zeros: the
        # prefix sample predicts poorly, so the codec stays raw — the
        # documented trade-off of sampling.
        codec = AdaptiveLZCodec(min_bytes=1024, sample_bytes=1024)
        head = rng.integers(0, 256, 1024).astype(np.uint8)
        tail = np.zeros(64 * 1024, dtype=np.uint8)
        array = np.concatenate([head, tail])
        encoded = codec.encode(array)
        assert codec.decode(encoded).tobytes() == array.tobytes()

    def test_roundtrip_dtypes(self, rng):
        codec = AdaptiveLZCodec(min_bytes=0)
        for dtype in (np.uint8, np.int32, np.float64):
            if np.dtype(dtype).kind == "f":
                array = rng.normal(0, 1, (32, 32)).astype(dtype)
            else:
                array = rng.integers(0, 100, (32, 32)).astype(dtype)
            out = codec.decode(codec.encode(array))
            assert out.tobytes() == array.tobytes()
            assert out.shape == array.shape

    def test_nan_inf_bit_exact(self):
        codec = AdaptiveLZCodec(min_bytes=0)
        array = np.array([np.nan, np.inf, -0.0] * 100, dtype=np.float64)
        assert codec.decode(codec.encode(array)).tobytes() == \
            array.tobytes()

    def test_invalid_parameters(self):
        with pytest.raises(CodecError):
            AdaptiveLZCodec(min_bytes=-1)
        with pytest.raises(CodecError):
            AdaptiveLZCodec(sample_bytes=0)
        with pytest.raises(CodecError):
            AdaptiveLZCodec(min_ratio=0)

    def test_corrupt_stream_rejected(self):
        codec = AdaptiveLZCodec(min_bytes=0)
        data = bytearray(codec.encode(np.zeros(65536, dtype=np.int64)))
        data[-8:] = b"\x01" * 8
        with pytest.raises(CodecError):
            codec.decode(bytes(data))

    def test_usable_as_manager_compressor(self, tmp_path, rng):
        from repro.core.schema import ArraySchema
        from repro.storage import VersionedStorageManager

        manager = VersionedStorageManager(
            tmp_path, chunk_bytes=64 * 1024, compressor="adaptive-lz",
            delta_policy="materialize")
        manager.create_array(
            "A", ArraySchema.simple((64, 64), dtype=np.int32))
        compressible = np.zeros((64, 64), dtype=np.int32)
        manager.insert("A", compressible)
        np.testing.assert_array_equal(
            manager.select("A", 1).single(), compressible)
        assert manager.stored_bytes("A") < compressible.nbytes / 10
