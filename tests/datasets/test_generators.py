"""Tests that the dataset simulators have the properties the paper relies on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    ConceptNetGenerator,
    conceptnet_series,
    noaa_series,
    osm_series,
    panorama_series,
    paper_n2_series,
    periodic_series,
)
from repro.delta import HybridDeltaCodec


def _delta_ratio(a: np.ndarray, b: np.ndarray) -> float:
    """Encoded delta bytes / raw bytes: small = similar versions."""
    return len(HybridDeltaCodec().encode(a, b)) / a.nbytes


class TestNOAA:
    def test_shapes_and_dtype(self):
        series = noaa_series(3, shape=(32, 48))
        assert set(series) == {"humidity", "pressure", "wind_speed"}
        for frames in series.values():
            assert len(frames) == 3
            assert frames[0].shape == (32, 48)
            assert frames[0].dtype == np.float32

    def test_deterministic(self):
        a = noaa_series(2, shape=(16, 16), seed=7)
        b = noaa_series(2, shape=(16, 16), seed=7)
        np.testing.assert_array_equal(a["humidity"][1], b["humidity"][1])

    def test_consecutive_frames_similar_but_not_identical(self):
        frames = noaa_series(4, shape=(64, 64))["humidity"]
        for previous, current in zip(frames, frames[1:]):
            assert not np.array_equal(previous, current)
            # Delta-compressible: similar, per Figure 4.
            assert _delta_ratio(current, previous) < 0.9

    def test_has_single_pixel_outliers(self):
        frames = noaa_series(2, shape=(64, 64))["humidity"]
        diff = np.abs(frames[1].astype(np.float64)
                      - frames[0].astype(np.float64))
        # A few cells change by far more than the median drift.
        assert np.max(diff) > 10 * (np.median(diff) + 1e-6)


class TestConceptNet:
    def test_snapshot_shape(self):
        snapshots = conceptnet_series(3, size=256, nnz=500)
        assert len(snapshots) == 3
        first = snapshots[0]
        assert first.nnz == 500
        assert first.coords.shape == (500, 2)
        assert first.values.dtype == np.int32
        assert (first.values > 0).all()

    def test_sparsity(self):
        snapshot = conceptnet_series(1, size=256, nnz=500)[0]
        dense = snapshot.to_dense()
        density = np.count_nonzero(dense) / dense.size
        assert density < 0.01

    def test_weekly_churn_is_small(self):
        snapshots = conceptnet_series(3, size=256, nnz=500)
        first = set(map(tuple, snapshots[0].coords))
        second = set(map(tuple, snapshots[1].coords))
        shared = len(first & second)
        assert shared > 0.9 * len(first)
        assert first != second

    def test_power_law_hubs(self):
        snapshot = conceptnet_series(1, size=1024, nnz=2000)[0]
        rows, counts = np.unique(snapshot.coords[:, 0],
                                 return_counts=True)
        # A hub node carries far more relations than the median node.
        assert counts.max() >= 5 * np.median(counts)

    def test_too_dense_rejected(self):
        with pytest.raises(ValueError):
            ConceptNetGenerator(size=10, nnz=100)


class TestOSM:
    def test_weekly_series(self):
        tiles = osm_series(4, shape=(128, 128))
        assert len(tiles) == 4
        assert tiles[0].dtype == np.uint8

    def test_mostly_background(self):
        tile = osm_series(1, shape=(128, 128))[0]
        background_fraction = np.mean(tile == 235)
        assert background_fraction > 0.5

    def test_extremely_delta_friendly(self):
        # "The OSM data generally differs less between consecutive
        # versions than the NOAA data."
        tiles = osm_series(3, shape=(128, 128))
        osm_ratio = _delta_ratio(tiles[1], tiles[0])
        noaa = noaa_series(2, shape=(128, 128))["humidity"]
        noaa_ratio = _delta_ratio(noaa[1], noaa[0])
        assert osm_ratio < noaa_ratio

    def test_versions_differ(self):
        tiles = osm_series(3, shape=(128, 128))
        assert not np.array_equal(tiles[0], tiles[1])


class TestPanorama:
    def test_periodicity(self):
        frames = panorama_series(16, shape=(64, 64), period=4)
        # Same phase one period apart: near identical.
        same_phase = _delta_ratio(frames[4], frames[0])
        adjacent = _delta_ratio(frames[1], frames[0])
        assert same_phase < adjacent / 2

    def test_adjacent_frames_differ_strongly(self):
        frames = panorama_series(4, shape=(64, 64), period=4)
        changed = np.mean(frames[0] != frames[1])
        assert changed > 0.3


class TestPeriodic:
    def test_exact_recurrence(self):
        versions = periodic_series(9, distinct=3, shape=(16, 16))
        np.testing.assert_array_equal(versions[0], versions[3])
        np.testing.assert_array_equal(versions[1], versions[7])
        assert not np.array_equal(versions[0], versions[1])

    def test_distinct_patterns_difference_badly(self):
        versions = periodic_series(4, distinct=2, shape=(32, 32))
        cross = _delta_ratio(versions[1], versions[0])
        recur = _delta_ratio(versions[2], versions[0])
        assert recur < 0.01
        assert cross > 0.8  # near-incompressible against each other

    def test_paper_configurations(self):
        n2 = paper_n2_series(total=6, shape=(8, 8))
        assert len(n2) == 6
        np.testing.assert_array_equal(n2[0], n2[3])  # period three
        assert not np.array_equal(n2[0], n2[1])

    def test_noise_cells(self):
        versions = periodic_series(4, distinct=2, shape=(16, 16),
                                   noise_cells=3)
        diff = versions[2] != versions[0]
        assert 0 < diff.sum() <= 6

    def test_invalid_distinct(self):
        with pytest.raises(ValueError):
            periodic_series(4, distinct=0)
