"""Tests for the SVN-like and Git-like comparison systems (Section V-C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GitLikeRepository,
    GitOutOfMemoryError,
    SvnLikeRepository,
    xdelta_decode,
    xdelta_encode,
)
from repro.core.errors import StorageError


class TestXDelta:
    def test_roundtrip_similar(self, rng):
        base = rng.integers(0, 255, 4096).astype(np.uint8).tobytes()
        target = bytearray(base)
        target[100:120] = b"x" * 20
        target = bytes(target)
        delta = xdelta_encode(target, base)
        assert xdelta_decode(delta, base) == target
        assert len(delta) < len(target) / 4

    def test_roundtrip_dissimilar(self, rng):
        base = rng.integers(0, 255, 1000).astype(np.uint8).tobytes()
        target = rng.integers(0, 255, 1000).astype(np.uint8).tobytes()
        delta = xdelta_encode(target, base)
        assert xdelta_decode(delta, base) == target

    def test_empty_inputs(self):
        assert xdelta_decode(xdelta_encode(b"", b""), b"") == b""
        assert xdelta_decode(xdelta_encode(b"abc", b""), b"") == b"abc"
        assert xdelta_decode(xdelta_encode(b"", b"abc"), b"abc") == b""

    def test_identical(self):
        data = b"0123456789abcdef" * 64
        delta = xdelta_encode(data, data)
        assert xdelta_decode(delta, data) == data
        assert len(delta) < 100

    @settings(max_examples=30, deadline=None)
    @given(base=st.binary(max_size=500), target=st.binary(max_size=500))
    def test_roundtrip_property(self, base, target):
        assert xdelta_decode(xdelta_encode(target, base), base) == target


def _versions(rng, count=5, size=4096):
    base = rng.integers(0, 255, size).astype(np.uint8)
    versions = [base.tobytes()]
    for _ in range(count - 1):
        follower = np.frombuffer(versions[-1], dtype=np.uint8).copy()
        cells = rng.choice(size, size=size // 100, replace=False)
        follower[cells] += 1
        versions.append(follower.tobytes())
    return versions


@pytest.mark.parametrize("factory", [SvnLikeRepository, GitLikeRepository],
                         ids=["svn", "git"])
class TestCommonBehaviour:
    def test_commit_read_roundtrip(self, factory, tmp_path, rng):
        repo = factory(tmp_path)
        versions = _versions(rng)
        for contents in versions:
            repo.commit({"matrix.dat": contents})
        for revision, expected in enumerate(versions, 1):
            assert repo.read("matrix.dat", revision) == expected

    def test_roundtrip_after_pack(self, factory, tmp_path, rng):
        repo = factory(tmp_path)
        versions = _versions(rng)
        for contents in versions:
            repo.commit({"matrix.dat": contents})
        repo.pack()
        for revision, expected in enumerate(versions, 1):
            assert repo.read("matrix.dat", revision) == expected

    def test_missing_revision(self, factory, tmp_path, rng):
        repo = factory(tmp_path)
        repo.commit({"matrix.dat": b"data" * 100})
        with pytest.raises(StorageError):
            repo.read("matrix.dat", 2)
        with pytest.raises(StorageError):
            repo.read("other.dat", 1)

    def test_multiple_files(self, factory, tmp_path, rng):
        repo = factory(tmp_path)
        repo.commit({"a.dat": b"A" * 1000, "b.dat": b"B" * 1000})
        repo.commit({"a.dat": b"A" * 999 + b"!"})
        assert repo.read("a.dat", 2).endswith(b"!")
        assert repo.read("b.dat", 1) == b"B" * 1000

    def test_subselect_reads_whole_version(self, factory, tmp_path, rng):
        # The array-obliviousness Table VI measures: no partial access.
        repo = factory(tmp_path)
        contents = _versions(rng, count=1)[0]
        repo.commit({"matrix.dat": contents})
        repo.stats.reset()
        window = repo.subselect("matrix.dat", 1, 100, 10)
        assert window == contents[100:110]
        assert repo.stats.bytes_read >= len(contents) / 2


class TestSvnSpecifics:
    def test_delta_chain_compresses(self, tmp_path, rng):
        repo = SvnLikeRepository(tmp_path)
        versions = _versions(rng, count=8)
        for contents in versions:
            repo.commit({"m.dat": contents})
        assert repo.data_size() < sum(len(v) for v in versions) / 2

    def test_large_files_stored_fulltext(self, tmp_path, rng):
        # The max_delta_bytes cutoff behind Table VI's 16 GB SVN row.
        repo = SvnLikeRepository(tmp_path, max_delta_bytes=1000)
        versions = _versions(rng, count=4, size=4096)
        for contents in versions:
            repo.commit({"m.dat": contents})
        total = sum(len(v) for v in versions)
        assert repo.data_size() >= total  # no compression at all

    def test_fulltext_anchors_bound_chains(self, tmp_path, rng):
        repo = SvnLikeRepository(tmp_path, fulltext_interval=4)
        versions = _versions(rng, count=9)
        for contents in versions:
            repo.commit({"m.dat": contents})
        assert repo.read("m.dat", 9) == versions[8]


class TestGitSpecifics:
    def test_identical_contents_deduplicated(self, tmp_path):
        repo = GitLikeRepository(tmp_path)
        blob = b"same-bytes" * 500
        repo.commit({"m.dat": blob})
        repo.commit({"m.dat": blob})  # content-addressed: same object
        assert len(list((tmp_path / "objects").rglob("*"))) <= 3

    def test_repack_shrinks_similar_history(self, tmp_path, rng):
        repo = GitLikeRepository(tmp_path)
        for contents in _versions(rng, count=10):
            repo.commit({"m.dat": contents})
        before = repo.data_size()
        repo.pack()
        after = repo.data_size()
        assert after < before

    def test_out_of_memory_on_large_objects(self, tmp_path, rng):
        # Table VI: "Git ran out of memory on our test machine."
        repo = GitLikeRepository(tmp_path, window=10,
                                 memory_limit_bytes=10_000)
        for contents in _versions(rng, count=4, size=8192):
            repo.commit({"m.dat": contents})
        with pytest.raises(GitOutOfMemoryError):
            repo.pack()

    def test_within_memory_budget_packs(self, tmp_path, rng):
        repo = GitLikeRepository(tmp_path, window=2,
                                 memory_limit_bytes=100_000_000)
        versions = _versions(rng, count=4)
        for contents in versions:
            repo.commit({"m.dat": contents})
        repo.pack()
        assert repo.read("m.dat", 4) == versions[3]

    def test_chain_depth_bounded(self, tmp_path, rng):
        repo = GitLikeRepository(tmp_path, window=3, max_chain_depth=2)
        versions = _versions(rng, count=12)
        for contents in versions:
            repo.commit({"m.dat": contents})
        repo.pack()
        for revision, expected in enumerate(versions, 1):
            assert repo.read("m.dat", revision) == expected
