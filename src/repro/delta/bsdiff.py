"""A BSDiff-style generic binary differ (Table I comparator).

Colin Percival's bsdiff ("Naive differences of executable code", the
paper's reference [6]) builds a suffix array over the old file, greedily
matches the new file against it, and emits three separately-compressed
streams: *control* (copy/insert lengths), *diff* (bytewise differences of
approximately-matching regions, which are near-zero and compress well),
and *extra* (unmatched literals).

This is a from-scratch reimplementation of that design:

* suffix array via the prefix-doubling algorithm, fully vectorized
  (O(n log^2 n));
* greedy longest-match scan with a minimum match length;
* control/diff/extra streams DEFLATE-compressed (the original uses
  bzip2; the stream structure is what matters).

As in the paper's Table I, the codec achieves the smallest sizes on many
inputs but is far slower than the array-aware deltas — it treats the
array as opaque bytes and cannot exploit cell structure.  It is
directional: the base cannot be recovered from the target.
"""

from __future__ import annotations

import numpy as np

from repro.compression.lz import lz_bytes, unlz_bytes
from repro.core import numeric
from repro.core.errors import CodecError
from repro.core.serial import pack_bytes, pack_i64, unpack_bytes, unpack_i64
from repro.delta.base import DeltaCodec

#: Matches shorter than this are treated as literals.
MIN_MATCH = 16


def suffix_array(data: np.ndarray) -> np.ndarray:
    """Suffix array of a uint8 sequence via prefix doubling."""
    n = len(data)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rank = data.astype(np.int64)
    sa = np.argsort(rank, kind="stable")
    k = 1
    while k < n:
        # Secondary key: the rank of the suffix k positions later
        # (-1 past the end, which sorts first).
        key2 = np.full(n, -1, dtype=np.int64)
        key2[:n - k] = rank[k:]
        sa = np.lexsort((key2, rank))
        r1 = rank[sa]
        r2 = key2[sa]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        changed[1:] = (r1[1:] != r1[:-1]) | (r2[1:] != r2[:-1])
        new_ranks = np.cumsum(changed)
        rank = np.empty(n, dtype=np.int64)
        rank[sa] = new_ranks
        if new_ranks[-1] == n - 1:
            break
        k *= 2
    return sa


class _Matcher:
    """Longest-match queries against a base byte string.

    Two-level search: an 8-byte big-endian prefix of every suffix (in
    suffix-array order the prefixes are sorted) lets ``np.searchsorted``
    reject positions with no 8-byte match in O(log n) C time — the
    common case on the mismatching stretches that dominate encode cost,
    and exact because MIN_MATCH exceeds 8.  Only when a prefix matches
    does the slower bytes-comparison binary search run, restricted to
    the tie range, and the surviving candidates' true lengths are
    extended with a zero-copy vectorized LCP.
    """

    window = 256

    def __init__(self, base: bytes):
        self.base = base
        self.base_view = np.frombuffer(base, dtype=np.uint8)
        self.sa = suffix_array(self.base_view)
        self.prefixes = _prefix8(self.base_view)[self.sa] \
            if len(base) else np.zeros(0, dtype=np.uint64)

    def prepare_target(self, target: bytes) -> None:
        """Precompute the target's per-position 8-byte prefixes."""
        self.target = target
        self.target_view = np.frombuffer(target, dtype=np.uint8)
        self.target_prefixes = _prefix8(self.target_view)

    def longest_match(self, scan: int) -> tuple[int, int]:
        """Longest base match for ``target[scan:]``; returns (pos, length)."""
        target = self.target
        target_view = self.target_view
        needle8 = self.target_prefixes[scan]
        lo = int(np.searchsorted(self.prefixes, needle8, side="left"))
        hi = int(np.searchsorted(self.prefixes, needle8, side="right"))
        if lo == hi:
            return 0, 0  # no 8-byte match anywhere: shorter than MIN_MATCH

        needle_key = target[scan:scan + self.window]
        while lo < hi:
            mid = (lo + hi) // 2
            pos = int(self.sa[mid])
            if self.base[pos:pos + self.window] < needle_key:
                lo = mid + 1
            else:
                hi = mid
        best_pos, best_len = 0, 0
        for index in (lo - 1, lo):
            if 0 <= index < len(self.sa):
                pos = int(self.sa[index])
                length = _lcp_arrays(target_view[scan:], self.base_view[pos:])
                if length > best_len:
                    best_pos, best_len = pos, length
        return best_pos, best_len


def _prefix8(view: np.ndarray) -> np.ndarray:
    """Big-endian uint64 of the first 8 bytes of every suffix (padded)."""
    padded = np.concatenate([view, np.zeros(8, dtype=np.uint8)])
    windows = np.lib.stride_tricks.sliding_window_view(padded, 8)[:len(view)]
    weights = (np.uint64(256) ** np.arange(7, -1, -1, dtype=np.uint64))
    return windows.astype(np.uint64) @ weights




def _lcp_arrays(a: np.ndarray, b: np.ndarray) -> int:
    """Common-prefix length of two uint8 arrays (zero-copy views)."""
    limit = min(len(a), len(b))
    if limit == 0:
        return 0
    mismatch = np.flatnonzero(a[:limit] != b[:limit])
    return int(mismatch[0]) if mismatch.size else limit


class BSDiffDeltaCodec(DeltaCodec):
    """Suffix-array binary differ with diff/extra/control streams."""

    name = "bsdiff"
    bidirectional = False

    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        numeric.check_same_layout(np.asarray(target), np.asarray(base))
        target = np.ascontiguousarray(target)
        base = np.ascontiguousarray(base)
        target_bytes = target.tobytes()
        base_bytes = base.tobytes()

        matcher = _Matcher(base_bytes)
        matcher.prepare_target(target_bytes)
        control: list[tuple[int, int, int]] = []  # (copy_pos, copy_len, lit_len)
        diff = bytearray()
        extra = bytearray()

        scan = 0
        literal_start = 0
        n = len(target_bytes)
        while scan < n:
            pos, length = matcher.longest_match(scan)
            if length >= MIN_MATCH:
                literal = target_bytes[literal_start:scan]
                extra.extend(literal)
                control.append((pos, length, len(literal)))
                matched_new = np.frombuffer(
                    target_bytes, dtype=np.uint8, count=length, offset=scan)
                matched_old = np.frombuffer(
                    base_bytes, dtype=np.uint8, count=length, offset=pos)
                diff.extend((matched_new - matched_old).tobytes())
                scan += length
                literal_start = scan
            else:
                scan += 1
        extra.extend(target_bytes[literal_start:])
        control.append((0, 0, n - literal_start))

        control_bytes = b"".join(
            pack_i64(a) + pack_i64(b) + pack_i64(c) for a, b, c in control)
        mode = numeric.delta_mode_for(target.dtype)
        return b"".join([
            self._frame(target, mode),
            pack_bytes(lz_bytes(control_bytes)),
            pack_bytes(lz_bytes(bytes(diff))),
            pack_bytes(lz_bytes(bytes(extra))),
        ])

    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        dtype, shape, _mode, offset = self._unframe(data)
        control_blob, offset = unpack_bytes(data, offset)
        diff_blob, offset = unpack_bytes(data, offset)
        extra_blob, offset = unpack_bytes(data, offset)
        control_bytes = unlz_bytes(control_blob)
        diff = unlz_bytes(diff_blob)
        extra = unlz_bytes(extra_blob)
        base_bytes = np.ascontiguousarray(base).tobytes()

        output = bytearray()
        diff_at = 0
        extra_at = 0
        position = 0
        while position < len(control_bytes):
            copy_pos, position = unpack_i64(control_bytes, position)
            copy_len, position = unpack_i64(control_bytes, position)
            literal_len, position = unpack_i64(control_bytes, position)
            output.extend(extra[extra_at:extra_at + literal_len])
            extra_at += literal_len
            if copy_len:
                old = np.frombuffer(base_bytes, dtype=np.uint8,
                                    count=copy_len, offset=copy_pos)
                delta = np.frombuffer(diff, dtype=np.uint8,
                                      count=copy_len, offset=diff_at)
                output.extend((old + delta).tobytes())
                diff_at += copy_len
        count = int(np.prod(shape)) if shape else 1
        expected = count * np.dtype(dtype).itemsize
        if len(output) != expected:
            raise CodecError(
                f"bsdiff output is {len(output)} bytes, expected {expected}")
        flat = np.frombuffer(bytes(output), dtype=dtype, count=count)
        return flat.reshape(shape).copy()
