"""Delta codec interface.

A delta codec encodes a *target* version as a difference against a *base*
version of identical shape and dtype (Section III-B.3).  Codecs that set
``bidirectional = True`` can reconstruct either endpoint from the other —
the property Observation 2's cycle analysis relies on ("our system can
reconstruct the versions in both directions, by adding or subtracting the
delta").  The MPEG-2-like and BSDiff codecs are inherently directional.

Framing shared by all codecs::

    array header (dtype, shape)     - of the target/base arrays
    u8 delta mode                   - arithmetic (ints) or XOR (floats)
    codec-specific payload
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core import numeric
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_u8,
    unpack_array_header,
    unpack_u8,
)

_MODE_TO_TAG = {numeric.ARITHMETIC: 0, numeric.XOR: 1}
_TAG_TO_MODE = {tag: mode for mode, tag in _MODE_TO_TAG.items()}


class DeltaCodec(ABC):
    """Encodes one array version as a delta against another."""

    #: Registry key and the name recorded in version metadata.
    name: str = "abstract"
    #: Whether decode_backward is supported.
    bidirectional: bool = True
    #: Whether this codec's deltas compose associatively — a chain of
    #: such deltas can be folded into one accumulator and applied to
    #: the root once (the fused read path).  Codecs that transform the
    #: base rather than difference against it (bsdiff, mpeg-like) stay
    #: False and decode level-by-level.
    composable: bool = False
    #: Whether :meth:`accumulate` folds at O(nnz) via scatter rather
    #: than a full dense pass (sparse/hybrid; observability only).
    scatters: bool = False
    #: Whether :meth:`plan_size` and :meth:`encode_from_plan` consume
    #: only the plan's shared arrays (target, codes, stats, mode) and
    #: never ``plan.base``.  Plans built by delta-of-delta re-base
    #: carry no base canvas at all, so only plan-sufficient codecs may
    #: be offered one.
    plan_sufficient: bool = False

    # ------------------------------------------------------------------
    # Framing helpers shared by implementations
    # ------------------------------------------------------------------
    @staticmethod
    def _frame(target: np.ndarray, mode: str) -> bytes:
        return (pack_array_header(target.dtype, target.shape)
                + pack_u8(_MODE_TO_TAG[mode]))

    @staticmethod
    def _frame_size(target: np.ndarray) -> int:
        """Byte length of :meth:`_frame` without building it:
        dtype string length byte + dtype string + ndim byte + extents
        + the delta mode byte."""
        dtype_len = len(np.dtype(target.dtype).str)
        return 1 + dtype_len + 1 + 8 * target.ndim + 1

    @staticmethod
    def _unframe(data: bytes) -> tuple[np.dtype, tuple[int, ...], str, int]:
        dtype, shape, offset = unpack_array_header(data)
        tag, offset = unpack_u8(data, offset)
        if tag not in _TAG_TO_MODE:
            raise CodecError(f"unknown delta mode tag {tag}")
        return dtype, shape, _TAG_TO_MODE[tag], offset

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        """Encode ``target`` as a delta against ``base``."""

    def encode_parts(self, target: np.ndarray,
                     base: np.ndarray) -> list[bytes]:
        """The encoded delta as a list of buffers.

        Joining the parts yields exactly :meth:`encode`'s byte string.
        The write pipeline carries the parts form so the final payload
        is joined once, at placement, instead of once per stage; codecs
        whose encoders naturally produce sections override this —
        the default materializes via :meth:`encode`.
        """
        return [self.encode(target, base)]

    @abstractmethod
    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        """Reconstruct the target given the base it was encoded against."""

    def decode_backward(self, data: bytes, target: np.ndarray) -> np.ndarray:
        """Reconstruct the base given the target (bidirectional codecs)."""
        raise CodecError(
            f"delta codec {self.name!r} is directional; "
            "the base cannot be reconstructed from the target")

    def accumulate(self, data: bytes, accumulator: np.ndarray | None,
                   batch: list | None = None
                   ) -> tuple[np.ndarray, str, np.dtype, tuple[int, ...]]:
        """Fold this delta's codes into a fused-chain accumulator.

        Returns ``(accumulator, mode, dtype, shape)``; ``None`` starts
        a fresh accumulator.  Only meaningful for ``composable``
        codecs — the decode pipeline calls it once per level and
        applies the folded delta to the materialized root in a single
        pass.  Scattering codecs append their (positions, delta)
        pairs to ``batch`` instead of scattering when it is given, so
        the pipeline can issue one batched scatter per chain.
        """
        raise CodecError(
            f"delta codec {self.name!r} does not compose; "
            "decode level-by-level instead")

    def encoded_size(self, target: np.ndarray, base: np.ndarray) -> int:
        """Exact encoded size; codecs may override with a cheaper estimate."""
        return len(self.encode(target, base))

    # ------------------------------------------------------------------
    # Planner integration (single-pass encode selection)
    # ------------------------------------------------------------------
    def plan_size(self, plan: "CodePlan") -> int | None:
        """Exact encoded size derived from a shared :class:`CodePlan`.

        The single-pass planner sizes every candidate from one delta /
        code-array / width-histogram computation and encodes only the
        winner.  Codecs whose size is a pure function of the plan's
        statistics return it here *without encoding anything*; ``None``
        means the size is data dependent beyond the statistics (LZ
        stages, transform codecs) and the planner must fall back to
        encoding this candidate to learn its size.
        """
        return None

    def encode_from_plan(self, plan: "CodePlan") -> list[bytes]:
        """Encode using the plan's precomputed delta, codes and stats.

        Must emit exactly the bytes :meth:`encode_parts` would for the
        plan's ``(target, base)`` pair — the planner's hard invariant
        is byte identity with the two-pass path.  The default recomputes
        from the arrays; code-array codecs override to reuse the shared
        work.
        """
        return self.encode_parts(plan.target, plan.base)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
