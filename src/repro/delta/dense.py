"""The "dense" delta method of Table I.

"The 'dense' method reduces the number of bytes used to store the array
as much as possible without losing data, under the assumption that each
difference value will tend to be small": every cell's delta code is
stored at the single minimal bit width D.
"""

from __future__ import annotations

import numpy as np

from repro.core import numeric
from repro.delta import codes as code_store
from repro.delta.base import DeltaCodec


class DenseDeltaCodec(DeltaCodec):
    """Uniform minimal-width bit-packed cellwise delta."""

    name = "dense"
    bidirectional = True

    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        return self._frame(target, mode) + code_store.encode_dense(codes)

    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        dtype, shape, mode, offset = self._unframe(data)
        count = int(np.prod(shape)) if shape else 1
        codes, _ = code_store.decode_dense(data, offset, count)
        delta = code_store.codes_to_delta(codes, mode).reshape(shape)
        return numeric.apply_delta_forward(base, delta, mode, dtype)

    def decode_backward(self, data: bytes, target: np.ndarray) -> np.ndarray:
        dtype, shape, mode, offset = self._unframe(data)
        count = int(np.prod(shape)) if shape else 1
        codes, _ = code_store.decode_dense(data, offset, count)
        delta = code_store.codes_to_delta(codes, mode).reshape(shape)
        return numeric.apply_delta_backward(target, delta, mode, dtype)

    def encoded_size(self, target: np.ndarray, base: np.ndarray) -> int:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        return self._header_size(target) + code_store.dense_size(codes)

    @staticmethod
    def _header_size(target: np.ndarray) -> int:
        # dtype string length byte + dtype string + ndim byte + extents
        dtype_len = len(np.dtype(target.dtype).str)
        return 1 + dtype_len + 1 + 8 * target.ndim + 1
