"""The "dense" delta method of Table I.

"The 'dense' method reduces the number of bytes used to store the array
as much as possible without losing data, under the assumption that each
difference value will tend to be small": every cell's delta code is
stored at the single minimal bit width D.
"""

from __future__ import annotations

import numpy as np

from repro.core import numeric
from repro.core.errors import CodecError
from repro.delta import codes as code_store
from repro.delta.base import DeltaCodec


class DenseDeltaCodec(DeltaCodec):
    """Uniform minimal-width bit-packed cellwise delta."""

    name = "dense"
    bidirectional = True
    composable = True
    plan_sufficient = True

    def encode_parts(self, target: np.ndarray,
                     base: np.ndarray) -> list[bytes]:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        return [self._frame(target, mode),
                *code_store.encode_dense_parts(codes)]

    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        return b"".join(self.encode_parts(target, base))

    def _decode_codes(self, data) -> tuple[np.ndarray, str, np.dtype,
                                           tuple[int, ...]]:
        data = memoryview(data)
        dtype, shape, mode, offset = self._unframe(data)
        count = int(np.prod(shape)) if shape else 1
        codes, end = code_store.decode_dense(data, offset, count)
        if end != len(data):
            raise CodecError(
                f"dense delta payload has {len(data) - end} undecoded "
                "trailing bytes")
        return codes, mode, dtype, shape

    def accumulate(self, data, accumulator, batch=None):
        data = memoryview(data)
        dtype, shape, mode, offset = self._unframe(data)
        count = int(np.prod(shape)) if shape else 1
        accumulator = code_store.ensure_accumulator(accumulator, mode,
                                                    count)
        end = code_store.decode_dense_into(data, offset, count,
                                           accumulator, mode)
        if end != len(data):
            raise CodecError(
                f"dense delta payload has {len(data) - end} undecoded "
                "trailing bytes")
        return accumulator, mode, dtype, shape

    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        codes, mode, dtype, shape = self._decode_codes(data)
        delta = code_store.codes_to_delta(codes, mode).reshape(shape)
        return numeric.apply_delta_forward(base, delta, mode, dtype)

    def decode_backward(self, data: bytes, target: np.ndarray) -> np.ndarray:
        codes, mode, dtype, shape = self._decode_codes(data)
        delta = code_store.codes_to_delta(codes, mode).reshape(shape)
        return numeric.apply_delta_backward(target, delta, mode, dtype)

    def encoded_size(self, target: np.ndarray, base: np.ndarray) -> int:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        return self._header_size(target) + code_store.dense_size(codes)

    def plan_size(self, plan) -> int:
        return self._frame_size(plan.target) + \
            code_store.dense_size(plan.codes, plan.stats)

    def encode_from_plan(self, plan) -> list[bytes]:
        return [self._frame(plan.target, plan.mode),
                *code_store.encode_dense_parts(plan.codes, plan.stats)]

    # Alias kept for existing callers; the framing math lives on the
    # base class so every codec prices the shared header identically.
    _header_size = staticmethod(DeltaCodec._frame_size)
