"""Delta codec registry keyed by the name stored in version metadata."""

from __future__ import annotations

from typing import Callable

from repro.core.errors import CodecError
from repro.delta.base import DeltaCodec
from repro.delta.bsdiff import BSDiffDeltaCodec
from repro.delta.dense import DenseDeltaCodec
from repro.delta.hybrid import HybridDeltaCodec
from repro.delta.mpeg_like import MPEGLikeDeltaCodec
from repro.delta.sparse import SparseDeltaCodec

_FACTORIES: dict[str, Callable[[], DeltaCodec]] = {}


def register_delta_codec(name: str,
                         factory: Callable[[], DeltaCodec]) -> None:
    """Register (or replace) a delta codec factory under ``name``."""
    _FACTORIES[name] = factory


def delta_codec_names() -> tuple[str, ...]:
    """All registered delta codec names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_delta_codec(name: str) -> DeltaCodec:
    """Instantiate the delta codec registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CodecError(
            f"unknown delta codec {name!r}; "
            f"registered: {delta_codec_names()}") from None
    return factory()


register_delta_codec(DenseDeltaCodec.name, DenseDeltaCodec)
register_delta_codec(SparseDeltaCodec.name, SparseDeltaCodec)
register_delta_codec(HybridDeltaCodec.name, HybridDeltaCodec)
register_delta_codec("hybrid+lz", lambda: HybridDeltaCodec(lz=True))
register_delta_codec(MPEGLikeDeltaCodec.name, MPEGLikeDeltaCodec)
register_delta_codec(BSDiffDeltaCodec.name, BSDiffDeltaCodec)
