"""The "MPEG-2-like matcher" of Table I: block motion compensation.

"The MPEG-2-like matcher is built on top of hybrid compression, but the
target array is broken up into 16x16 chunks and each chunk is compared to
every possible region in a 16-cell radius around its origin, in case the
image has shifted in one direction."

Per 16x16 block the codec searches a (2r+1)^2 offset window for the
translation of the base that minimizes the residual magnitude, stores one
motion vector per block, and hybrid-encodes the residual.  As in the
paper, the search cost is proportional to the window area — the Table I
experiment reproduces the matcher being orders of magnitude slower than
the plain hybrid delta.

Arrays of dimensionality other than 2 are folded to 2-D (first dimension
by the rest) before matching; this preserves correctness for any shape.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitpack, numeric
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_i64,
    unpack_i64,
)
from repro.delta import codes as code_store
from repro.delta.base import DeltaCodec


class MPEGLikeDeltaCodec(DeltaCodec):
    """Block-matching motion-compensated delta (directional)."""

    name = "mpeg-like"
    bidirectional = False

    def __init__(self, block: int = 16, radius: int = 16):
        if block < 1:
            raise CodecError("block size must be >= 1")
        if radius < 0:
            raise CodecError("search radius must be >= 0")
        self.block = block
        self.radius = radius

    # ------------------------------------------------------------------
    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        numeric.check_same_layout(np.asarray(target), np.asarray(base))
        mode = numeric.delta_mode_for(target.dtype)
        target2d = _fold_2d(np.ascontiguousarray(target))
        base2d = _fold_2d(np.ascontiguousarray(base))

        rows, cols = target2d.shape
        row_starts = np.arange(0, rows, self.block)
        col_starts = np.arange(0, cols, self.block)
        grid_shape = (len(row_starts), len(col_starts))

        best_cost = np.full(grid_shape, np.inf)
        best_dy = np.zeros(grid_shape, dtype=np.int64)
        best_dx = np.zeros(grid_shape, dtype=np.int64)

        for dy in range(-self.radius, self.radius + 1):
            for dx in range(-self.radius, self.radius + 1):
                shifted = np.roll(base2d, shift=(dy, dx), axis=(0, 1))
                delta, _ = numeric.compute_delta(target2d, shifted)
                codes = code_store.delta_to_codes(delta, mode) \
                    .reshape(rows, cols)
                # Residual cost ~ total bits: log2(code + 1) per cell.
                cell_cost = np.log2(codes.astype(np.float64) + 1.0)
                block_cost = np.add.reduceat(
                    np.add.reduceat(cell_cost, row_starts, axis=0),
                    col_starts, axis=1)
                better = block_cost < best_cost
                best_cost = np.where(better, block_cost, best_cost)
                best_dy = np.where(better, dy, best_dy)
                best_dx = np.where(better, dx, best_dx)

        predicted = _predict(base2d, best_dy, best_dx, self.block)
        residual, _ = numeric.compute_delta(target2d, predicted)
        residual_codes = code_store.delta_to_codes(residual, mode)

        mv_bits = bitpack.required_bits(2 * self.radius)
        dy_codes = (best_dy + self.radius).astype(np.uint64).ravel()
        dx_codes = (best_dx + self.radius).astype(np.uint64).ravel()
        return b"".join([
            self._frame(np.asarray(target), mode),
            pack_i64(self.block),
            pack_i64(self.radius),
            bitpack.pack_unsigned(dy_codes, mv_bits),
            bitpack.pack_unsigned(dx_codes, mv_bits),
            code_store.encode_hybrid(residual_codes),
        ])

    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        dtype, shape, mode, offset = self._unframe(data)
        block, offset = unpack_i64(data, offset)
        radius, offset = unpack_i64(data, offset)
        base2d = _fold_2d(np.ascontiguousarray(base))
        rows, cols = base2d.shape
        grid_shape = (len(range(0, rows, block)), len(range(0, cols, block)))
        grid_cells = grid_shape[0] * grid_shape[1]

        mv_bits = bitpack.required_bits(2 * radius)
        mv_len = bitpack.packed_size(grid_cells, mv_bits)
        dy = bitpack.unpack_unsigned(
            data[offset:offset + mv_len], mv_bits, grid_cells) \
            .astype(np.int64).reshape(grid_shape) - radius
        offset += mv_len
        dx = bitpack.unpack_unsigned(
            data[offset:offset + mv_len], mv_bits, grid_cells) \
            .astype(np.int64).reshape(grid_shape) - radius
        offset += mv_len

        predicted = _predict(base2d, dy, dx, block)
        count = int(np.prod(shape)) if shape else 1
        residual_codes, _ = code_store.decode_hybrid(data, offset, count)
        residual = code_store.codes_to_delta(residual_codes, mode) \
            .reshape(predicted.shape)
        target2d = numeric.apply_delta_forward(predicted, residual, mode,
                                               dtype)
        return target2d.reshape(shape)


def _fold_2d(array: np.ndarray) -> np.ndarray:
    """View an array as 2-D: (first extent, everything else)."""
    if array.ndim == 2:
        return array
    if array.ndim == 1:
        return array.reshape(1, -1)
    return array.reshape(array.shape[0], -1)


def _predict(base2d: np.ndarray, dy: np.ndarray, dx: np.ndarray,
             block: int) -> np.ndarray:
    """Assemble the motion-compensated prediction block by block.

    Rolls of the base are cached per distinct offset so the cost is
    proportional to the number of *distinct* motion vectors, not blocks.
    """
    rows, cols = base2d.shape
    predicted = np.empty_like(base2d)
    rolls: dict[tuple[int, int], np.ndarray] = {}
    grid_rows, grid_cols = dy.shape
    for bi in range(grid_rows):
        for bj in range(grid_cols):
            offset = (int(dy[bi, bj]), int(dx[bi, bj]))
            if offset not in rolls:
                rolls[offset] = np.roll(base2d, shift=offset, axis=(0, 1))
            r0, r1 = bi * block, min((bi + 1) * block, rows)
            c0, c1 = bj * block, min((bj + 1) * block, cols)
            predicted[r0:r1, c0:c1] = rolls[offset][r0:r1, c0:c1]
    return predicted
