"""Shared encodings of delta *code arrays*.

Every delta codec in this package first reduces the cell-wise difference
of two versions to a flat array of unsigned 64-bit *codes* (arithmetic
deltas are zigzag-mapped so small signed differences become small codes;
float XOR deltas are already unsigned).  The three storage strategies of
Section III-B.3 then apply to the code array:

* **dense** — every code at the minimal uniform width D;
* **sparse** — positions and values of the nonzero codes only;
* **hybrid** — "if more than a fraction F of cells can be encoded using
  D' > D bits per cell, we create a separate matrix and store cells that
  require D' bits separately": a D-bit dense array for the small codes
  plus a sparse outlier table, with D chosen by exact cost minimization.

Each strategy has an encoder, a decoder, and a *size estimator* that
predicts the encoded byte count without materializing it — the estimators
feed the Materialization Matrix (Section IV-A).

The encoders come in two forms: ``encode_*`` returns one joined byte
string, and ``encode_*_parts`` returns the list of buffers that byte
string is made of (headers and packed sections).  The parts form is the
zero-copy handoff the write pipeline uses — the delta codecs prepend
their framing parts and the chunk store joins the final payload exactly
once at placement, so encoded sections are never recopied between
stages.  The decoders accept any buffer-protocol object and slice it
through ``memoryview`` (no ``bytes()`` copies on the read path).
"""

from __future__ import annotations

import numpy as np

from repro.core import bitpack, numeric
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_i64,
    pack_u8,
    unpack_i64,
    unpack_u8,
)


def delta_to_codes(delta: np.ndarray, mode: str) -> np.ndarray:
    """Map a raw delta array onto unsigned codes."""
    if mode == numeric.ARITHMETIC:
        return bitpack.zigzag_encode(delta.ravel())
    if mode == numeric.XOR:
        return np.ascontiguousarray(delta, dtype=np.uint64).ravel()
    raise CodecError(f"unknown delta mode {mode!r}")


def codes_to_delta(codes: np.ndarray, mode: str) -> np.ndarray:
    """Inverse of :func:`delta_to_codes` (still flat)."""
    if mode == numeric.ARITHMETIC:
        return bitpack.zigzag_decode(codes)
    if mode == numeric.XOR:
        return np.ascontiguousarray(codes, dtype=np.uint64)
    raise CodecError(f"unknown delta mode {mode!r}")


def _view(data) -> memoryview:
    """``data`` as a memoryview so slicing never copies bytes."""
    return data if isinstance(data, memoryview) else memoryview(data)


# ----------------------------------------------------------------------
# Dense strategy
# ----------------------------------------------------------------------
def dense_size(codes: np.ndarray) -> int:
    """Encoded bytes of the dense strategy (1-byte width header)."""
    bits = bitpack.required_bits_for(codes)
    return 1 + bitpack.packed_size(codes.size, bits)


def encode_dense_parts(codes: np.ndarray) -> list[bytes]:
    """Dense D-bit encoding as its constituent buffers."""
    bits = bitpack.required_bits_for(codes)
    return [pack_u8(bits), bitpack.pack_unsigned(codes, bits)]


def encode_dense(codes: np.ndarray) -> bytes:
    """Dense D-bit encoding: ``u8 bits`` + packed codes."""
    return b"".join(encode_dense_parts(codes))


def decode_dense(data, offset: int, count: int
                 ) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_dense`; returns ``(codes, next_offset)``."""
    data = _view(data)
    bits, offset = unpack_u8(data, offset)
    packed_len = bitpack.packed_size(count, bits)
    codes = bitpack.unpack_unsigned(
        data[offset:offset + packed_len], bits, count)
    return codes, offset + packed_len


def decode_dense_into(data, offset: int, count: int,
                      accumulator: np.ndarray, mode: str) -> int:
    """Fold a dense section into a fused-chain accumulator.

    The fused read path's counterpart of :func:`decode_dense`: the
    decoded level delta is added/xored into ``accumulator`` via the
    ``out=`` kernels instead of materializing an intermediate version.
    Returns the next offset.
    """
    codes, offset = decode_dense(data, offset, count)
    numeric.accumulate_delta(accumulator, codes_to_delta(codes, mode),
                             mode)
    return offset


def ensure_accumulator(accumulator: np.ndarray | None, mode: str,
                       count: int) -> np.ndarray:
    """A fused-chain accumulator matching ``(mode, count)``.

    Allocates on first use; on reuse verifies the chain is uniform —
    every level of one chunk's chain must share the delta mode and
    cell count (the dtype is fixed per attribute), so a mismatch means
    a corrupt chain rather than a composable one.
    """
    if accumulator is None:
        return numeric.delta_accumulator(mode, count)
    if accumulator.dtype != numeric.accumulator_dtype(mode) or \
            accumulator.size != count:
        raise CodecError(
            "fused chain mixes delta modes or cell counts across levels")
    return accumulator


# ----------------------------------------------------------------------
# Sparse strategy
# ----------------------------------------------------------------------
def sparse_size(codes: np.ndarray) -> int:
    """Encoded bytes of the sparse strategy without materializing it.

    Codes are unsigned, so when any is nonzero the array maximum *is*
    the nonzero maximum — no re-masking pass over the array.
    """
    nonzero = int(np.count_nonzero(codes))
    position_bits = bitpack.required_bits(max(0, codes.size - 1))
    value_bits = bitpack.required_bits(int(codes.max())) if nonzero else 0
    return (8 + 1 + 1
            + bitpack.packed_size(nonzero, position_bits)
            + bitpack.packed_size(nonzero, value_bits))


def encode_sparse_parts(codes: np.ndarray) -> list[bytes]:
    """Sparse encoding as its constituent buffers.

    One :func:`np.flatnonzero` pass yields the positions, which gather
    the values directly (no uint64/int64 index round trip).
    """
    positions = np.flatnonzero(codes)
    values = codes[positions]
    position_bits = bitpack.required_bits(max(0, codes.size - 1))
    value_bits = bitpack.required_bits_for(values)
    return [
        pack_i64(len(positions)),
        pack_u8(position_bits),
        pack_u8(value_bits),
        bitpack.pack_unsigned(positions, position_bits),
        bitpack.pack_unsigned(values, value_bits),
    ]


def encode_sparse(codes: np.ndarray) -> bytes:
    """Sparse encoding: nonzero (position, code) pairs, both bit-packed."""
    return b"".join(encode_sparse_parts(codes))


def decode_sparse(data, offset: int, count: int
                  ) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_sparse`."""
    data = _view(data)
    nonzero, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(nonzero, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, nonzero)
    offset += positions_len
    values_len = bitpack.packed_size(nonzero, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, nonzero)
    offset += values_len
    codes = np.zeros(count, dtype=np.uint64)
    index = positions.astype(np.int64)
    if index.size and (index.max() >= count or index.min() < 0):
        raise CodecError("sparse delta position out of range")
    codes[index] = values
    return codes, offset


def decode_sparse_into(data, offset: int, count: int,
                       accumulator: np.ndarray, mode: str) -> int:
    """Fold a sparse section into a fused-chain accumulator.

    The fused read path's replacement for :func:`decode_sparse`: the
    ``(positions, values)`` pairs scatter-accumulate straight into
    ``accumulator`` — no full-size ``codes`` canvas is ever allocated,
    so a level that changed n cells costs O(n), not O(count).  Returns
    the next offset.
    """
    data = _view(data)
    nonzero, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(nonzero, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, nonzero)
    offset += positions_len
    values_len = bitpack.packed_size(nonzero, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, nonzero)
    offset += values_len
    index = positions.astype(np.int64)
    if index.size and (index.max() >= count or index.min() < 0):
        raise CodecError("sparse delta position out of range")
    if index.size:
        numeric.scatter_delta(accumulator, index,
                              codes_to_delta(values, mode), mode)
    return offset


# ----------------------------------------------------------------------
# Hybrid strategy
# ----------------------------------------------------------------------
def _split_costs(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Cost of the hybrid encoding for every candidate small-width d.

    Returns ``(candidate_widths, costs, value_bits)`` where ``costs[k]``
    is the total byte cost of storing codes < 2**widths[k] densely at
    widths[k] bits and the rest as sparse outliers.
    """
    n = codes.size
    max_bits = bitpack.required_bits_for(codes)
    widths = np.arange(max_bits + 1)
    if n == 0:
        return widths, np.zeros(len(widths)), 0

    sorted_codes = np.sort(codes)
    position_bits = bitpack.required_bits(max(0, n - 1))
    value_bits = max_bits
    # outliers(d) = number of codes >= 2**d  (d = max_bits -> none).
    thresholds = np.minimum(np.uint64(1) << widths.astype(np.uint64),
                            np.uint64(np.iinfo(np.uint64).max))
    below = np.searchsorted(sorted_codes, thresholds, side="left")
    outliers = n - below
    dense_bytes = (n * widths + 7) // 8
    outlier_bytes = ((outliers * position_bits + 7) // 8
                     + (outliers * value_bits + 7) // 8)
    overhead = 8 + 1 + 1 + 1  # count + small width + pos/val widths
    costs = dense_bytes + outlier_bytes + overhead
    return widths, costs, value_bits


def hybrid_size(codes: np.ndarray) -> int:
    """Encoded bytes of the optimal hybrid split (estimator)."""
    widths, costs, _ = _split_costs(codes)
    if codes.size == 0:
        return 11
    return int(costs.min())


def hybrid_split_width(codes: np.ndarray) -> int:
    """The small-code bit width the optimal hybrid split uses."""
    widths, costs, _ = _split_costs(codes)
    return int(widths[int(np.argmin(costs))])


def encode_hybrid_parts(codes: np.ndarray) -> list[bytes]:
    """Optimal small/large split encoding as its constituent buffers."""
    n = codes.size
    widths, costs, value_bits = _split_costs(codes)
    small_bits = int(widths[int(np.argmin(costs))]) if n else 0

    if n:
        threshold = (np.uint64(1) << np.uint64(small_bits)) \
            if small_bits < 64 else np.uint64(np.iinfo(np.uint64).max)
        is_outlier = codes >= threshold if small_bits < 64 else \
            np.zeros(n, dtype=bool)
    else:
        is_outlier = np.zeros(0, dtype=bool)

    small = np.where(is_outlier, np.uint64(0), codes)
    # One nonzero pass over the outlier mask: the positions index the
    # outlier values directly.
    positions = np.flatnonzero(is_outlier)
    values = codes[positions]
    position_bits = bitpack.required_bits(max(0, n - 1))
    out_value_bits = bitpack.required_bits_for(values)
    return [
        pack_u8(small_bits),
        bitpack.pack_unsigned(small, small_bits),
        pack_i64(len(positions)),
        pack_u8(position_bits),
        pack_u8(out_value_bits),
        bitpack.pack_unsigned(positions, position_bits),
        bitpack.pack_unsigned(values, out_value_bits),
    ]


def encode_hybrid(codes: np.ndarray) -> bytes:
    """Optimal small/large split encoding (Section III-B.3)."""
    return b"".join(encode_hybrid_parts(codes))


def decode_hybrid(data, offset: int, count: int
                  ) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_hybrid`."""
    data = _view(data)
    small_bits, offset = unpack_u8(data, offset)
    small_len = bitpack.packed_size(count, small_bits)
    codes = bitpack.unpack_unsigned(
        data[offset:offset + small_len], small_bits, count)
    offset += small_len

    outlier_count, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(outlier_count, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, outlier_count)
    offset += positions_len
    values_len = bitpack.packed_size(outlier_count, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, outlier_count)
    offset += values_len

    index = positions.astype(np.int64)
    if index.size and (index.max() >= count or index.min() < 0):
        raise CodecError("hybrid delta outlier position out of range")
    codes[index] = values
    return codes, offset


def decode_hybrid_into(data, offset: int, count: int,
                       accumulator: np.ndarray, mode: str) -> int:
    """Fold a hybrid section into a fused-chain accumulator.

    The small-code array stores code 0 (delta 0, the compose identity)
    at every outlier position, so accumulating the dense part and then
    scatter-accumulating the outliers composes exactly under both
    modes.  A 0-bit small width (every code an outlier, or an all-zero
    level) skips the dense pass entirely.  Returns the next offset.
    """
    data = _view(data)
    small_bits, offset = unpack_u8(data, offset)
    small_len = bitpack.packed_size(count, small_bits)
    if small_bits:
        small = bitpack.unpack_unsigned(
            data[offset:offset + small_len], small_bits, count)
        numeric.accumulate_delta(accumulator,
                                 codes_to_delta(small, mode), mode)
    offset += small_len

    outlier_count, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(outlier_count, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, outlier_count)
    offset += positions_len
    values_len = bitpack.packed_size(outlier_count, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, outlier_count)
    offset += values_len

    index = positions.astype(np.int64)
    if index.size and (index.max() >= count or index.min() < 0):
        raise CodecError("hybrid delta outlier position out of range")
    if index.size:
        numeric.scatter_delta(accumulator, index,
                              codes_to_delta(values, mode), mode)
    return offset
