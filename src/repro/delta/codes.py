"""Shared encodings of delta *code arrays*.

Every delta codec in this package first reduces the cell-wise difference
of two versions to a flat array of unsigned 64-bit *codes* (arithmetic
deltas are zigzag-mapped so small signed differences become small codes;
float XOR deltas are already unsigned).  The three storage strategies of
Section III-B.3 then apply to the code array:

* **dense** — every code at the minimal uniform width D;
* **sparse** — positions and values of the nonzero codes only;
* **hybrid** — "if more than a fraction F of cells can be encoded using
  D' > D bits per cell, we create a separate matrix and store cells that
  require D' bits separately": a D-bit dense array for the small codes
  plus a sparse outlier table, with D chosen by exact cost minimization.

Each strategy has an encoder, a decoder, and a *size estimator* that
predicts the encoded byte count without materializing it — the estimators
feed the Materialization Matrix (Section IV-A).

The encoders come in two forms: ``encode_*`` returns one joined byte
string, and ``encode_*_parts`` returns the list of buffers that byte
string is made of (headers and packed sections).  The parts form is the
zero-copy handoff the write pipeline uses — the delta codecs prepend
their framing parts and the chunk store joins the final payload exactly
once at placement, so encoded sections are never recopied between
stages.  The decoders accept any buffer-protocol object and slice it
through ``memoryview`` (no ``bytes()`` copies on the read path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitpack, numeric
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_i64,
    pack_u8,
    unpack_i64,
    unpack_u8,
)

_UINT64_MAX = np.uint64(np.iinfo(np.uint64).max)


def delta_to_codes(delta: np.ndarray, mode: str) -> np.ndarray:
    """Map a raw delta array onto unsigned codes."""
    if mode == numeric.ARITHMETIC:
        return bitpack.zigzag_encode(delta.ravel())
    if mode == numeric.XOR:
        return np.ascontiguousarray(delta, dtype=np.uint64).ravel()
    raise CodecError(f"unknown delta mode {mode!r}")


def codes_to_delta(codes: np.ndarray, mode: str) -> np.ndarray:
    """Inverse of :func:`delta_to_codes` (still flat)."""
    if mode == numeric.ARITHMETIC:
        return bitpack.zigzag_decode(codes)
    if mode == numeric.XOR:
        return np.ascontiguousarray(codes, dtype=np.uint64)
    raise CodecError(f"unknown delta mode {mode!r}")


def _view(data) -> memoryview:
    """``data`` as a memoryview so slicing never copies bytes."""
    return data if isinstance(data, memoryview) else memoryview(data)


def _checked_positions(positions: np.ndarray, count: int,
                       what: str) -> np.ndarray:
    """Sparse/hybrid scatter positions as a bounds-checked int64 index.

    Every decoder that scatters ``(position, value)`` pairs shares this
    one conversion + range check, so a corrupt payload fails the same
    way on every path (stepwise, fused, sparse, hybrid outliers).
    """
    index = positions.astype(np.int64)
    if index.size and (index.max() >= count or index.min() < 0):
        raise CodecError(f"{what} position out of range")
    return index


def _code_bit_lengths(codes: np.ndarray) -> np.ndarray:
    """Exact per-element bit length of an unsigned 64-bit code array.

    ``frexp`` on the float64 image yields the bit length directly for
    every value the conversion represents exactly; values that round
    *up* across a power-of-two boundary (possible above 2**53, and at
    the very top where 2**64 - 1 rounds to 2**64) come back one high
    and are corrected with a single shift-compare, so the result equals
    ``int(v).bit_length()`` for every uint64 — no sort, no Python loop.
    """
    exponents = np.frexp(codes.astype(np.float64))[1].astype(np.int64)
    np.minimum(exponents, 64, out=exponents)
    shifts = np.maximum(exponents - 1, 0).astype(np.uint64)
    rounded_up = (codes < (np.uint64(1) << shifts)) & (exponents > 0)
    return exponents - rounded_up


@dataclass(frozen=True)
class CodeStats:
    """Order statistics of one code array, computed in a single pass.

    A counting sort over code *bit widths*: ``width_counts[d]`` is the
    number of codes whose minimal width is exactly ``d``.  Everything
    the write-side estimators ever asked of ``np.sort(codes)`` +
    ``searchsorted`` falls out of its cumulative sums — the dense width
    (highest occupied bucket), the sparse nonzero count (everything
    above bucket 0), and the full hybrid split-cost curve (suffix sums
    are exactly the per-threshold outlier counts) — at O(n) instead of
    O(n log n), shared by every estimator *and* the winning encoder
    instead of being recomputed per candidate.

    ``outliers`` reproduces the sorted-search semantics bit for bit,
    including the width-64 sentinel the seed search produced (its
    ``1 << 64`` threshold wraps to 0, counting every code as an
    outlier), so cost curves — and therefore every argmin tie-break —
    are identical to the two-pass path's.
    """

    n: int
    width_counts: np.ndarray
    max_bits: int
    nonzero: int
    outliers: np.ndarray

    @classmethod
    def from_codes(cls, codes: np.ndarray) -> "CodeStats":
        n = codes.size
        counts = np.zeros(65, dtype=np.int64)
        if n:
            # Bucket by the float64 exponent field: a normal image
            # f in [2**(w-1), 2**w) has biased exponent 1022 + w, so
            # one shift + one bincount yields the width histogram with
            # no per-element bit-length array at all.  f = 0 only for
            # code 0 (bucket 0), and codes that rounded up to exactly
            # 2**64 (efield 1087) are width 64 by construction.
            bits = codes.astype(np.float64).view(np.uint64)
            efield = (bits >> np.uint64(52)).view(np.int64)
            raw = np.bincount(efield, minlength=1088)
            counts[0] = raw[0]
            counts[1:] = raw[1023:1087]
            counts[64] += raw[1087]
            if raw[1077:1087].any():
                # Codes >= 2**54 landed on exact powers of two; any
                # that *rounded up* across a width boundary (possible
                # only above 2**53, where the conversion is inexact)
                # were bucketed one width high — move them down.  The
                # occupied-bucket guard keeps this correction entirely
                # off the common path.
                exact_pow2 = (bits << np.uint64(12)) == 0
                idx = np.flatnonzero(exact_pow2 & (efield >= 1077)
                                     & (efield <= 1086))
                widths = efield[idx] - 1023
                over = codes[idx] < \
                    (np.uint64(1) << widths.astype(np.uint64))
                moved = widths[over]
                if moved.size:
                    counts += np.bincount(moved, minlength=65)[:65]
                    counts -= np.bincount(moved + 1, minlength=65)[:65]
        return cls.from_width_counts(n, counts)

    @classmethod
    def from_width_counts(cls, n: int,
                          counts: np.ndarray) -> "CodeStats":
        """Stats from a precomputed 65-bucket width histogram.

        The fused native kernel emits the histogram alongside the code
        array; this derives the same order statistics from it that
        :meth:`from_codes` builds, so both construction paths share one
        definition of the cumulative quantities.
        """
        occupied = np.flatnonzero(counts)
        max_bits = int(occupied[-1]) if occupied.size else 0
        # outliers[d] = codes needing more than d bits = suffix sum of
        # the width histogram; the d = 64 entry keeps the seed search's
        # wrapped-threshold value (all codes) so curves match exactly.
        outliers = n - np.cumsum(counts[:max_bits + 1])
        if max_bits == 64:
            outliers[64] = n
        return cls(n=n, width_counts=counts, max_bits=max_bits,
                   nonzero=n - int(counts[0]), outliers=outliers)

    def outliers_at(self, width: int) -> int:
        """Codes the hybrid split at ``width`` stores as outliers."""
        return int(self.outliers[width])

    def split_curve(self) -> tuple[np.ndarray, np.ndarray, int]:
        """The hybrid cost curve of this code array, computed once.

        The planner evaluates the curve twice per chunk — sizing the
        hybrid candidate, then choosing the winning split width at
        encode time — so the result is cached on the instance (stored
        through ``__dict__`` because the dataclass is frozen).
        """
        curve = self.__dict__.get("_split_curve")
        if curve is None:
            curve = _curve_from_outliers(self.n, self.max_bits,
                                         self.outliers)
            self.__dict__["_split_curve"] = curve
        return curve


# ----------------------------------------------------------------------
# Dense strategy
# ----------------------------------------------------------------------
def dense_size(codes: np.ndarray, stats: CodeStats | None = None) -> int:
    """Encoded bytes of the dense strategy (1-byte width header).

    ``stats`` supplies the precomputed width when the planner already
    paid for the shared pass; without it the width is derived here.
    """
    bits = stats.max_bits if stats is not None else \
        bitpack.required_bits_for(codes)
    return 1 + bitpack.packed_size(codes.size, bits)


def encode_dense_parts(codes: np.ndarray,
                       stats: CodeStats | None = None) -> list[bytes]:
    """Dense D-bit encoding as its constituent buffers."""
    bits = stats.max_bits if stats is not None else \
        bitpack.required_bits_for(codes)
    return [pack_u8(bits), bitpack.pack_unsigned(codes, bits)]


def encode_dense(codes: np.ndarray) -> bytes:
    """Dense D-bit encoding: ``u8 bits`` + packed codes."""
    return b"".join(encode_dense_parts(codes))


def decode_dense(data, offset: int, count: int
                 ) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_dense`; returns ``(codes, next_offset)``."""
    data = _view(data)
    bits, offset = unpack_u8(data, offset)
    packed_len = bitpack.packed_size(count, bits)
    codes = bitpack.unpack_unsigned(
        data[offset:offset + packed_len], bits, count)
    return codes, offset + packed_len


def decode_dense_into(data, offset: int, count: int,
                      accumulator: np.ndarray, mode: str) -> int:
    """Fold a dense section into a fused-chain accumulator.

    The fused read path's counterpart of :func:`decode_dense`: the
    decoded level delta is added/xored into ``accumulator`` via the
    ``out=`` kernels instead of materializing an intermediate version.
    Returns the next offset.
    """
    codes, offset = decode_dense(data, offset, count)
    numeric.accumulate_delta(accumulator, codes_to_delta(codes, mode),
                             mode)
    return offset


def ensure_accumulator(accumulator: np.ndarray | None, mode: str,
                       count: int) -> np.ndarray:
    """A fused-chain accumulator matching ``(mode, count)``.

    Allocates on first use; on reuse verifies the chain is uniform —
    every level of one chunk's chain must share the delta mode and
    cell count (the dtype is fixed per attribute), so a mismatch means
    a corrupt chain rather than a composable one.
    """
    if accumulator is None:
        return numeric.delta_accumulator(mode, count)
    if accumulator.dtype != numeric.accumulator_dtype(mode) or \
            accumulator.size != count:
        raise CodecError(
            "fused chain mixes delta modes or cell counts across levels")
    return accumulator


# ----------------------------------------------------------------------
# Sparse strategy
# ----------------------------------------------------------------------
def sparse_size(codes: np.ndarray, stats: CodeStats | None = None) -> int:
    """Encoded bytes of the sparse strategy without materializing it.

    Codes are unsigned, so when any is nonzero the array maximum *is*
    the nonzero maximum — no re-masking pass over the array; with
    ``stats`` both the nonzero count and the value width come straight
    from the shared histogram and no array pass runs at all.
    """
    if stats is not None:
        nonzero = stats.nonzero
        value_bits = stats.max_bits
    else:
        nonzero = int(np.count_nonzero(codes))
        value_bits = bitpack.required_bits(int(codes.max())) \
            if nonzero else 0
    position_bits = bitpack.required_bits(max(0, codes.size - 1))
    return (8 + 1 + 1
            + bitpack.packed_size(nonzero, position_bits)
            + bitpack.packed_size(nonzero, value_bits))


def encode_sparse_parts(codes: np.ndarray,
                        stats: CodeStats | None = None) -> list[bytes]:
    """Sparse encoding as its constituent buffers.

    One :func:`np.flatnonzero` pass yields the positions, which gather
    the values directly (no uint64/int64 index round trip); ``stats``
    additionally supplies the value width, skipping the max reduction
    over the gathered values.
    """
    positions = np.flatnonzero(codes)
    values = codes[positions]
    position_bits = bitpack.required_bits(max(0, codes.size - 1))
    if stats is not None:
        value_bits = stats.max_bits if positions.size else 0
    else:
        value_bits = bitpack.required_bits_for(values)
    return [
        pack_i64(len(positions)),
        pack_u8(position_bits),
        pack_u8(value_bits),
        bitpack.pack_unsigned(positions, position_bits),
        bitpack.pack_unsigned(values, value_bits),
    ]


def encode_sparse(codes: np.ndarray) -> bytes:
    """Sparse encoding: nonzero (position, code) pairs, both bit-packed."""
    return b"".join(encode_sparse_parts(codes))


def decode_sparse(data, offset: int, count: int
                  ) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_sparse`."""
    data = _view(data)
    nonzero, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(nonzero, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, nonzero)
    offset += positions_len
    values_len = bitpack.packed_size(nonzero, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, nonzero)
    offset += values_len
    codes = np.zeros(count, dtype=np.uint64)
    index = _checked_positions(positions, count, "sparse delta")
    codes[index] = values
    return codes, offset


def decode_sparse_into(data, offset: int, count: int,
                       accumulator: np.ndarray, mode: str,
                       batch: list | None = None) -> int:
    """Fold a sparse section into a fused-chain accumulator.

    The fused read path's replacement for :func:`decode_sparse`: the
    ``(positions, values)`` pairs scatter-accumulate straight into
    ``accumulator`` — no full-size ``codes`` canvas is ever allocated,
    so a level that changed n cells costs O(n), not O(count).  With
    ``batch`` given, the decoded (bounds-checked) pairs are appended
    to it instead of scattered, so the caller can fold every scatter
    level of a chain in one batched call
    (:func:`repro.core.numeric.scatter_delta_batch`).  Returns the
    next offset.
    """
    data = _view(data)
    nonzero, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(nonzero, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, nonzero)
    offset += positions_len
    values_len = bitpack.packed_size(nonzero, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, nonzero)
    offset += values_len
    index = _checked_positions(positions, count, "sparse delta")
    if index.size:
        if batch is not None:
            batch.append((index, codes_to_delta(values, mode)))
        else:
            numeric.scatter_delta(accumulator, index,
                                  codes_to_delta(values, mode), mode)
    return offset


# ----------------------------------------------------------------------
# Hybrid strategy
# ----------------------------------------------------------------------
def _split_costs(codes: np.ndarray, stats: CodeStats | None = None
                 ) -> tuple[np.ndarray, np.ndarray, int]:
    """Cost of the hybrid encoding for every candidate small-width d.

    Returns ``(candidate_widths, costs, value_bits)`` where ``costs[k]``
    is the total byte cost of storing codes < 2**widths[k] densely at
    widths[k] bits and the rest as sparse outliers.  With ``stats`` the
    per-threshold outlier counts come from the shared width histogram
    (no sort); the curve arithmetic is one code path either way, so the
    two forms cannot disagree on a single cost or tie-break.
    """
    if stats is not None:
        return stats.split_curve()
    n = codes.size
    max_bits = bitpack.required_bits_for(codes)
    if n == 0:
        return _curve_from_outliers(n, max_bits,
                                    np.zeros(1, dtype=np.int64))
    widths = np.arange(max_bits + 1)
    sorted_codes = np.sort(codes)
    # outliers(d) = number of codes >= 2**d  (d = max_bits -> none).
    thresholds = np.minimum(np.uint64(1) << widths.astype(np.uint64),
                            _UINT64_MAX)
    below = np.searchsorted(sorted_codes, thresholds, side="left")
    return _curve_from_outliers(n, max_bits, n - below)


def _curve_from_outliers(n: int, max_bits: int, outliers: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray, int]:
    """The shared curve arithmetic behind :func:`_split_costs`.

    Both outlier-count sources — the sorted search and the width
    histogram's suffix sums — feed this one function, so the two forms
    cannot disagree on a single cost or tie-break.
    """
    widths = np.arange(max_bits + 1)
    if n == 0:
        return widths, np.zeros(len(widths)), 0

    position_bits = bitpack.required_bits(max(0, n - 1))
    value_bits = max_bits
    dense_bytes = (n * widths + 7) // 8
    outlier_bytes = ((outliers * position_bits + 7) // 8
                     + (outliers * value_bits + 7) // 8)
    overhead = 8 + 1 + 1 + 1  # count + small width + pos/val widths
    costs = dense_bytes + outlier_bytes + overhead
    return widths, costs, value_bits


def hybrid_size(codes: np.ndarray, stats: CodeStats | None = None) -> int:
    """Encoded bytes of the optimal hybrid split (estimator)."""
    widths, costs, _ = _split_costs(codes, stats)
    if codes.size == 0:
        return 11
    return int(costs.min())


def hybrid_split_width(codes: np.ndarray,
                       stats: CodeStats | None = None) -> int:
    """The small-code bit width the optimal hybrid split uses."""
    widths, costs, _ = _split_costs(codes, stats)
    return int(widths[int(np.argmin(costs))])


def encode_hybrid_parts(codes: np.ndarray,
                        stats: CodeStats | None = None) -> list[bytes]:
    """Optimal small/large split encoding as its constituent buffers.

    With ``stats`` the cost search reuses the shared width histogram
    instead of re-sorting, and the known outlier count batches the
    gather: a split with no outliers packs ``codes`` directly — no
    mask, no ``where`` copy, no nonzero scan — and a split with
    outliers builds the mask exactly once for both the positions and
    the zeroed small array.  Both forms emit identical bytes.
    """
    n = codes.size
    widths, costs, value_bits = _split_costs(codes, stats)
    small_bits = int(widths[int(np.argmin(costs))]) if n else 0
    position_bits = bitpack.required_bits(max(0, n - 1))

    if n and stats is not None and not stats.outliers_at(small_bits):
        # The chosen split keeps every code dense: the packed small
        # array is the code array itself (bytes identical to the
        # masked copy the general path would have produced).
        empty = codes[:0]
        return [
            pack_u8(small_bits),
            bitpack.pack_unsigned(codes, small_bits),
            pack_i64(0),
            pack_u8(position_bits),
            pack_u8(0),
            bitpack.pack_unsigned(empty, position_bits),
            bitpack.pack_unsigned(empty, 0),
        ]

    if n:
        threshold = (np.uint64(1) << np.uint64(small_bits)) \
            if small_bits < 64 else _UINT64_MAX
        is_outlier = codes >= threshold if small_bits < 64 else \
            np.zeros(n, dtype=bool)
    else:
        is_outlier = np.zeros(0, dtype=bool)

    small = np.where(is_outlier, np.uint64(0), codes)
    # One nonzero pass over the outlier mask: the positions index the
    # outlier values directly.
    positions = np.flatnonzero(is_outlier)
    values = codes[positions]
    out_value_bits = bitpack.required_bits_for(values)
    return [
        pack_u8(small_bits),
        bitpack.pack_unsigned(small, small_bits),
        pack_i64(len(positions)),
        pack_u8(position_bits),
        pack_u8(out_value_bits),
        bitpack.pack_unsigned(positions, position_bits),
        bitpack.pack_unsigned(values, out_value_bits),
    ]


def encode_hybrid(codes: np.ndarray) -> bytes:
    """Optimal small/large split encoding (Section III-B.3)."""
    return b"".join(encode_hybrid_parts(codes))


def decode_hybrid(data, offset: int, count: int
                  ) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_hybrid`."""
    data = _view(data)
    small_bits, offset = unpack_u8(data, offset)
    small_len = bitpack.packed_size(count, small_bits)
    codes = bitpack.unpack_unsigned(
        data[offset:offset + small_len], small_bits, count)
    offset += small_len

    outlier_count, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(outlier_count, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, outlier_count)
    offset += positions_len
    values_len = bitpack.packed_size(outlier_count, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, outlier_count)
    offset += values_len

    index = _checked_positions(positions, count, "hybrid delta outlier")
    codes[index] = values
    return codes, offset


def decode_hybrid_into(data, offset: int, count: int,
                       accumulator: np.ndarray, mode: str,
                       batch: list | None = None) -> int:
    """Fold a hybrid section into a fused-chain accumulator.

    The small-code array stores code 0 (delta 0, the compose identity)
    at every outlier position, so accumulating the dense part and then
    scatter-accumulating the outliers composes exactly under both
    modes.  A 0-bit small width (every code an outlier, or an all-zero
    level) skips the dense pass entirely.  With ``batch`` given the
    outlier pairs are deferred to the caller's batched scatter exactly
    as in :func:`decode_sparse_into`.  Returns the next offset.
    """
    data = _view(data)
    small_bits, offset = unpack_u8(data, offset)
    small_len = bitpack.packed_size(count, small_bits)
    if small_bits:
        small = bitpack.unpack_unsigned(
            data[offset:offset + small_len], small_bits, count)
        numeric.accumulate_delta(accumulator,
                                 codes_to_delta(small, mode), mode)
    offset += small_len

    outlier_count, offset = unpack_i64(data, offset)
    position_bits, offset = unpack_u8(data, offset)
    value_bits, offset = unpack_u8(data, offset)
    positions_len = bitpack.packed_size(outlier_count, position_bits)
    positions = bitpack.unpack_unsigned(
        data[offset:offset + positions_len], position_bits, outlier_count)
    offset += positions_len
    values_len = bitpack.packed_size(outlier_count, value_bits)
    values = bitpack.unpack_unsigned(
        data[offset:offset + values_len], value_bits, outlier_count)
    offset += values_len

    index = _checked_positions(positions, count, "hybrid delta outlier")
    if index.size:
        if batch is not None:
            batch.append((index, codes_to_delta(values, mode)))
        else:
            numeric.scatter_delta(accumulator, index,
                                  codes_to_delta(values, mode), mode)
    return offset
