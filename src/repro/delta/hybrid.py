"""The "hybrid" delta method of Table I — the paper's best performer.

"The 'hybrid' method calculates an optimal threshold value and splits the
delta array into two arrays, one (sparse or dense) array of large values
and one (dense) array of small values" (Section III-B.3 / V-A).

The threshold (a small-code bit width D) is chosen by exact cost search
over all candidate widths — see :func:`repro.delta.codes._split_costs`.
An optional Lempel-Ziv stage over the packed payload implements the
"Hybrid + LZ" configuration used throughout Section V.
"""

from __future__ import annotations

import numpy as np

from repro.compression.lz import lz_bytes, unlz_bytes
from repro.core import numeric
from repro.core.errors import CodecError
from repro.core.serial import pack_u8, unpack_u8
from repro.delta import codes as code_store
from repro.delta.base import DeltaCodec


class HybridDeltaCodec(DeltaCodec):
    """Optimal small/large split delta, optionally LZ-compressed."""

    name = "hybrid"
    bidirectional = True
    composable = True
    scatters = True
    plan_sufficient = True

    def __init__(self, lz: bool = False):
        self.lz = lz
        if lz:
            self.name = "hybrid+lz"

    # ------------------------------------------------------------------
    def encode_parts(self, target: np.ndarray,
                     base: np.ndarray) -> list[bytes]:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        parts = code_store.encode_hybrid_parts(codes)
        if self.lz:
            # The LZ stage consumes one contiguous buffer, so it joins
            # here; the un-compressed path hands its sections through.
            parts = [lz_bytes(b"".join(parts))]
        return [self._frame(target, mode), pack_u8(int(self.lz)), *parts]

    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        return b"".join(self.encode_parts(target, base))

    def accumulate(self, data, accumulator, batch=None):
        data = memoryview(data)
        dtype, shape, mode, offset = self._unframe(data)
        lz_flag, offset = unpack_u8(data, offset)
        payload = data[offset:]
        if lz_flag:
            payload = unlz_bytes(payload)
        count = int(np.prod(shape)) if shape else 1
        accumulator = code_store.ensure_accumulator(accumulator, mode,
                                                    count)
        end = code_store.decode_hybrid_into(payload, 0, count,
                                            accumulator, mode,
                                            batch=batch)
        if end != len(payload):
            raise CodecError(
                f"hybrid delta payload has {len(payload) - end} "
                "undecoded trailing bytes")
        return accumulator, mode, dtype, shape

    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        delta, mode, dtype, shape = self._decode_delta(data)
        return numeric.apply_delta_forward(
            base, delta.reshape(shape), mode, dtype)

    def decode_backward(self, data: bytes, target: np.ndarray) -> np.ndarray:
        delta, mode, dtype, shape = self._decode_delta(data)
        return numeric.apply_delta_backward(
            target, delta.reshape(shape), mode, dtype)

    def encoded_size(self, target: np.ndarray, base: np.ndarray) -> int:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        header = self._frame_size(target) + 1  # + the LZ flag byte
        if self.lz:
            # The LZ output size is data dependent, so the compressor
            # must run — but only over the packed split sections; the
            # framing never reaches the LZ stage, so its size is added
            # analytically instead of round-tripping a full encode().
            packed = b"".join(code_store.encode_hybrid_parts(codes))
            return header + len(lz_bytes(packed))
        return header + code_store.hybrid_size(codes)

    def plan_size(self, plan) -> int | None:
        if self.lz:
            # Data dependent: the planner falls back to (one) encode.
            return None
        return self._frame_size(plan.target) + 1 + \
            code_store.hybrid_size(plan.codes, plan.stats)

    def encode_from_plan(self, plan) -> list[bytes]:
        parts = code_store.encode_hybrid_parts(plan.codes, plan.stats)
        if self.lz:
            parts = [lz_bytes(b"".join(parts))]
        return [self._frame(plan.target, plan.mode),
                pack_u8(int(self.lz)), *parts]

    # ------------------------------------------------------------------
    def _decode_delta(self, data: bytes):
        data = memoryview(data)
        dtype, shape, mode, offset = self._unframe(data)
        lz_flag, offset = unpack_u8(data, offset)
        # A memoryview slice, not a bytes copy — the packed sections
        # are unpacked straight out of the stored payload.
        payload = data[offset:]
        if lz_flag:
            payload = unlz_bytes(payload)
        count = int(np.prod(shape)) if shape else 1
        codes, end = code_store.decode_hybrid(payload, 0, count)
        if end != len(payload):
            raise CodecError(
                f"hybrid delta payload has {len(payload) - end} "
                "undecoded trailing bytes")
        delta = code_store.codes_to_delta(codes, mode)
        return delta, mode, dtype, shape
