"""The "sparse" delta method of Table I.

"The 'sparse' method ... converts the difference array into a sparse
array, under the assumption that relatively few differences will have
nonzero values": only the positions and codes of cells that changed are
stored.
"""

from __future__ import annotations

import numpy as np

from repro.core import numeric
from repro.core.errors import CodecError
from repro.delta import codes as code_store
from repro.delta.base import DeltaCodec


class SparseDeltaCodec(DeltaCodec):
    """Position/value pairs for the nonzero delta codes only."""

    name = "sparse"
    bidirectional = True
    composable = True
    scatters = True
    plan_sufficient = True

    def encode_parts(self, target: np.ndarray,
                     base: np.ndarray) -> list[bytes]:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        return [self._frame(target, mode),
                *code_store.encode_sparse_parts(codes)]

    def encode(self, target: np.ndarray, base: np.ndarray) -> bytes:
        return b"".join(self.encode_parts(target, base))

    def _decode_codes(self, data) -> tuple[np.ndarray, str, np.dtype,
                                           tuple[int, ...]]:
        data = memoryview(data)
        dtype, shape, mode, offset = self._unframe(data)
        count = int(np.prod(shape)) if shape else 1
        codes, end = code_store.decode_sparse(data, offset, count)
        if end != len(data):
            raise CodecError(
                f"sparse delta payload has {len(data) - end} undecoded "
                "trailing bytes")
        return codes, mode, dtype, shape

    def accumulate(self, data, accumulator, batch=None):
        data = memoryview(data)
        dtype, shape, mode, offset = self._unframe(data)
        count = int(np.prod(shape)) if shape else 1
        accumulator = code_store.ensure_accumulator(accumulator, mode,
                                                    count)
        end = code_store.decode_sparse_into(data, offset, count,
                                            accumulator, mode,
                                            batch=batch)
        if end != len(data):
            raise CodecError(
                f"sparse delta payload has {len(data) - end} undecoded "
                "trailing bytes")
        return accumulator, mode, dtype, shape

    def decode_forward(self, data: bytes, base: np.ndarray) -> np.ndarray:
        codes, mode, dtype, shape = self._decode_codes(data)
        delta = code_store.codes_to_delta(codes, mode).reshape(shape)
        return numeric.apply_delta_forward(base, delta, mode, dtype)

    def decode_backward(self, data: bytes, target: np.ndarray) -> np.ndarray:
        codes, mode, dtype, shape = self._decode_codes(data)
        delta = code_store.codes_to_delta(codes, mode).reshape(shape)
        return numeric.apply_delta_backward(target, delta, mode, dtype)

    def encoded_size(self, target: np.ndarray, base: np.ndarray) -> int:
        delta, mode = numeric.compute_delta(target, base)
        codes = code_store.delta_to_codes(delta, mode)
        return self._frame_size(target) + code_store.sparse_size(codes)

    def plan_size(self, plan) -> int:
        return self._frame_size(plan.target) + \
            code_store.sparse_size(plan.codes, plan.stats)

    def encode_from_plan(self, plan) -> list[bytes]:
        return [self._frame(plan.target, plan.mode),
                *code_store.encode_sparse_parts(plan.codes, plan.stats)]
