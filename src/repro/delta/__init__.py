"""Delta encoding of array versions (Section III).

Provides the paper's differencing algorithms — dense, sparse, hybrid
(with optional LZ), the MPEG-2-like block matcher and a BSDiff-style
binary differ — plus automatic materialize-vs-delta selection.
"""

from repro.delta.auto import (
    CodePlan,
    EncodingDecision,
    PlannedEncoding,
    choose_encoding,
    default_delta_candidates,
    plan_encoding,
)
from repro.delta.base import DeltaCodec
from repro.delta.codes import CodeStats
from repro.delta.bsdiff import BSDiffDeltaCodec, suffix_array
from repro.delta.dense import DenseDeltaCodec
from repro.delta.hybrid import HybridDeltaCodec
from repro.delta.mpeg_like import MPEGLikeDeltaCodec
from repro.delta.registry import (
    delta_codec_names,
    get_delta_codec,
    register_delta_codec,
)
from repro.delta.sparse import SparseDeltaCodec

__all__ = [
    "BSDiffDeltaCodec",
    "CodePlan",
    "CodeStats",
    "DeltaCodec",
    "DenseDeltaCodec",
    "EncodingDecision",
    "HybridDeltaCodec",
    "MPEGLikeDeltaCodec",
    "PlannedEncoding",
    "SparseDeltaCodec",
    "choose_encoding",
    "default_delta_candidates",
    "plan_encoding",
    "delta_codec_names",
    "get_delta_codec",
    "register_delta_codec",
    "suffix_array",
]
