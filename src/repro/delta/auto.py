"""Automatic encoding choice: materialize vs. delta, and which delta.

Section III-B.3: "if an array would use less space on disk if stored
without delta compression, the system will choose not to use it.  Disk
space usage is calculated by trying both methods and choosing the more
economical one."  Section II-A adds that "delta-ing is performed
automatically by comparing the new version to versions already in the
system" — the user never has to supply the delta-list form to benefit.

Two implementations of that decision live here:

* :func:`choose_encoding` — the exhaustive two-pass form: fully encode
  the materialized representation *and* every candidate delta codec,
  keep the smallest.  Every loser's payload is thrown away, and each
  candidate independently recomputes the same delta, zigzag and width
  statistics.  It remains the reference oracle (the planner's property
  suite asserts equality against it) and the ``REPRO_ENCODE_PLANNER=0``
  fallback path.
* :func:`plan_encoding` — the single-pass planner: one
  :class:`CodePlan` computes the delta, the unsigned code array and its
  width statistics exactly once; every candidate is *sized* from the
  shared plan (exact sizes, not estimates — the codecs' ``plan_size``
  is byte-accurate), the materialized size is derived analytically
  under the identity compressor, and exactly one encoder runs: the
  winner's, fed the already-computed codes.  Same winner, same size,
  same payload bytes as the two-pass form — only the wasted encodes are
  gone.

The planner additionally supports **delta-of-delta re-base**: when the
insert path has the base version's chain state (the decoded root plus
the chain's composed-but-unapplied accumulator, a :class:`RebaseState`
produced by the decode pipeline) instead of a reconstructed canvas,
:meth:`CodePlan.build_rebased` plans the new version's codes directly
from that state.  Both delta modes compose associatively and
commutatively — wrapping int64 addition and xor — so the base canvas
is never materialized: ``codes = zigzag(target - root - acc)`` for
arithmetic cells (one fused native pass for int64) and
``codes = bits(target) ^ bits(root) ^ acc`` for floats.  The contract
is byte identity with :meth:`CodePlan.build` over the canvas the state
denotes — same codes, same statistics, same winner, same payload — and
every candidate offered a rebased plan must be ``plan_sufficient``
(it sizes and encodes from the shared arrays, never ``plan.base``,
which a rebased plan does not carry).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np

from repro.compression.base import Codec, IdentityCodec
from repro.core import native, numeric
from repro.core.errors import CodecError
from repro.core.serial import pack_array_header
from repro.delta.base import DeltaCodec
from repro.delta.codes import CodeStats, codes_to_delta, delta_to_codes
from repro.delta.hybrid import HybridDeltaCodec
from repro.delta.sparse import SparseDeltaCodec


@dataclass(frozen=True)
class EncodingDecision:
    """The outcome of the materialize-or-delta comparison.

    ``delta_codec`` is None when materializing wins; otherwise it names
    the winning delta codec.  ``size`` is the encoded byte count of the
    winning representation and ``parts`` its buffers — the sections the
    encoder produced, carried unjoined so the chunk store can compose
    the payload exactly once at placement.  :attr:`payload` joins them
    for callers that want one byte string; the join is cached, so
    repeated access costs one copy total instead of one per access.
    """

    delta_codec: str | None
    size: int
    parts: tuple[bytes, ...]

    @cached_property
    def payload(self) -> bytes:
        return b"".join(self.parts)

    @property
    def is_delta(self) -> bool:
        return self.delta_codec is not None


@dataclass(frozen=True)
class RebaseState:
    """One chunk's base version as chain-walk state instead of canvas.

    ``root`` is the decoded materialized root (possibly a zero-copy
    read-only view — never written through), ``accumulator`` the
    chain's composed-but-unapplied delta (flat int64 for ARITHMETIC,
    uint64 for XOR; None when the base *is* the root and no deltas sit
    above it), and ``mode`` the compose mode.  Produced by
    ``DecodePipeline.chain_state``; consumed by
    :meth:`CodePlan.build_rebased`.
    """

    root: np.ndarray
    accumulator: np.ndarray | None
    mode: str


@dataclass(frozen=True)
class CodePlan:
    """The shared single-pass state of one chunk's encode.

    Computed once per (target, base) pair and handed to every candidate
    codec: the raw ``delta`` and its ``mode``, the flat unsigned
    ``codes`` the strategies of Section III-B.3 operate on, and the
    code array's :class:`~repro.delta.codes.CodeStats` — the one-pass
    width order statistics (a counting sort over code bit widths) that
    replace the per-candidate ``np.sort`` + ``searchsorted`` the
    two-pass path repeated for every estimator.  Dense width, sparse
    nonzero count and the full hybrid split-cost curve all fall out of
    the same statistics, so sizing a candidate costs arithmetic on a
    65-bucket histogram, not a pass over the chunk.
    """

    target: np.ndarray
    #: The base canvas — None for plans built by delta-of-delta
    #: re-base, which only plan-sufficient codecs may consume.
    base: np.ndarray | None
    mode: str
    codes: np.ndarray
    stats: CodeStats

    @classmethod
    def build(cls, target: np.ndarray, base: np.ndarray) -> "CodePlan":
        numeric.check_same_layout(target, base)
        fused = native.delta_zigzag_stats(target, base)
        if fused is not None:
            # One streaming pass produced the codes and the width
            # histogram together; the raw delta is never materialized
            # (the :attr:`delta` property rebuilds it on demand).
            codes, counts = fused
            return cls(target=target, base=base, mode=numeric.ARITHMETIC,
                       codes=codes,
                       stats=CodeStats.from_width_counts(codes.size,
                                                         counts))
        delta, mode = numeric.compute_delta(target, base)
        codes = delta_to_codes(delta, mode)
        plan = cls(target=target, base=base, mode=mode, codes=codes,
                   stats=CodeStats.from_codes(codes))
        # Seed the lazy property: this path already paid for the delta.
        plan.__dict__["delta"] = delta
        return plan

    @classmethod
    def build_rebased(cls, target: np.ndarray,
                      state: RebaseState) -> "CodePlan":
        """Plan ``target`` against a base given as chain state, without
        reconstructing the base canvas (delta-of-delta re-base).

        The base the state denotes is ``wrap(root + acc)`` cell-wise,
        so the new codes fall out of one fused pass:
        ``zigzag(target - root - acc)`` mod 2**64 for arithmetic cells
        (a single native kernel when the cells are int64; for narrower
        dtypes the parent is canonicalized through the attribute dtype
        — wrap, then re-widen — exactly the value a stepwise apply
        would have stored) and ``bits(target) ^ bits(root) ^ acc`` for
        floats, where xor needs no canonicalization.  Byte-identical
        to ``build(target, base_canvas)``: same codes, same width
        statistics, hence the same candidate sizes and winner.  The
        returned plan carries ``base=None`` — only plan-sufficient
        codecs may size or encode from it.
        """
        accumulator = state.accumulator
        if accumulator is None:
            return cls.build(target, state.root)
        root = state.root
        numeric.check_same_layout(target, root)
        mode = numeric.delta_mode_for(target.dtype)
        if mode != state.mode:
            raise CodecError(
                f"rebase state mode {state.mode!r} does not match "
                f"target dtype {target.dtype} (mode {mode!r})")
        if mode == numeric.ARITHMETIC:
            if target.dtype == np.int64:
                fused = native.rebase_zigzag_stats(
                    np.ascontiguousarray(target).reshape(-1),
                    np.ascontiguousarray(root).reshape(-1),
                    accumulator)
                if fused is not None:
                    codes, counts = fused
                    return cls(target=target, base=None, mode=mode,
                               codes=codes,
                               stats=CodeStats.from_width_counts(
                                   codes.size, counts))
            with np.errstate(over="ignore"):
                parent64 = (root.astype(np.int64, copy=False).reshape(-1)
                            + accumulator)
                # Canonicalize through the attribute dtype: wrap, then
                # re-widen — the exact cell values a stepwise apply
                # would have stored (identity for int64).
                parent64 = parent64.astype(target.dtype) \
                                   .astype(np.int64)
                delta = (target.astype(np.int64, copy=False).reshape(-1)
                         - parent64)
        else:
            # XOR folds bit patterns; the low float-width bits are
            # closed under xor, so no canonicalization is needed.
            folded, _ = numeric.compute_delta(target, root)
            delta = folded.reshape(-1) ^ accumulator
        codes = delta_to_codes(delta, mode)
        plan = cls(target=target, base=None, mode=mode, codes=codes,
                   stats=CodeStats.from_codes(codes))
        plan.__dict__["delta"] = delta.reshape(target.shape)
        return plan

    @cached_property
    def delta(self) -> np.ndarray:
        """The raw delta array, rebuilt from the codes when the fused
        kernel skipped materializing it (codes round-trip exactly)."""
        return codes_to_delta(self.codes,
                              self.mode).reshape(self.target.shape)


@dataclass(frozen=True)
class PlannedEncoding:
    """A planner decision plus what the plan saved over the two-pass
    path: ``encodes_avoided`` counts representations that were sized
    exactly but never encoded (losing candidates, and the materialized
    form when a delta provably wins under the identity compressor), and
    ``bytes_saved`` is the total size of those never-produced payloads.
    """

    decision: EncodingDecision
    encodes_avoided: int
    bytes_saved: int


def default_delta_candidates() -> tuple[DeltaCodec, ...]:
    """The delta codecs tried by default on the insert path.

    The hybrid codec subsumes dense and sparse in size (its cost search
    includes both extremes), so trying hybrid plus plain sparse keeps the
    insert path fast while matching the paper's behaviour.
    """
    return (HybridDeltaCodec(), SparseDeltaCodec())


def choose_encoding(target: np.ndarray, base: np.ndarray | None,
                    compressor: Codec | None = None,
                    candidates: tuple[DeltaCodec, ...] | None = None,
                    ) -> EncodingDecision:
    """Pick the cheapest representation of ``target`` (two-pass form).

    ``base`` is the version the optimizer proposes to delta against
    (None forces materialization).  ``compressor`` is applied to the
    materialized representation; delta payloads carry their own optional
    LZ stage.
    """
    compressor = compressor or IdentityCodec()
    materialized = compressor.encode(target)
    best = EncodingDecision(delta_codec=None, size=len(materialized),
                            parts=(materialized,))
    if base is None:
        return best

    for codec in candidates or default_delta_candidates():
        parts = codec.encode_parts(target, base)
        size = sum(len(part) for part in parts)
        if size < best.size:
            best = EncodingDecision(delta_codec=codec.name,
                                    size=size, parts=tuple(parts))
    return best


@lru_cache(maxsize=256)
def _identity_header_len(dtype_str: str, shape: tuple[int, ...]) -> int:
    """Length of the identity codec's array header, cached per layout
    (the write pipeline sizes the same chunk geometry thousands of
    times)."""
    return len(pack_array_header(np.dtype(dtype_str), shape))


def materialized_size(target: np.ndarray, compressor: Codec
                      ) -> tuple[int, bytes | None]:
    """Exact materialized size, without encoding when provable.

    Under the identity compressor the encoded form is the array header
    plus the raw cell bytes, so its length is arithmetic — the planner
    can rule materialization in or out without producing the payload.
    Any other compressor's output length is data dependent: encode it
    and return the payload alongside so a materialize win reuses it.
    ``type(...) is IdentityCodec`` deliberately excludes subclasses,
    whose ``encode`` may differ.
    """
    if type(compressor) is IdentityCodec:
        # ascontiguousarray (which IdentityCodec applies) promotes 0-d
        # arrays to shape (1,), so the stored header carries one extent.
        shape = target.shape if target.ndim else (1,)
        return _identity_header_len(target.dtype.str, shape) \
            + target.nbytes, None
    encoded = compressor.encode(target)
    return len(encoded), encoded


def plan_encoding(target: np.ndarray, base: np.ndarray | None,
                  compressor: Codec | None = None,
                  candidates: tuple[DeltaCodec, ...] | None = None,
                  *, rebase: RebaseState | None = None
                  ) -> PlannedEncoding:
    """Pick the cheapest representation of ``target`` in a single pass.

    Decision-equivalent and byte-identical to :func:`choose_encoding`
    over the same arguments (same winner under the same first-strictly-
    smaller tie-break, same size, same payload), but: the delta, code
    array and width statistics are computed once and shared; candidates
    that can size themselves from the plan are never encoded unless
    they win; candidates that cannot (LZ stages, transform codecs) are
    encoded exactly once and their parts cached for the win case; and
    the materialized form is sized analytically under the identity
    compressor, so when a delta wins its payload is never produced.

    ``rebase`` supplies the base as chain state instead of ``base``
    (pass exactly one): the plan comes from
    :meth:`CodePlan.build_rebased`, so the base canvas is never
    reconstructed, and every candidate must be ``plan_sufficient``.
    The decision is byte-identical to planning against the canvas the
    state denotes.
    """
    compressor = compressor or IdentityCodec()
    mat_size, mat_payload = materialized_size(target, compressor)
    if base is None and rebase is None:
        if mat_payload is None:
            mat_payload = compressor.encode(target)
        decision = EncodingDecision(delta_codec=None, size=mat_size,
                                    parts=(mat_payload,))
        return PlannedEncoding(decision=decision, encodes_avoided=0,
                               bytes_saved=0)

    if rebase is not None:
        if base is not None:
            raise CodecError(
                "plan_encoding takes a base canvas or a rebase state, "
                "not both")
        offered = candidates or default_delta_candidates()
        for codec in offered:
            if not codec.plan_sufficient:
                raise CodecError(
                    f"delta codec {codec.name!r} is not plan-sufficient; "
                    "it cannot be offered a rebased plan (no base canvas)")
        plan = CodePlan.build_rebased(target, rebase)
    else:
        plan = CodePlan.build(target, base)
    best_codec: DeltaCodec | None = None
    best_size = mat_size
    best_parts: list[bytes] | None = None
    sized: list[tuple[DeltaCodec, int, list[bytes] | None]] = []
    for codec in candidates or default_delta_candidates():
        size = codec.plan_size(plan)
        parts = None
        if size is None:
            # Data-dependent size: encode once, cache the parts so a
            # win never re-encodes.
            parts = codec.encode_from_plan(plan)
            size = sum(len(part) for part in parts)
        sized.append((codec, size, parts))
        if size < best_size:
            best_codec, best_size, best_parts = codec, size, parts

    encodes_avoided = 0
    bytes_saved = 0
    for codec, size, parts in sized:
        if parts is None and codec is not best_codec:
            encodes_avoided += 1
            bytes_saved += size

    if best_codec is None:
        if mat_payload is None:
            mat_payload = compressor.encode(target)
        decision = EncodingDecision(delta_codec=None, size=mat_size,
                                    parts=(mat_payload,))
    else:
        if mat_payload is None:
            # The cost model proved a delta wins under the identity
            # compressor: the materialized payload is never produced.
            encodes_avoided += 1
            bytes_saved += mat_size
        if best_parts is None:
            best_parts = best_codec.encode_from_plan(plan)
        decision = EncodingDecision(delta_codec=best_codec.name,
                                    size=best_size,
                                    parts=tuple(best_parts))
    return PlannedEncoding(decision=decision,
                           encodes_avoided=encodes_avoided,
                           bytes_saved=bytes_saved)
