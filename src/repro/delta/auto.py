"""Automatic encoding choice: materialize vs. delta, and which delta.

Section III-B.3: "if an array would use less space on disk if stored
without delta compression, the system will choose not to use it.  Disk
space usage is calculated by trying both methods and choosing the more
economical one."  Section II-A adds that "delta-ing is performed
automatically by comparing the new version to versions already in the
system" — the user never has to supply the delta-list form to benefit.

:func:`choose_encoding` implements that decision for one array (or one
chunk): it compares the materialized size against the candidate delta
codecs' sizes and returns the cheapest plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import Codec, IdentityCodec
from repro.delta.base import DeltaCodec
from repro.delta.hybrid import HybridDeltaCodec
from repro.delta.sparse import SparseDeltaCodec


@dataclass(frozen=True)
class EncodingDecision:
    """The outcome of the materialize-or-delta comparison.

    ``delta_codec`` is None when materializing wins; otherwise it names
    the winning delta codec.  ``size`` is the encoded byte count of the
    winning representation and ``parts`` its buffers — the sections the
    encoder produced, carried unjoined so the chunk store can compose
    the payload exactly once at placement (:attr:`payload` joins them
    for callers that want one byte string).
    """

    delta_codec: str | None
    size: int
    parts: tuple[bytes, ...]

    @property
    def payload(self) -> bytes:
        return b"".join(self.parts)

    @property
    def is_delta(self) -> bool:
        return self.delta_codec is not None


def default_delta_candidates() -> tuple[DeltaCodec, ...]:
    """The delta codecs tried by default on the insert path.

    The hybrid codec subsumes dense and sparse in size (its cost search
    includes both extremes), so trying hybrid plus plain sparse keeps the
    insert path fast while matching the paper's behaviour.
    """
    return (HybridDeltaCodec(), SparseDeltaCodec())


def choose_encoding(target: np.ndarray, base: np.ndarray | None,
                    compressor: Codec | None = None,
                    candidates: tuple[DeltaCodec, ...] | None = None,
                    ) -> EncodingDecision:
    """Pick the cheapest representation of ``target``.

    ``base`` is the version the optimizer proposes to delta against
    (None forces materialization).  ``compressor`` is applied to the
    materialized representation; delta payloads carry their own optional
    LZ stage.
    """
    compressor = compressor or IdentityCodec()
    materialized = compressor.encode(target)
    best = EncodingDecision(delta_codec=None, size=len(materialized),
                            parts=(materialized,))
    if base is None:
        return best

    for codec in candidates or default_delta_candidates():
        parts = codec.encode_parts(target, base)
        size = sum(len(part) for part in parts)
        if size < best.size:
            best = EncodingDecision(delta_codec=codec.name,
                                    size=size, parts=tuple(parts))
    return best
