"""The query processor's select primitives (Section II-B).

Wraps a :class:`~repro.storage.manager.VersionedStorageManager` with the
four Select forms of the paper plus version *resolution*: versions can be
named by id (``Example@3``), by date (``Example@'1-5-2011'``), or all at
once (``Example@*``).  The processor translates each declarative request
into storage-manager operations — exactly the role the query processor
plays in Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

import numpy as np

from repro.core.array import ArrayData
from repro.core.errors import AQLExecutionError, VersionNotFoundError
from repro.storage.manager import VersionedStorageManager


@dataclass(frozen=True)
class VersionSpec:
    """A parsed ``array@version`` reference.

    Exactly one of ``version`` (an id), ``date`` (a timestamp string),
    ``label`` (an arbitrary named version) or ``all_versions`` is set.
    """

    array: str
    version: int | None = None
    date: str | None = None
    label: str | None = None
    all_versions: bool = False

    def __post_init__(self) -> None:
        markers = sum((self.version is not None, self.date is not None,
                       self.label is not None, self.all_versions))
        if markers != 1:
            raise AQLExecutionError(
                f"version spec for {self.array!r} must name exactly one "
                "of: id, date, label, or '*'")


def parse_date(text: str) -> float:
    """Parse the paper's ``'1-5-2011'`` (month-day-year) date syntax.

    A trailing ``HH:MM[:SS]`` component is also accepted; timestamps are
    interpreted as UTC for determinism.
    """
    formats = ("%m-%d-%Y %H:%M:%S", "%m-%d-%Y %H:%M", "%m-%d-%Y")
    for fmt in formats:
        try:
            parsed = datetime.strptime(text, fmt)
        except ValueError:
            continue
        # End-of-day semantics for date-only stamps: "the version that
        # existed on that date" includes anything created that day.
        if fmt == "%m-%d-%Y":
            parsed = parsed.replace(hour=23, minute=59, second=59)
        return parsed.replace(tzinfo=timezone.utc).timestamp()
    raise AQLExecutionError(
        f"cannot parse date {text!r}; expected M-D-YYYY[ HH:MM[:SS]]")


class QueryProcessor:
    """Resolves version specs and executes the four select forms."""

    def __init__(self, manager: VersionedStorageManager):
        self.manager = manager

    # ------------------------------------------------------------------
    # Version resolution
    # ------------------------------------------------------------------
    def resolve(self, spec: VersionSpec) -> list[int]:
        """The concrete version ids a spec denotes (ordered)."""
        if spec.all_versions:
            versions = self.manager.get_versions(spec.array)
            if not versions:
                raise VersionNotFoundError(
                    f"array {spec.array!r} has no versions")
            return versions
        if spec.date is not None:
            return [self.manager.version_at(spec.array,
                                            parse_date(spec.date))]
        if spec.label is not None:
            return [self.manager.version_for_label(spec.array,
                                                   spec.label)]
        return [spec.version]

    # ------------------------------------------------------------------
    # The four select forms
    # ------------------------------------------------------------------
    def select_version(self, array: str, version: int) -> ArrayData:
        """Form 1: array name + version id -> full contents."""
        return self.manager.select(array, version)

    def select_window(self, array: str, version: int,
                      corner_lo: tuple[int, ...],
                      corner_hi: tuple[int, ...]) -> ArrayData:
        """Form 2: + two opposite corners of a hyper-rectangle."""
        return self.manager.select_region(array, version, corner_lo,
                                          corner_hi)

    def select_stack(self, array: str, versions: list[int],
                     attribute: str | None = None) -> np.ndarray:
        """Form 3: ordered version list -> N+1-dimensional stack."""
        return self.manager.select_versions(array, versions, attribute)

    def select_stack_window(self, array: str, versions: list[int],
                            corner_lo: tuple[int, ...],
                            corner_hi: tuple[int, ...],
                            attribute: str | None = None) -> np.ndarray:
        """Form 4: version list + hyper-rectangle -> stacked windows."""
        return self.manager.select_versions_region(
            array, versions, corner_lo, corner_hi, attribute)

    # ------------------------------------------------------------------
    # Spec-driven entry point (used by the AQL executor)
    # ------------------------------------------------------------------
    def select(self, spec: VersionSpec,
               window: tuple[tuple[int, ...], tuple[int, ...]] | None = None,
               time_range: tuple[int, int] | None = None) -> np.ndarray:
        """Evaluate any select against a version spec.

        ``window`` restricts the spatial region; ``time_range`` (pairs of
        zero-based indices into the resolved version list, inclusive)
        restricts the stacked dimension — this is how ``SUBSAMPLE`` maps
        onto the processor.  Single-version selects return N-dimensional
        arrays; multi-version selects return N+1-dimensional stacks.
        """
        versions = self.resolve(spec)
        if time_range is not None:
            first, last = time_range
            if not (0 <= first <= last < len(versions)):
                raise AQLExecutionError(
                    f"time range {time_range} outside the "
                    f"{len(versions)} stacked versions")
            versions = versions[first:last + 1]

        single = len(versions) == 1 and not spec.all_versions \
            and time_range is None
        if single:
            if window is None:
                return self.select_version(spec.array,
                                           versions[0]).single()
            return self.select_window(spec.array, versions[0],
                                      *window).single()
        if window is None:
            return self.select_stack(spec.array, versions)
        return self.select_stack_window(spec.array, versions, *window)
