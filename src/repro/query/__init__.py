"""Query layer: the four select primitives and the AQL dialect."""

from repro.query.aql import (
    AQLExecutor,
    AQLResult,
    BranchStatement,
    CreateArrayStatement,
    DeleteVersionStatement,
    DropArrayStatement,
    LoadStatement,
    MergeStatement,
    SelectStatement,
    VersionsStatement,
    parse,
    tokenize,
)
from repro.query.engine import Database, spec_from_string
from repro.query.processor import QueryProcessor, VersionSpec, parse_date

__all__ = [
    "AQLExecutor",
    "AQLResult",
    "BranchStatement",
    "CreateArrayStatement",
    "Database",
    "DeleteVersionStatement",
    "DropArrayStatement",
    "LoadStatement",
    "MergeStatement",
    "QueryProcessor",
    "SelectStatement",
    "VersionSpec",
    "VersionsStatement",
    "parse",
    "parse_date",
    "spec_from_string",
    "tokenize",
]
