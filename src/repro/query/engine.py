"""The ``Database`` facade: storage manager + query processor + AQL.

This is the top of Figure 1: declarative statements come in, the query
processor translates them into storage-system commands, and results flow
back.  It is also the public entry point the examples use.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.array import ArrayData, Payload
from repro.core.schema import ArraySchema
from repro.query.aql import AQLExecutor, AQLResult
from repro.query.processor import QueryProcessor, VersionSpec
from repro.storage.chunking import DEFAULT_CHUNK_BYTES
from repro.storage.manager import VersionedStorageManager


class Database:
    """A versioned array database rooted at a directory.

    >>> db = Database("/tmp/mydb")                        # doctest: +SKIP
    >>> db.execute("CREATE UPDATABLE ARRAY Example "
    ...            "( A::INTEGER ) [ I=0:2, J=0:2 ];")    # doctest: +SKIP
    """

    def __init__(self, root: str | Path, *,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 compressor: str = "none",
                 delta_codec: str = "hybrid",
                 delta_policy: str = "chain",
                 placement: str = "colocated",
                 backend: str | None = None,
                 cache_chunks: int = 0,
                 cache_bytes: int = 0,
                 workers: int | None = None,
                 fuse_chains: bool | None = None):
        self.manager = VersionedStorageManager(
            root,
            chunk_bytes=chunk_bytes,
            compressor=compressor,
            delta_codec=delta_codec,
            delta_policy=delta_policy,
            placement=placement,
            backend=backend,
            cache_chunks=cache_chunks,
            cache_bytes=cache_bytes,
            workers=workers,
            fuse_chains=fuse_chains)
        self.processor = QueryProcessor(self.manager)
        self.executor = AQLExecutor(self.manager, base_path=Path(root))

    # ------------------------------------------------------------------
    # Declarative interface
    # ------------------------------------------------------------------
    def execute(self, aql: str) -> AQLResult:
        """Run one AQL statement (Appendix A syntax)."""
        return self.executor.execute(aql)

    # ------------------------------------------------------------------
    # Programmatic interface
    # ------------------------------------------------------------------
    def create_array(self, name: str, schema: ArraySchema, **kwargs):
        return self.manager.create_array(name, schema, **kwargs)

    def insert(self, name: str,
               payload: Payload | ArrayData | np.ndarray,
               timestamp: float | None = None, *,
               workers: int | None = None) -> int:
        """Append one version; ``workers`` overrides the database's
        configured encode parallelism for this one insert."""
        return self.manager.insert(name, payload, timestamp,
                                   workers=workers)

    def select(self, spec: str | VersionSpec, **kwargs) -> np.ndarray:
        """Select by spec string (``"Example@3"``, ``"Example@*"``)."""
        if isinstance(spec, str):
            spec = spec_from_string(spec)
        return self.processor.select(spec, **kwargs)

    def versions(self, name: str) -> list[int]:
        return self.manager.get_versions(name)

    def branch(self, source: str, version: int, new_name: str, *,
               workers: int | None = None):
        return self.manager.branch(source, version, new_name,
                                   workers=workers)

    def merge(self, parents: list[tuple[str, int]], new_name: str, *,
              workers: int | None = None):
        return self.manager.merge(parents, new_name, workers=workers)

    def properties(self, name: str) -> dict:
        return self.manager.properties(name)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The store's I/O counters (bytes, chunks, file opens)."""
        return self.manager.stats

    def cache_info(self) -> dict:
        """Chunk-cache budgets, occupancy, and hit/miss counters."""
        return self.manager.cache_info()

    def close(self) -> None:
        self.manager.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def spec_from_string(text: str) -> VersionSpec:
    """Parse ``Name@3`` / ``Name@'1-5-2011'`` / ``Name@*`` spec strings."""
    from repro.core.errors import AQLSyntaxError

    if "@" not in text:
        raise AQLSyntaxError(f"version spec {text!r} needs an '@'")
    name, _, version = text.partition("@")
    name = name.strip()
    version = version.strip()
    if version == "*":
        return VersionSpec(array=name, all_versions=True)
    if version.startswith("'") and version.endswith("'"):
        return VersionSpec(array=name, date=version[1:-1])
    try:
        return VersionSpec(array=name, version=int(version))
    except ValueError:
        pass
    if version.isidentifier():
        return VersionSpec(array=name, label=version)
    raise AQLSyntaxError(
        f"cannot parse version {version!r} in spec {text!r}")
