"""A parser and executor for the AQL dialect of Appendix A.

Supported statements (semicolons optional, keywords case-insensitive)::

    CREATE UPDATABLE ARRAY Example ( A::INTEGER ) [ I=0:2, J=0:2 ];
    LOAD Example FROM 'array_file.npy';
    VERSIONS(Example);
    SELECT * FROM Example@2;
    SELECT * FROM Example@'1-5-2011';
    SELECT * FROM Example@*;
    SELECT * FROM SUBSAMPLE(Example@*, 0, 1, 1, 2, 2, 3);
    BRANCH(Example@2 NewBranch);
    MERGE(Example@3, NewBranch@1, Combined);
    DROP ARRAY Example;
    DELETE VERSION Example@2;

The paper spells UPDATABLE both with and without the extra E; both are
accepted.  ``SUBSAMPLE`` takes inclusive (lo, hi) coordinate pairs per
spatial axis, plus an optional trailing pair indexing the stacked time
axis when the target is a multi-version stack — exactly the Appendix A
example, which selects a 2x2x2 cube from a 3x3x3 stack.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.errors import AQLExecutionError, AQLSyntaxError
from repro.core.schema import (
    ArraySchema,
    Attribute,
    Dimension,
    dtype_for_aql_type,
)
from repro.query.processor import QueryProcessor, VersionSpec
from repro.storage.manager import VersionedStorageManager

# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*')
  | (?P<number>-?\d+)
  | (?P<dcolon>::)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<symbol>[()\[\],;@*=:])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "string" | "symbol"
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Split an AQL statement into tokens."""
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise AQLSyntaxError(
                f"unexpected character {source[position]!r}", position)
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            position = match.end()
            continue
        if kind == "dcolon":
            kind = "symbol"
        if kind == "string":
            text = text[1:-1]
        tokens.append(Token(kind, text, position))
        position = match.end()
    return tokens


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateArrayStatement:
    name: str
    schema: ArraySchema


@dataclass(frozen=True)
class LoadStatement:
    name: str
    path: str


@dataclass(frozen=True)
class VersionsStatement:
    name: str


@dataclass(frozen=True)
class SelectStatement:
    spec: VersionSpec
    subsample: tuple[int, ...] | None = None


@dataclass(frozen=True)
class BranchStatement:
    source: VersionSpec
    new_name: str


@dataclass(frozen=True)
class MergeStatement:
    parents: tuple[VersionSpec, ...]
    new_name: str


@dataclass(frozen=True)
class LabelStatement:
    spec: VersionSpec
    label: str


@dataclass(frozen=True)
class DropArrayStatement:
    name: str


@dataclass(frozen=True)
class DeleteVersionStatement:
    spec: VersionSpec


Statement = (CreateArrayStatement | LoadStatement | VersionsStatement
             | SelectStatement | BranchStatement | MergeStatement
             | LabelStatement | DropArrayStatement
             | DeleteVersionStatement)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.at = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> Token | None:
        return self.tokens[self.at] if self.at < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise AQLSyntaxError("unexpected end of statement",
                                 len(self.source))
        self.at += 1
        return token

    def expect_symbol(self, text: str) -> Token:
        token = self.next()
        if token.kind != "symbol" or token.text != text:
            raise AQLSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.position)
        return token

    def expect_ident(self, keyword: str | None = None) -> Token:
        token = self.next()
        if token.kind != "ident":
            raise AQLSyntaxError(
                f"expected identifier, found {token.text!r}",
                token.position)
        if keyword is not None and token.text.upper() != keyword:
            raise AQLSyntaxError(
                f"expected {keyword}, found {token.text!r}", token.position)
        return token

    def expect_number(self) -> int:
        token = self.next()
        if token.kind != "number":
            raise AQLSyntaxError(
                f"expected number, found {token.text!r}", token.position)
        return int(token.text)

    def accept_symbol(self, text: str) -> bool:
        token = self.peek()
        if token and token.kind == "symbol" and token.text == text:
            self.at += 1
            return True
        return False

    def keyword_is(self, *words: str) -> bool:
        token = self.peek()
        return bool(token and token.kind == "ident"
                    and token.text.upper() in words)

    # -- grammar --------------------------------------------------------
    def statement(self) -> Statement:
        token = self.peek()
        if token is None:
            raise AQLSyntaxError("empty statement", 0)
        keyword = token.text.upper() if token.kind == "ident" else ""
        handlers = {
            "CREATE": self._create,
            "LOAD": self._load,
            "VERSIONS": self._versions,
            "SELECT": self._select,
            "BRANCH": self._branch,
            "MERGE": self._merge,
            "LABEL": self._label,
            "DROP": self._drop,
            "DELETE": self._delete,
        }
        if keyword not in handlers:
            raise AQLSyntaxError(
                f"unknown statement {token.text!r}", token.position)
        result = handlers[keyword]()
        self.accept_symbol(";")
        trailing = self.peek()
        if trailing is not None:
            raise AQLSyntaxError(
                f"unexpected trailing input {trailing.text!r}",
                trailing.position)
        return result

    def _create(self) -> CreateArrayStatement:
        self.expect_ident("CREATE")
        token = self.expect_ident()
        if token.text.upper() not in ("UPDATABLE", "UPDATEABLE"):
            raise AQLSyntaxError(
                f"expected UPDATABLE, found {token.text!r}", token.position)
        self.expect_ident("ARRAY")
        name = self.expect_ident().text

        self.expect_symbol("(")
        attributes = []
        while True:
            attr_name = self.expect_ident().text
            self.expect_symbol("::")
            type_name = self.expect_ident().text
            attributes.append(Attribute(attr_name,
                                        dtype_for_aql_type(type_name)))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")

        self.expect_symbol("[")
        dimensions = []
        while True:
            dim_name = self.expect_ident().text
            self.expect_symbol("=")
            lo = self.expect_number()
            self.expect_symbol(":")
            hi = self.expect_number()
            dimensions.append(Dimension(dim_name, lo, hi))
            if not self.accept_symbol(","):
                break
        self.expect_symbol("]")
        schema = ArraySchema(dimensions=tuple(dimensions),
                             attributes=tuple(attributes))
        return CreateArrayStatement(name=name, schema=schema)

    def _load(self) -> LoadStatement:
        self.expect_ident("LOAD")
        name = self.expect_ident().text
        self.expect_ident("FROM")
        token = self.next()
        if token.kind != "string":
            raise AQLSyntaxError("LOAD expects a quoted file path",
                                 token.position)
        return LoadStatement(name=name, path=token.text)

    def _versions(self) -> VersionsStatement:
        self.expect_ident("VERSIONS")
        self.expect_symbol("(")
        name = self.expect_ident().text
        self.expect_symbol(")")
        return VersionsStatement(name=name)

    def _select(self) -> SelectStatement:
        self.expect_ident("SELECT")
        self.expect_symbol("*")
        self.expect_ident("FROM")
        if self.keyword_is("SUBSAMPLE"):
            self.next()
            self.expect_symbol("(")
            spec = self._version_spec()
            coordinates = []
            while self.accept_symbol(","):
                coordinates.append(self.expect_number())
            self.expect_symbol(")")
            if not coordinates or len(coordinates) % 2:
                raise AQLSyntaxError(
                    "SUBSAMPLE needs an even, nonzero number of "
                    "coordinates (lo/hi pairs)")
            return SelectStatement(spec=spec,
                                   subsample=tuple(coordinates))
        return SelectStatement(spec=self._version_spec())

    def _branch(self) -> BranchStatement:
        self.expect_ident("BRANCH")
        self.expect_symbol("(")
        source = self._version_spec()
        new_name = self.expect_ident().text
        self.expect_symbol(")")
        return BranchStatement(source=source, new_name=new_name)

    def _merge(self) -> MergeStatement:
        self.expect_ident("MERGE")
        self.expect_symbol("(")
        parents = [self._version_spec()]
        names: list[str] = []
        while self.accept_symbol(","):
            if self._looks_like_spec():
                parents.append(self._version_spec())
            else:
                names.append(self.expect_ident().text)
        self.expect_symbol(")")
        if len(names) != 1:
            raise AQLSyntaxError(
                "MERGE expects parent@version references followed by "
                "one new array name")
        return MergeStatement(parents=tuple(parents), new_name=names[0])

    def _label(self) -> LabelStatement:
        # LABEL(Example@3 calibrated);
        self.expect_ident("LABEL")
        self.expect_symbol("(")
        spec = self._version_spec()
        label = self.expect_ident().text
        self.expect_symbol(")")
        return LabelStatement(spec=spec, label=label)

    def _drop(self) -> DropArrayStatement:
        self.expect_ident("DROP")
        self.expect_ident("ARRAY")
        return DropArrayStatement(name=self.expect_ident().text)

    def _delete(self) -> DeleteVersionStatement:
        self.expect_ident("DELETE")
        self.expect_ident("VERSION")
        return DeleteVersionStatement(spec=self._version_spec())

    def _looks_like_spec(self) -> bool:
        """A spec is IDENT '@' ...; a bare name is just IDENT."""
        token = self.peek()
        after = self.tokens[self.at + 1] if self.at + 1 < \
            len(self.tokens) else None
        return bool(token and token.kind == "ident" and after
                    and after.kind == "symbol" and after.text == "@")

    def _version_spec(self) -> VersionSpec:
        name = self.expect_ident().text
        self.expect_symbol("@")
        token = self.next()
        if token.kind == "number":
            return VersionSpec(array=name, version=int(token.text))
        if token.kind == "string":
            return VersionSpec(array=name, date=token.text)
        if token.kind == "ident":
            # An unquoted identifier names a labelled version
            # ("selecting versions by ... arbitrary labels").
            return VersionSpec(array=name, label=token.text)
        if token.kind == "symbol" and token.text == "*":
            return VersionSpec(array=name, all_versions=True)
        raise AQLSyntaxError(
            f"expected version id, date, label, or '*', "
            f"found {token.text!r}", token.position)


def parse(source: str) -> Statement:
    """Parse one AQL statement."""
    return _Parser(tokenize(source), source).statement()


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
@dataclass
class AQLResult:
    """The outcome of one statement.

    ``kind`` names the statement type; ``value`` carries the payload —
    an ndarray for selects, a list of ``Name@N`` strings for VERSIONS,
    a version id for LOAD, None for DDL.
    """

    kind: str
    value: object = None


class AQLExecutor:
    """Executes parsed statements against a storage manager."""

    def __init__(self, manager: VersionedStorageManager,
                 base_path: str | Path = "."):
        self.manager = manager
        self.processor = QueryProcessor(manager)
        self.base_path = Path(base_path)

    def execute(self, source: str) -> AQLResult:
        """Parse and run one statement."""
        return self.run(parse(source))

    def run(self, statement: Statement) -> AQLResult:
        if isinstance(statement, CreateArrayStatement):
            self.manager.create_array(statement.name, statement.schema)
            return AQLResult("create", statement.name)
        if isinstance(statement, LoadStatement):
            version = self.manager.insert(
                statement.name, self._read_payload(statement))
            return AQLResult("load", version)
        if isinstance(statement, VersionsStatement):
            versions = self.manager.get_versions(statement.name)
            return AQLResult(
                "versions",
                [f"{statement.name}@{v}" for v in versions])
        if isinstance(statement, SelectStatement):
            return AQLResult("select", self._run_select(statement))
        if isinstance(statement, BranchStatement):
            versions = self.processor.resolve(statement.source)
            self.manager.branch(statement.source.array, versions[0],
                                statement.new_name)
            return AQLResult("branch", statement.new_name)
        if isinstance(statement, MergeStatement):
            parents = []
            for spec in statement.parents:
                resolved = self.processor.resolve(spec)
                parents.extend((spec.array, v) for v in resolved)
            self.manager.merge(parents, statement.new_name)
            return AQLResult("merge", statement.new_name)
        if isinstance(statement, LabelStatement):
            versions = self.processor.resolve(statement.spec)
            self.manager.label_version(statement.spec.array, versions[0],
                                       statement.label)
            return AQLResult("label", statement.label)
        if isinstance(statement, DropArrayStatement):
            self.manager.delete_array(statement.name)
            return AQLResult("drop", statement.name)
        if isinstance(statement, DeleteVersionStatement):
            versions = self.processor.resolve(statement.spec)
            self.manager.delete_version(statement.spec.array, versions[0])
            return AQLResult("delete-version", versions[0])
        raise AQLExecutionError(
            f"unhandled statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    def _read_payload(self, statement: LoadStatement) -> np.ndarray:
        """LOAD payloads: .npy files, or raw row-major cell bytes."""
        path = self.base_path / statement.path
        if not path.exists():
            raise AQLExecutionError(f"LOAD file not found: {path}")
        record = self.manager.catalog.get_array(statement.name)
        schema = record.schema
        if path.suffix == ".npy":
            return np.load(path)
        if len(schema.attributes) != 1:
            raise AQLExecutionError(
                "raw LOAD supports single-attribute arrays only; "
                "use .npy for multi-attribute payloads")
        dtype = schema.attributes[0].dtype
        raw = path.read_bytes()
        expected = schema.cell_count * dtype.itemsize
        if len(raw) != expected:
            raise AQLExecutionError(
                f"LOAD file is {len(raw)} bytes; schema needs {expected}")
        return np.frombuffer(raw, dtype=dtype).reshape(schema.shape).copy()

    def _run_select(self, statement: SelectStatement) -> np.ndarray:
        spec = statement.spec
        if statement.subsample is None:
            return self.processor.select(spec)

        record = self.manager.catalog.get_array(spec.array)
        ndim = record.schema.ndim
        pairs = [tuple(statement.subsample[i:i + 2])
                 for i in range(0, len(statement.subsample), 2)]
        if len(pairs) == ndim:
            window_pairs, time_range = pairs, None
        elif len(pairs) == ndim + 1:
            window_pairs, time_range = pairs[:-1], pairs[-1]
        else:
            raise AQLExecutionError(
                f"SUBSAMPLE got {len(pairs)} coordinate pairs; array has "
                f"{ndim} dimensions (pass {ndim} pairs, or {ndim + 1} "
                "with a trailing time range)")
        corner_lo = tuple(lo for lo, _ in window_pairs)
        corner_hi = tuple(hi for _, hi in window_pairs)
        return self.processor.select(spec, window=(corner_lo, corner_hi),
                                     time_range=time_range)
