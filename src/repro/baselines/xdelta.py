"""A block-hash binary delta (the xdelta family).

Both Subversion and Git encode file history with generic binary deltas
of this family: index the base at fixed block boundaries by hash, scan
the target greedily, and emit copy/literal instructions.  This
implementation is shared by the :mod:`repro.baselines.svn_like` and
:mod:`repro.baselines.git_like` repositories so that the comparison
systems of Tables VI/VII have a competent, realistic delta engine — the
point of those tables is not that generic VCS deltas are naive, but that
they are *array-oblivious*.

Stream format (zlib-compressed): a sequence of ``(opcode, a, b)`` i64
triples — COPY(base offset, length) or LITERAL(length) followed by the
literal bytes collected in a trailing section.
"""

from __future__ import annotations

import numpy as np

from repro.compression.lz import lz_bytes, unlz_bytes
from repro.core.errors import CodecError
from repro.core.serial import pack_bytes, pack_i64, unpack_bytes, unpack_i64

_COPY = 0
_LITERAL = 1
DEFAULT_BLOCK = 16


def xdelta_encode(target: bytes, base: bytes,
                  block: int = DEFAULT_BLOCK) -> bytes:
    """Encode ``target`` as copy/literal ops against ``base``."""
    index: dict[bytes, int] = {}
    for position in range(0, max(0, len(base) - block + 1), block):
        index.setdefault(base[position:position + block], position)

    ops: list[tuple[int, int, int]] = []
    literals = bytearray()
    literal_run = 0
    scan = 0
    n = len(target)
    base_view = np.frombuffer(base, dtype=np.uint8)
    target_view = np.frombuffer(target, dtype=np.uint8)

    def flush_literal():
        nonlocal literal_run
        if literal_run:
            ops.append((_LITERAL, literal_run, 0))
            literal_run = 0

    while scan < n:
        probe = target[scan:scan + block]
        position = index.get(probe) if len(probe) == block else None
        if position is None:
            literals.append(target[scan])
            literal_run += 1
            scan += 1
            continue
        # Extend the match forward as far as bytes agree.
        limit = min(n - scan, len(base) - position)
        window_t = target_view[scan:scan + limit]
        window_b = base_view[position:position + limit]
        mismatch = np.flatnonzero(window_t != window_b)
        length = int(mismatch[0]) if mismatch.size else limit
        if length < block:
            literals.append(target[scan])
            literal_run += 1
            scan += 1
            continue
        flush_literal()
        ops.append((_COPY, position, length))
        scan += length
    flush_literal()

    stream = b"".join(pack_i64(op) + pack_i64(a) + pack_i64(b)
                      for op, a, b in ops)
    return pack_bytes(lz_bytes(stream)) + pack_bytes(lz_bytes(bytes(literals)))


def xdelta_decode(data: bytes, base: bytes) -> bytes:
    """Inverse of :func:`xdelta_encode`."""
    stream_blob, offset = unpack_bytes(data, 0)
    literal_blob, _ = unpack_bytes(data, offset)
    stream = unlz_bytes(stream_blob)
    literals = unlz_bytes(literal_blob)

    output = bytearray()
    literal_at = 0
    position = 0
    while position < len(stream):
        opcode, position = unpack_i64(stream, position)
        a, position = unpack_i64(stream, position)
        b, position = unpack_i64(stream, position)
        if opcode == _COPY:
            if a < 0 or a + b > len(base):
                raise CodecError("xdelta copy outside base bounds")
            output.extend(base[a:a + b])
        elif opcode == _LITERAL:
            output.extend(literals[literal_at:literal_at + a])
            literal_at += a
        else:
            raise CodecError(f"unknown xdelta opcode {opcode}")
    return bytes(output)
