"""Common interface for the comparison version-control systems.

Section V-C: "we compare our system against two widely used
general-purpose versioning systems, SVN and GIT.  For both SVN and GIT,
we mapped each matrix to a versioned file, and committed each version in
sequence order."  The baselines reproduce that protocol: byte-oriented
repositories that know nothing about array structure — no chunking, so
a subselect must read (and reconstruct) the whole file.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

from repro.storage.iostats import IOStats


class BaselineVCS(ABC):
    """A general-purpose versioned file store."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = IOStats()

    @abstractmethod
    def commit(self, files: dict[str, bytes]) -> int:
        """Commit new contents for the given files; returns revision."""

    @abstractmethod
    def read(self, name: str, revision: int) -> bytes:
        """Full contents of one file at one revision (1-based)."""

    @abstractmethod
    def pack(self) -> None:
        """The offline optimization step (svnadmin pack / git repack)."""

    def data_size(self) -> int:
        """Total bytes on disk."""
        return sum(f.stat().st_size for f in self.root.rglob("*")
                   if f.is_file())

    def subselect(self, name: str, revision: int,
                  offset: int, length: int) -> bytes:
        """Read a byte range of a file version.

        General-purpose VCSs have no partial access: the whole version
        is reconstructed and sliced — the effect Table VI quantifies
        ("45x slower for single chunk selects").
        """
        return self.read(name, revision)[offset:offset + length]
