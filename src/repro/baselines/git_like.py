"""A Git-model repository (the Table VI/VII comparison system).

Models the parts of Git's object store the paper discusses in
Section VI:

* loose objects: every committed file version is a zlib-compressed,
  content-addressed blob;
* ``git repack``: "In order to build an efficient delta tree, Git
  considers a variety of file characteristics, such as file size and
  type ... It then sorts files by similarity, and differences each file
  with several of its nearest neighbors to try to find the optimal
  match."  The repack pass sorts blobs by (path, size descending),
  slides a ``window`` over the sorted list, delta-encodes each object
  against the windowed candidates keeping the best result, bounds chain
  depth, and writes a single pack file (consecutive deltas co-located,
  which is Git's read-locality trick the paper also mentions);
* a memory budget: repack keeps the window's blobs plus the candidate
  in memory.  With 1 GB arrays and a 10-object default window this is
  what made "Git run out of memory on our test machine" in Table VI —
  reproduced via ``memory_limit_bytes``.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path

from repro.baselines.base import BaselineVCS
from repro.baselines.xdelta import xdelta_decode, xdelta_encode
from repro.core.errors import StorageError


class GitOutOfMemoryError(MemoryError):
    """Raised when repack exceeds the configured memory budget."""


class GitLikeRepository(BaselineVCS):
    """Content-addressed object store with similarity-window packing."""

    def __init__(self, root: str | Path, *,
                 window: int = 10,
                 max_chain_depth: int = 50,
                 memory_limit_bytes: int | None = None):
        super().__init__(root)
        self.window = window
        self.max_chain_depth = max_chain_depth
        self.memory_limit_bytes = memory_limit_bytes
        #: name -> list of object ids, one per revision.
        self._history: dict[str, list[str]] = {}
        self._packed: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Commits (loose objects)
    # ------------------------------------------------------------------
    def commit(self, files: dict[str, bytes]) -> int:
        revision = 0
        for name, contents in files.items():
            object_id = hashlib.sha1(
                b"blob %d\0" % len(contents) + contents).hexdigest()
            history = self._history.setdefault(name, [])
            history.append(object_id)
            revision = len(history)
            path = self._loose_path(object_id)
            if not path.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
                payload = zlib.compress(contents, 6)
                path.write_bytes(payload)
                self.stats.record_write(len(payload))
        return revision

    def read(self, name: str, revision: int) -> bytes:
        history = self._history.get(name, [])
        if revision < 1 or revision > len(history):
            raise StorageError(f"{name!r} has no revision {revision}")
        return self._read_object(history[revision - 1])

    # ------------------------------------------------------------------
    # git repack
    # ------------------------------------------------------------------
    def pack(self) -> None:
        # Gather every loose object with its path hint and size.
        entries = []
        seen: set[str] = set()
        for name, history in self._history.items():
            for object_id in history:
                if object_id in seen:
                    continue
                seen.add(object_id)
                contents = self._read_object(object_id)
                entries.append((name, len(contents), object_id, contents))

        if self.memory_limit_bytes is not None:
            window_entries = sorted(
                (size for _, size, _, _ in entries), reverse=True)
            peak = sum(window_entries[:self.window + 1])
            if peak > self.memory_limit_bytes:
                raise GitOutOfMemoryError(
                    f"repack window needs ~{peak} bytes, limit is "
                    f"{self.memory_limit_bytes}")

        # Git's similarity sort: path, then size descending.
        entries.sort(key=lambda entry: (entry[0], -entry[1]))

        index: dict[str, dict] = {}
        depth: dict[str, int] = {}
        pack_path = self.root / "objects.pack"
        with open(pack_path, "wb") as pack:
            recent: list[tuple[str, bytes]] = []
            for name, size, object_id, contents in entries:
                best_payload = zlib.compress(contents, 6)
                best_base: str | None = None
                for base_id, base_contents in recent:
                    if depth.get(base_id, 0) + 1 > self.max_chain_depth:
                        continue
                    delta = zlib.compress(
                        xdelta_encode(contents, base_contents), 6)
                    if len(delta) < len(best_payload):
                        best_payload = delta
                        best_base = base_id
                offset = pack.tell()
                pack.write(best_payload)
                self.stats.record_write(len(best_payload))
                index[object_id] = {
                    "offset": offset,
                    "length": len(best_payload),
                    "base": best_base,
                }
                depth[object_id] = 0 if best_base is None else \
                    depth[best_base] + 1
                recent.append((object_id, contents))
                if len(recent) > self.window:
                    recent.pop(0)
        (self.root / "objects.pack.idx").write_text(json.dumps(index))
        self._packed = index
        # Loose objects are superseded by the pack.
        for _, _, object_id, _ in entries:
            loose = self._loose_path(object_id)
            if loose.exists():
                loose.unlink()

    # ------------------------------------------------------------------
    def _loose_path(self, object_id: str) -> Path:
        return self.root / "objects" / object_id[:2] / object_id[2:]

    def _read_object(self, object_id: str) -> bytes:
        if self._packed and object_id in self._packed:
            entry = self._packed[object_id]
            with open(self.root / "objects.pack", "rb") as pack:
                pack.seek(entry["offset"])
                payload = pack.read(entry["length"])
            self.stats.record_read(len(payload))
            raw = zlib.decompress(payload)
            if entry["base"] is None:
                return raw
            return xdelta_decode(raw, self._read_object(entry["base"]))
        path = self._loose_path(object_id)
        if not path.exists():
            raise StorageError(f"missing object {object_id}")
        payload = path.read_bytes()
        self.stats.record_read(len(payload))
        return zlib.decompress(payload)
