"""Comparison systems: SVN-like and Git-like repositories (Section V-C)."""

from repro.baselines.base import BaselineVCS
from repro.baselines.git_like import GitLikeRepository, GitOutOfMemoryError
from repro.baselines.svn_like import SvnLikeRepository
from repro.baselines.xdelta import xdelta_decode, xdelta_encode

__all__ = [
    "BaselineVCS",
    "GitLikeRepository",
    "GitOutOfMemoryError",
    "SvnLikeRepository",
    "xdelta_decode",
    "xdelta_encode",
]
