"""An SVN-model repository (the Table VI/VII comparison system).

Models the aspects of Subversion that drive the paper's measurements:

* per-file revision storage: each committed revision of each file is a
  separate rev container, delta-encoded (xdelta-style, as FSFS does)
  against the file's previous revision, with periodic full texts
  (skip-delta anchors) bounding reconstruction chains;
* *no array awareness*: a matrix is an opaque byte string, so deltas
  cannot exploit cell structure and subselects reconstruct entire files;
* a large-file cutoff: revisions of files above ``max_delta_bytes`` are
  stored as full texts.  This models the behaviour behind Table VI,
  where SVN achieved *no* compression on the 1 GB OSM arrays (16 GB for
  16 revisions) while compressing the small NOAA matrices ~2.3x in
  Table VII.  Benchmarks scale this cutoff together with the scaled
  array sizes (see EXPERIMENTS.md);
* :meth:`pack` — ``svnadmin pack``: coalesces per-revision files into
  pack files (fewer inodes, same bytes), as the paper ran before
  measuring.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.baselines.base import BaselineVCS
from repro.baselines.xdelta import xdelta_decode, xdelta_encode
from repro.core.errors import StorageError


class SvnLikeRepository(BaselineVCS):
    """File-per-revision store with backward-bounded delta chains."""

    def __init__(self, root: str | Path, *,
                 fulltext_interval: int = 16,
                 max_delta_bytes: int | None = None):
        super().__init__(root)
        self.fulltext_interval = fulltext_interval
        self.max_delta_bytes = max_delta_bytes
        self._revisions: dict[str, int] = {}
        self._packed = False

    # ------------------------------------------------------------------
    def commit(self, files: dict[str, bytes]) -> int:
        revision = 0
        for name, contents in files.items():
            revision = self._revisions.get(name, 0) + 1
            self._revisions[name] = revision
            path = self._rev_path(name, revision)
            path.parent.mkdir(parents=True, exist_ok=True)

            too_large = (self.max_delta_bytes is not None
                         and len(contents) > self.max_delta_bytes)
            anchor = (revision - 1) % self.fulltext_interval == 0
            if revision == 1 or anchor:
                payload = b"F" + contents
            else:
                # SVN always runs its deltification pass; on files past
                # the cutoff the result is discarded and the revision
                # stored fulltext — the work is paid either way, which
                # is what made the paper's SVN import so slow.
                base = self.read(name, revision - 1)
                delta = xdelta_encode(contents, base)
                if too_large or len(delta) + 1 >= len(contents):
                    payload = b"F" + contents
                else:
                    payload = b"D" + delta
            path.write_bytes(payload)
            self.stats.record_write(len(payload))
        return revision

    def read(self, name: str, revision: int) -> bytes:
        if revision < 1 or revision > self._revisions.get(name, 0):
            raise StorageError(
                f"{name!r} has no revision {revision}")
        payload = self._read_rev(name, revision)
        if payload[:1] == b"F":
            return payload[1:]
        base = self.read(name, revision - 1)
        return xdelta_decode(payload[1:], base)

    def pack(self) -> None:
        """``svnadmin pack``: concatenate rev files into one pack/file."""
        for name, latest in self._revisions.items():
            pack_path = self.root / f"{name}.pack"
            index = {}
            with open(pack_path, "wb") as pack:
                for revision in range(1, latest + 1):
                    payload = self._read_rev(name, revision)
                    index[str(revision)] = (pack.tell(), len(payload))
                    pack.write(payload)
            (self.root / f"{name}.pack.idx").write_text(json.dumps(index))
            for revision in range(1, latest + 1):
                self._rev_path(name, revision).unlink()
        self._packed = True

    # ------------------------------------------------------------------
    def _rev_path(self, name: str, revision: int) -> Path:
        return self.root / name / f"r{revision:06d}"

    def _read_rev(self, name: str, revision: int) -> bytes:
        if self._packed:
            index = json.loads(
                (self.root / f"{name}.pack.idx").read_text())
            offset, length = index[str(revision)]
            with open(self.root / f"{name}.pack", "rb") as pack:
                pack.seek(offset)
                payload = pack.read(length)
        else:
            payload = self._rev_path(name, revision).read_bytes()
        self.stats.record_read(len(payload))
        return payload
