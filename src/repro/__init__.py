"""repro — a versioned storage manager for scientific array databases.

A from-scratch reproduction of *Efficient Versioning for Scientific
Array Databases* (Seering, Cudre-Mauroux, Madden, Stonebraker —
ICDE 2012): a chunked, no-overwrite array store that automatically
delta-encodes versions, spanning-tree/forest algorithms that choose
which versions to materialize, workload-aware layouts, and an AQL-style
declarative front end.

Quickstart::

    import numpy as np
    from repro import Database

    db = Database("/tmp/arrays")
    db.execute("CREATE UPDATABLE ARRAY Example "
               "( A::INTEGER ) [ I=0:2, J=0:2 ];")
    db.insert("Example", np.arange(9, dtype=np.int32).reshape(3, 3))
    db.insert("Example", 2 * np.arange(9, dtype=np.int32).reshape(3, 3))
    stack = db.execute("SELECT * FROM Example@*;").value   # 2x3x3

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro.cluster import ClusterCoordinator
from repro.core import (
    ArrayData,
    ArraySchema,
    Attribute,
    DeltaListPayload,
    DensePayload,
    Dimension,
    ReproError,
    SparsePayload,
)
from repro.materialize import (
    BatchUpdatePlanner,
    Layout,
    MaterializationMatrix,
    RangeQuery,
    SnapshotQuery,
    WeightedQuery,
    algorithm1_mst,
    algorithm2_forest,
    head_biased_layout,
    optimal_layout,
    workload_aware_layout,
)
from repro.query import Database, VersionSpec
from repro.storage import VersionedStorageManager

__version__ = "1.0.0"

__all__ = [
    "ArrayData",
    "ArraySchema",
    "Attribute",
    "BatchUpdatePlanner",
    "ClusterCoordinator",
    "Database",
    "DeltaListPayload",
    "DensePayload",
    "Dimension",
    "Layout",
    "MaterializationMatrix",
    "RangeQuery",
    "ReproError",
    "SnapshotQuery",
    "SparsePayload",
    "VersionSpec",
    "VersionedStorageManager",
    "WeightedQuery",
    "algorithm1_mst",
    "algorithm2_forest",
    "head_biased_layout",
    "optimal_layout",
    "workload_aware_layout",
]
