"""Multi-node deployment: range partitioning + a fan-out coordinator.

Implements Section II's distributed picture — one storage-manager
instance per node, each independently delta-encoding its partition —
with ArrayStore-style regular range partitioning (the paper's
reference [2]).
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.partitioning import (
    Band,
    MigrationSlab,
    RangePartitioner,
    rebalance_plan,
)

__all__ = ["Band", "ClusterCoordinator", "MigrationSlab",
           "RangePartitioner", "rebalance_plan"]
