"""Array partitioning across storage nodes (Section II).

"Each array may be partitioned across several storage system nodes, and
each machine runs its own instance of the storage system.  Each node
thereby separately encodes the versions of each partition on its local
storage system."  The paper defers partitioning policy to the ArrayStore
work it cites [2]; this module implements ArrayStore-style *regular
range partitioning*: the array is split into contiguous bands along one
dimension, one band per node.

The partitioner is pure geometry: it maps cells and query regions onto
(node, local-coordinate) pairs.  The coordinator composes it with one
:class:`~repro.storage.manager.VersionedStorageManager` per node (per
replica, when replication is on).

:func:`rebalance_plan` extends the geometry to *resharding*: given the
partitioner of the current cluster and the partitioner of the target
node count, it derives the complete set of :class:`MigrationSlab` moves
— which contiguous row ranges leave which old band for which new band.
The plan is pure and total (the slabs are disjoint and cover the whole
domain), and its order is shuffled deterministically by a seed so the
chaos suite can sweep migration schedules without changing coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import DimensionError, StorageError


@dataclass(frozen=True)
class Band:
    """One node's share: a zero-based inclusive slab along one axis."""

    node: int
    lo: int
    hi: int

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1


class RangePartitioner:
    """Contiguous equal bands along a chosen dimension."""

    def __init__(self, shape: tuple[int, ...], nodes: int,
                 axis: int = 0):
        if nodes < 1:
            raise StorageError("need at least one node")
        if not 0 <= axis < len(shape):
            raise DimensionError(
                f"axis {axis} out of range for shape {shape}")
        if shape[axis] < nodes:
            raise StorageError(
                f"dimension {axis} has {shape[axis]} cells; cannot give "
                f"each of {nodes} nodes a nonempty band")
        self.shape = tuple(shape)
        self.nodes = nodes
        self.axis = axis

        extent = shape[axis]
        base = extent // nodes
        remainder = extent % nodes
        self.bands: list[Band] = []
        cursor = 0
        for node in range(nodes):
            length = base + (1 if node < remainder else 0)
            self.bands.append(Band(node, cursor, cursor + length - 1))
            cursor += length

    # ------------------------------------------------------------------
    def band_of(self, node: int) -> Band:
        if not 0 <= node < self.nodes:
            raise StorageError(f"no node {node} (cluster has "
                               f"{self.nodes})")
        return self.bands[node]

    def local_shape(self, node: int) -> tuple[int, ...]:
        """The shape of one node's partition."""
        band = self.band_of(node)
        shape = list(self.shape)
        shape[self.axis] = band.length
        return tuple(shape)

    def node_for_cell(self, cell: tuple[int, ...]) -> int:
        """The node owning one zero-based cell."""
        coordinate = cell[self.axis]
        for band in self.bands:
            if band.lo <= coordinate <= band.hi:
                return band.node
        raise DimensionError(
            f"cell {cell} outside partitioned extent")

    def to_local(self, node: int,
                 cell: tuple[int, ...]) -> tuple[int, ...]:
        """Translate a global cell into a node's local coordinates."""
        band = self.band_of(node)
        local = list(cell)
        local[self.axis] = cell[self.axis] - band.lo
        return tuple(local)

    def bands_overlapping(self, lo: tuple[int, ...],
                          hi: tuple[int, ...]) -> list[Band]:
        """Nodes whose band intersects a zero-based inclusive region."""
        return [band for band in self.bands
                if band.lo <= hi[self.axis] and lo[self.axis] <= band.hi]

    def clip_region(self, band: Band, lo: tuple[int, ...],
                    hi: tuple[int, ...]
                    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """A region clipped to one band, in that node's local frame."""
        local_lo = list(lo)
        local_hi = list(hi)
        local_lo[self.axis] = max(lo[self.axis], band.lo) - band.lo
        local_hi[self.axis] = min(hi[self.axis], band.hi) - band.lo
        return tuple(local_lo), tuple(local_hi)


@dataclass(frozen=True)
class MigrationSlab:
    """One contiguous slab moving between partitionings during a
    rebalance: global rows ``lo..hi`` (inclusive, along the partition
    axis) leave old band ``source`` for new band ``target``.

    An online rebalance replays every slab once per catch-up pass, so
    a malformed slab (an inverted range, a negative band index) would
    corrupt *every* pass rather than one copy; the invariants are
    therefore validated at construction, not at use.
    """

    source: int
    target: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.source < 0 or self.target < 0:
            raise StorageError(
                f"migration slab bands must be non-negative, got "
                f"source={self.source} target={self.target}")
        if self.lo < 0 or self.hi < self.lo:
            raise StorageError(
                f"migration slab range must satisfy 0 <= lo <= hi, "
                f"got lo={self.lo} hi={self.hi}")

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1


def rebalance_plan(old: "RangePartitioner", new: "RangePartitioner",
                   seed: int = 0) -> list[MigrationSlab]:
    """The migration slabs that reshard ``old`` into ``new``.

    Pure geometry over two partitionings of the *same* array domain:
    every new band's extent is the union of its intersections with the
    old bands, so the returned slabs are pairwise disjoint and cover
    the partition axis exactly once — resharding moves every cell,
    loses none, and duplicates none (the property suite proves all
    three for random geometries).

    ``seed`` deterministically shuffles the slab order.  The order
    never changes *what* migrates, only *when*, which is exactly the
    degree of freedom a fault-injection sweep wants to explore: a node
    dying mid-migration interrupts a different slab under a different
    seed, while any fixed seed replays the identical schedule.
    """
    if old.shape != new.shape:
        raise StorageError(
            f"cannot rebalance between different array shapes "
            f"{old.shape} and {new.shape}")
    if old.axis != new.axis:
        raise StorageError(
            f"cannot rebalance across partition axes "
            f"{old.axis} and {new.axis}")
    slabs = []
    for new_band in new.bands:
        for old_band in old.bands:
            lo = max(new_band.lo, old_band.lo)
            hi = min(new_band.hi, old_band.hi)
            if lo <= hi:
                slabs.append(MigrationSlab(old_band.node, new_band.node,
                                           lo, hi))
    random.Random(seed).shuffle(slabs)
    return slabs
