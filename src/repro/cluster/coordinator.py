"""A multi-node deployment of the versioned storage system (Section II).

"The query processor receives a declarative query or update from a
front end ... The query processor translates this command into a
collection of commands to update or query specific versions in the
storage system.  Each array may be partitioned across several storage
system nodes, and each machine runs its own instance of the storage
system."

:class:`ClusterCoordinator` is that query-processor-side fan-out: it
partitions every array into bands (one per node), runs independent
:class:`~repro.storage.manager.VersionedStorageManager` instances per
node — each node delta-encodes *its own* partition locally, exactly as
the paper states — and reassembles query results.  All single-node
semantics (no-overwrite, branches, layout re-organization) apply per
node.

Beyond the paper's single-copy picture, the coordinator makes node
loss and cluster growth first-class:

* **Replication** — ``replication=R`` keeps R identical copies of
  every band, each in its own manager.  Writes fan to every replica
  and are all-or-nothing across the whole (band x replica) grid: the
  settle-all-then-compensate rollback deletes whatever landed if any
  copy fails, so a failed replica write leaves no catalog trace on any
  node.  Reads are served by the first live replica and *fail over*
  to the next on error (``IOStats.failovers`` counts every hop, and
  ``IOStats.replica_writes`` every redundant copy landed).  Replica
  ``r`` of band ``b`` is hosted on physical node ``(b + r) % nodes``
  (chained declustering), so :meth:`mark_node_dead` takes out one
  primary *and* one neighbor's replica — the classic failure shape.
* **Rebalancing** — :meth:`rebalance` reshards every array onto a new
  node count *online*: a deterministic
  :func:`~repro.cluster.partitioning.rebalance_plan` maps old bands to
  new ones, slab reads (failover-capable, so a rebalance can evacuate
  a cluster with dead replicas as long as a quorum survives) rebuild
  each new band, and every version replays — lineage kinds, parent
  links, and merge parents preserved — into a fresh manager
  generation under ``root/gen<k>`` while the old generation keeps
  serving.  Versions written mid-migration are absorbed by a
  copy-then-catch-up loop; only the final catch-up pass and the
  generation swap run under the cluster write lock.  The cluster
  fingerprint is byte-identical before and after;
  ``IOStats.migrated_chunks`` counts the placements the resharding
  performed.
* **Anti-entropy repair** — every band copy exposes a *logical* digest
  (schema + lineage rows + reassembled payload bytes; timestamps and
  physical placement excluded, since replicas legitimately diverge in
  both).  :meth:`repair` compares a copy's per-version digests against
  its live peers and resyncs the stale or empty tail version-by-
  version through the managers' transactional write path, and
  :meth:`revive` / :meth:`revive_node` verify the digest before
  clearing a dead mark — a revived replica is either provably
  byte-identical to its peers or loudly refused (``repair=True``
  auto-repairs instead).  ``IOStats.repairs`` / ``repaired_versions``
  / ``repair_bytes`` account the resync work.
"""

from __future__ import annotations

import hashlib
import shutil
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.cluster.partitioning import RangePartitioner, rebalance_plan
from repro.core.array import ArrayData, Payload
from repro.core.errors import ReproError, StorageError
from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.storage.backend import StorageBackend
from repro.storage.iostats import IOStats
from repro.storage.manager import VersionedStorageManager
from repro.storage.pipeline import resolve_fuse, resolve_workers

#: How many times a compensating undo (delete of a landed version or
#: array) is retried before the rollback gives up on that replica.
#: The retry matters under fault injection: the undo itself can hit an
#: injected fault, and a finite fault schedule is outlasted by a short
#: retry loop — giving up after one attempt would leave a node out of
#: step, the one state the write path promises never to expose.
COMPENSATION_ATTEMPTS = 4

#: How many unlocked catch-up passes an online rebalance runs before
#: taking the write lock for the final pass.  The bound only limits
#: how much write traffic is absorbed *without* blocking writers —
#: convergence never depends on it, because the final pass runs with
#: writes excluded and therefore syncs against a frozen cluster in
#: one sweep.
REBALANCE_CATCHUP_PASSES = 8


class _ReshardedMidWrite(StorageError):
    """A write's pre-sliced payload raced an online rebalance's
    generation swap; the caller re-slices against the new topology
    and retries."""


class _Generation:
    """One adopted fleet of band replicas plus its routing state.

    Everything a read needs — the replica grid, the node count, and
    the per-array partitioners/schemas — swaps *together* at the end
    of a rebalance, so readers capture one ``_Generation`` (a single
    attribute load) and see a consistent topology no matter when the
    swap lands.  The pin count lets the rebalance drain in-flight
    reads before closing and deleting the old generation's managers:
    a read that started against gen *k* finishes against gen *k*.
    """

    def __init__(self, replicas: list[list[VersionedStorageManager]],
                 nodes: int,
                 partitioners: "dict[str, RangePartitioner]",
                 schemas: "dict[str, ArraySchema]",
                 number: int):
        self.replicas = replicas
        self.nodes = nodes
        self.partitioners = partitioners
        self.schemas = schemas
        self.number = number
        self._pins = 0
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)

    def pin(self) -> None:
        with self._lock:
            self._pins += 1

    def unpin(self) -> None:
        with self._lock:
            self._pins -= 1
            if self._pins == 0:
                self._drained.notify_all()

    def wait_drained(self) -> None:
        """Block until no read holds a pin on this generation."""
        with self._lock:
            while self._pins:
                self._drained.wait()


class ClusterCoordinator:
    """Fans array operations out to per-node storage managers.

    ``backend`` selects the byte substrate of every node: a registry
    name or spec (``"local"``, ``"memory"``, ``"object[:durable]"``,
    ``"striped:<n>[:<child>]"``, ``"faulty:<seed>[:<inner>]"``) or a
    factory called with each node's root, so every node gets its *own*
    backend instance — an all-in-memory cluster (``backend="memory"``)
    simulates multi-node behaviour with zero disk I/O, and a factory
    returning seeded
    :class:`~repro.storage.backend.FaultInjectingBackend` wrappers is
    how the chaos suite gives every node its own deterministic failure
    schedule.  A ready backend instance is rejected because the nodes
    must not share state.

    ``replication`` keeps that many copies of every band (each copy a
    full manager with its own catalog and backend); it may not exceed
    the node count — more copies than hosts would stack replicas on
    the same failure domain.

    ``workers`` is per-node parallelism: each node's manager fans its
    chunk encodes and reconstructions across its own executors, and
    the coordinator additionally fans *node-level* work concurrently —
    region selects query the overlapping nodes in parallel, and
    ``insert``/``branch``/``merge`` run every replica's write at once
    (the replicas are fully independent storage systems, so node-level
    fan-out needs no extra locking).

    The coordinator owns a cluster-level :class:`IOStats` (``stats``)
    for the replication counters: ``failovers``, ``replica_writes``,
    and ``migrated_chunks``.  Per-node byte counters stay on each
    manager (:meth:`node_stats`).

    ``fuse_chains`` threads the fused delta-chain decode knob to every
    node manager (and to the fresh generation a rebalance builds), so
    deep-chain reads on every replica fold their composable delta
    levels into one apply; results are byte-identical either way.
    """

    def __init__(self, root: str | Path, nodes: int = 4, *,
                 replication: int = 1, partition_axis: int = 0,
                 backend=None, workers: int | None = None,
                 fuse_chains: bool | None = None,
                 **manager_kwargs):
        if nodes < 1:
            raise StorageError("a cluster needs at least one node")
        if replication < 1:
            raise StorageError("replication factor must be >= 1")
        if replication > nodes:
            raise StorageError(
                f"replication={replication} exceeds the node count "
                f"({nodes}); extra copies would share failure domains")
        if isinstance(backend, StorageBackend):
            raise StorageError(
                "a cluster needs one backend per node; pass a backend"
                " name or factory, not a shared instance")
        self.workers = resolve_workers(workers)
        self.fuse_chains = resolve_fuse(fuse_chains)
        self.root = Path(root)
        self.replication = replication
        self.partition_axis = partition_axis
        self.stats = IOStats()
        # Remembered for rebalance: a new manager generation is built
        # with the same substrate and per-manager configuration.
        self._backend_spec = backend
        self._manager_kwargs = dict(manager_kwargs)
        self._generation = 0
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        # Serializes cluster writes against each other and against the
        # rebalance swap; reads never take it (they pin a generation).
        self._write_lock = threading.Lock()
        # Serializes the long-running maintenance flows (repair,
        # rebalance) against each other.
        self._maintenance_lock = threading.Lock()
        self._dead: set[tuple[int, int]] = set()
        self._live = _Generation([], nodes, {}, {}, 0)
        try:
            for node in range(nodes):
                row: list[VersionedStorageManager] = []
                self._live.replicas.append(row)
                for replica in range(replication):
                    row.append(VersionedStorageManager(
                        self._node_root(node, replica),
                        backend=backend,
                        workers=self.workers,
                        fuse_chains=self.fuse_chains,
                        **manager_kwargs))
        except BaseException:
            # A half-built cluster must not leak the managers (and
            # their executors / SQLite handles) that did come up — and
            # a close failure during that cleanup must not mask the
            # error that actually sank the construction.
            self._close_managers(suppress=True)
            raise

    # ------------------------------------------------------------------
    # Generation plumbing: reads pin one consistent topology
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> list[list[VersionedStorageManager]]:
        """``replicas[band][r]`` is copy ``r`` of band ``band`` (of the
        currently adopted generation)."""
        return self._live.replicas

    @property
    def nodes(self) -> int:
        return self._live.nodes

    @property
    def _partitioners(self) -> "dict[str, RangePartitioner]":
        return self._live.partitioners

    @property
    def _schemas(self) -> "dict[str, ArraySchema]":
        return self._live.schemas

    @contextmanager
    def _pinned(self):
        """Pin the live generation for the duration of one read.

        The yielded :class:`_Generation` is immutable topology-wise
        for the reader's purposes: a concurrent rebalance may adopt a
        successor at any time, but it waits for every pin to drop
        before closing the pinned generation's managers — so a read
        that started against gen *k* always finishes against gen *k*.
        """
        gen = self._live
        gen.pin()
        try:
            yield gen
        finally:
            gen.unpin()

    @property
    def managers(self) -> list[VersionedStorageManager]:
        """The primary (replica 0) manager of every band — the
        single-copy view that predates replication."""
        return [row[0] for row in self.replicas]

    def _node_root(self, node: int, replica: int) -> Path:
        # Replica 0 keeps the historical ``root/node<i>`` layout so a
        # replication=1 cluster is on-disk identical to earlier ones.
        leaf = f"node{node}" if replica == 0 else f"node{node}-r{replica}"
        return self.root / leaf

    # ------------------------------------------------------------------
    # Failure-domain controls
    # ------------------------------------------------------------------
    def host_of(self, node: int, replica: int) -> int:
        """The physical host of one band copy (chained declustering):
        replica ``r`` of band ``b`` lives on host ``(b + r) % nodes``,
        so each host carries its own band plus neighbors' replicas."""
        return (node + replica) % self.nodes

    def mark_dead(self, node: int, replica: int = 0) -> None:
        """Take one band copy offline: reads skip it (a failover),
        writes to it fail the whole operation."""
        self._check_pair(node, replica)
        self._dead.add((node, replica))

    def revive(self, node: int, replica: int = 0, *,
               repair: bool = False) -> None:
        """Bring one band copy back into rotation — *verified*.

        A dead mark only ever meant "skip this copy"; the copy behind
        it may have missed writes, been wiped and replaced, or be
        perfectly intact.  Revive therefore compares the copy's
        logical digest against a live peer replica of the same band
        before clearing the mark: an in-sync copy rejoins silently, a
        stale (or unreadable) one either auto-repairs
        (``repair=True``) or fails loudly without clearing the mark —
        a data-less replica must never serve reads.  With
        ``replication=1`` there is no peer to verify against, so the
        mark clears unverified (as it must: the copy *is* the band).
        """
        self._check_pair(node, replica)
        peers = self._live_peers(node, replica)
        if peers and not self._replica_in_sync(node, replica, peers):
            if not repair:
                raise StorageError(
                    f"replica {replica} of node {node} is stale: its "
                    f"logical digest does not match its live peers'; "
                    f"repair(node, replica) it first or revive with "
                    f"repair=True")
            self.repair(node, replica)
        self._dead.discard((node, replica))

    def mark_node_dead(self, host: int) -> None:
        """Kill one physical host: every band copy it carries goes
        offline at once (its own primary and the neighbors' replicas
        it hosts)."""
        for node, replica in self._copies_on(host):
            self._dead.add((node, replica))

    def revive_node(self, host: int, *, repair: bool = False) -> None:
        """Bring every band copy on one physical host back — verified,
        all-or-nothing: each copy's digest is checked against its live
        peers first (see :meth:`revive`), and if any copy is stale the
        whole revive refuses (or, with ``repair=True``, resyncs the
        stale copies) before a single mark clears — a host never
        rejoins half-trustworthy."""
        copies = self._copies_on(host)
        stale = []
        for node, replica in copies:
            peers = self._live_peers(node, replica)
            if peers and not self._replica_in_sync(node, replica, peers):
                stale.append((node, replica))
        if stale and not repair:
            raise StorageError(
                f"host {host} has stale copies {stale}: their logical "
                f"digests do not match their live peers'; repair them "
                f"first or revive_node with repair=True")
        for node, replica in stale:
            self.repair(node, replica)
        for node, replica in copies:
            self._dead.discard((node, replica))

    def _live_peers(self, node: int, replica: int) -> list[int]:
        """The other replicas of one band that are not marked dead —
        the candidate repair sources / verification witnesses."""
        return [r for r in range(self.replication)
                if r != replica and (node, r) not in self._dead]

    def _replica_in_sync(self, node: int, replica: int,
                         peers: list[int]) -> bool:
        """Whether one band copy's registry-scoped logical digest
        matches the first live peer that can serve the comparison.
        An unreadable target counts as out of sync; no serving peer
        counts as in sync (recovery must not deadlock on an
        unverifiable cluster)."""
        try:
            target = self._registry_digest(self.replicas[node][replica])
        except ReproError:
            return False
        for peer in peers:
            try:
                return target == \
                    self._registry_digest(self.replicas[node][peer])
            except ReproError:
                self.stats.record_failover()
        return True

    def dead_replicas(self) -> list[tuple[int, int]]:
        """The (band, replica) copies currently marked offline."""
        return sorted(self._dead)

    def _copies_on(self, host: int) -> list[tuple[int, int]]:
        if not 0 <= host < self.nodes:
            raise StorageError(
                f"no node {host} (cluster has {self.nodes})")
        return [(node, replica)
                for node in range(self.nodes)
                for replica in range(self.replication)
                if self.host_of(node, replica) == host]

    def _check_pair(self, node: int, replica: int) -> None:
        if not 0 <= node < self.nodes or \
                not 0 <= replica < self.replication:
            raise StorageError(
                f"no replica ({node}, {replica}) (cluster has "
                f"{self.nodes} nodes x {self.replication} replicas)")

    def _check_writable(self, node: int, replica: int) -> None:
        if (node, replica) in self._dead:
            raise StorageError(
                f"replica {replica} of node {node} is marked dead")

    def _check_all_writable(self) -> None:
        """Array-lifecycle writes touch every copy; any dead one fails
        the operation before the first copy changes."""
        if self._dead:
            node, replica = min(self._dead)
            self._check_writable(node, replica)

    # ------------------------------------------------------------------
    # Anti-entropy repair
    # ------------------------------------------------------------------
    def replica_digest(self, node: int, replica: int = 0,
                       name: str | None = None) -> str:
        """The *logical* digest of one band copy.

        Covers one array's band, or (``name=None``) every registered
        array — schema, lineage rows (version, parent, kind, merge
        parents), and reassembled payload bytes, hashed per
        :meth:`VersionedStorageManager.logical_digest`.  Timestamps
        and physical placement are excluded, because replicas
        legitimately diverge in both (each copy stamps its own clock
        and may ``reorganize`` independently); equal digests mean the
        copies answer every select and lineage query identically.
        """
        self._check_pair(node, replica)
        manager = self.replicas[node][replica]
        if name is not None:
            self._partitioner(name)
            return manager.logical_digest(name)
        return self._registry_digest(manager)

    def _registry_digest(self, manager: VersionedStorageManager) -> str:
        """One copy's digest over the coordinator's array registry —
        the comparison is anchored to the *cluster's* array set, so a
        copy that is missing an array (or that still holds one deleted
        cluster-wide) digests differently instead of raising."""
        digest = hashlib.sha256()
        held = set(manager.list_arrays())
        for array_name in self.list_arrays():
            if array_name in held:
                digest.update(
                    manager.logical_digest(array_name).encode())
            else:
                digest.update(f"missing:{array_name}".encode())
        for extra in sorted(held - set(self.list_arrays())):
            digest.update(f"extra:{extra}".encode())
        return digest.hexdigest()

    def repair(self, node: int, replica: int = 0, *,
               workers: int | None = None) -> dict:
        """Resync one stale or empty band copy from its live peers.

        Per-array, the copy's per-version logical digests are compared
        against the first live peer replica that can serve (peer reads
        fail over); a copy whose digest list is a strict prefix of its
        peer's replays only the missing tail, a diverged or unreadable
        copy is dropped and rebuilt in full, and arrays deleted
        cluster-wide while the copy was dead are dropped from it.
        Every replayed version goes through the managers' transactional
        write path with its *source* lineage row — kind, parent link,
        merge parents, timestamp — so the repaired copy answers
        lineage queries identically to its peers, which the closing
        digest verification proves before the method returns.

        The copy should be marked dead while it is repaired (the
        revive flow does this naturally): cluster writes refuse while
        any copy is dead, so no version can land mid-resync.  Repair
        under fault injection raises mid-way and is simply retried —
        every landed version is transactional, so retries converge on
        the missing tail.  Returns ``{"versions": n, "bytes": n}``
        (also recorded in ``stats.repairs`` / ``repaired_versions`` /
        ``repair_bytes`` when any version was replayed).
        """
        self._check_pair(node, replica)
        peers = self._live_peers(node, replica)
        if not peers:
            raise StorageError(
                f"no live peer replica of node {node} to repair "
                f"replica {replica} from "
                f"(replication={self.replication})")
        with self._maintenance_lock:
            return self._repair_locked(node, replica, peers, workers)

    def _repair_locked(self, node: int, replica: int,
                       peers: list[int],
                       workers: int | None) -> dict:
        target = self.replicas[node][replica]

        def from_peer(op):
            last_error = None
            for peer in peers:
                try:
                    return op(self.replicas[node][peer])
                except ReproError as exc:
                    last_error = exc
                    self.stats.record_failover()
            raise StorageError(
                f"no live peer replica of node {node} could serve a "
                f"repair read") from last_error

        replayed = 0
        replayed_bytes = 0
        registry = self.list_arrays()
        for extra in sorted(set(target.list_arrays()) - set(registry)):
            # Deleted cluster-wide while this copy was dead.
            target.delete_array(extra)
        for name in registry:
            source_digests = from_peer(
                lambda m: m.version_digests(name))
            try:
                target_digests = target.version_digests(name)
            except ReproError:
                target_digests = None
            if target_digests == source_digests:
                continue
            if target_digests is not None and \
                    target_digests != source_digests[:len(target_digests)]:
                # Diverged beyond a stale tail: rebuild from scratch.
                target.delete_array(name)
                target_digests = None
            record = from_peer(lambda m: m.catalog.get_array(name))
            if target_digests is None:
                target.create_array(
                    name, record.schema,
                    chunk_bytes=record.chunk_bytes,
                    compressor=record.compressor,
                    chunk_shape=record.chunk_shape,
                    parent_array=record.parent_array,
                    parent_version=record.parent_version)
                target_digests = []
            for version, _ in source_digests[len(target_digests):]:
                row = from_peer(lambda m: m.catalog.get_version(
                    m.catalog.get_array(name).array_id, version))
                parents = from_peer(lambda m: m.catalog.merge_parents_of(
                    m.catalog.get_array(name).array_id, version))
                data = from_peer(lambda m: m.select(name, version))
                target.replay_version(
                    name, data, version=version, kind=row.kind,
                    parent_version=row.parent_version,
                    timestamp=row.timestamp,
                    merge_parents=parents or None, workers=workers)
                replayed += 1
                replayed_bytes += sum(
                    data.attribute(attr.name).nbytes
                    for attr in record.schema.attributes)
        # The whole point is a *provably* identical copy: verify the
        # registry digest against a live peer before reporting success.
        if not self._replica_in_sync(node, replica, peers):
            raise StorageError(
                f"repair of replica {replica} of node {node} did not "
                f"converge: logical digest still differs from its "
                f"live peers'")
        if replayed:
            self.stats.record_repair(replayed, replayed_bytes)
        return {"versions": replayed, "bytes": replayed_bytes}

    def replace_replica(self, node: int, replica: int = 0
                        ) -> VersionedStorageManager:
        """Swap one band copy for blank replacement hardware.

        The old manager is closed and its on-disk root removed; a
        fresh, empty manager comes up at the same root (same backend
        spec and per-manager configuration) and the copy is marked
        dead — it holds nothing yet, so it must not serve.  The
        operational sequence is ``replace_replica`` → :meth:`repair`
        (or ``revive(..., repair=True)``) → :meth:`revive`.
        """
        self._check_pair(node, replica)
        old = self.replicas[node][replica]
        root = old.root
        old.close()
        if root.exists():
            shutil.rmtree(root)
        fresh = VersionedStorageManager(
            root, backend=self._backend_spec, workers=self.workers,
            fuse_chains=self.fuse_chains, **self._manager_kwargs)
        self.replicas[node][replica] = fresh
        self._dead.add((node, replica))
        return fresh

    def lineage(self, name: str) -> list[tuple]:
        """The array's lineage rows, served with failover:
        ``(version, parent_version, kind, merge_parents)`` per
        version, in version order.  Rebalance and repair preserve
        these exactly (timestamps excluded — every replica stamps its
        own clock)."""
        self._partitioner(name)

        def rows(manager: VersionedStorageManager) -> list[tuple]:
            record = manager.catalog.get_array(name)
            return [
                (row.version, row.parent_version, row.kind,
                 tuple(manager.catalog.merge_parents_of(record.array_id,
                                                        row.version)))
                for row in manager.catalog.get_versions(record.array_id)]

        return self._read_any(rows)

    # ------------------------------------------------------------------
    # Array lifecycle
    # ------------------------------------------------------------------
    def create_array(self, name: str, schema: ArraySchema,
                     **kwargs) -> None:
        """Create the array's partition on every band copy.

        All-or-nothing like the other cluster writes: dead copies fail
        the operation up front, and a copy that errors mid-creation
        (a full disk, a refused catalog) rolls the array back off
        every copy that already created it — no replica keeps a
        partition the others lack."""
        with self._write_lock:
            partitioner = RangePartitioner(schema.shape, self.nodes,
                                           axis=self.partition_axis)
            self._check_all_writable()
            created: list[VersionedStorageManager] = []
            try:
                for node in range(self.nodes):
                    band_schema = _band_schema(
                        schema, partitioner.local_shape(node))
                    for manager in self.replicas[node]:
                        manager.create_array(name, band_schema, **kwargs)
                        created.append(manager)
            except BaseException:
                for manager in created:
                    self._compensate(manager.delete_array, name)
                raise
            self._partitioners[name] = partitioner
            self._schemas[name] = schema

    def delete_array(self, name: str) -> None:
        """Drop the array from every copy — convergently.

        A delete cannot be compensated (the bytes are gone), so the
        path is *retryable* instead of all-or-nothing: coordinator-
        marked dead copies fail it up front, every remaining copy is
        attempted even when one errors (a copy already missing the
        array counts as deleted — idempotence), and the name stays
        registered until every copy has dropped it, so a failed
        attempt is simply retried once the sick copy recovers.
        """
        self._partitioner(name)
        with self._write_lock:
            # Fail before the first copy is touched: deleting around a
            # dead copy would leave it resurrecting the array on
            # revival.
            self._check_all_writable()
            first_error = None
            for row in self.replicas:
                for manager in row:
                    try:
                        manager.delete_array(name)
                    except ReproError as exc:
                        if name in manager.list_arrays():
                            if first_error is None:
                                first_error = exc
                        # else: this copy already dropped it (an
                        # earlier partial delete) — idempotent success.
            if first_error is not None:
                raise first_error
            del self._partitioners[name]
            del self._schemas[name]

    def list_arrays(self) -> list[str]:
        return sorted(self._partitioners)

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    def insert(self, name: str, payload: Payload | ArrayData | np.ndarray,
               timestamp: float | None = None, *,
               workers: int | None = None) -> int:
        """Split a version into bands and insert on every band copy.

        The per-replica inserts are independent (each copy owns its own
        catalog, store, and encoder), so they fan out across the
        coordinator's node executor — the write-side mirror of the
        region select's concurrent node queries.  ``workers`` overrides
        each node's encode parallelism for this one insert.

        Band slicing happens against the live generation *before* the
        write lock is taken (slicing a large payload under the lock
        would serialize the cheap part of every write); if an online
        rebalance swaps the generation in that window, the locked fan
        detects the stale slicing and the insert re-slices against the
        new topology — at most once, since only one swap can land per
        acquisition attempt.
        """
        data = self._normalize(name, payload)
        for _ in range(2):
            partitioner = self._partitioner(name)
            schema = self._schemas[name]
            locals_by_node = [
                _band_slice(schema, partitioner, node, data)
                for node in range(self.nodes)]
            try:
                return self._insert_locals(name, locals_by_node,
                                           timestamp, workers)
            except _ReshardedMidWrite:
                continue
        raise StorageError(
            f"insert of {name!r} kept racing generation swaps")

    def _insert_locals(self, name: str,
                       locals_by_node: list[ArrayData],
                       timestamp: float | None,
                       workers: int | None) -> int:
        """Fan pre-sliced band payloads to every (band, replica) copy,
        all-or-nothing: if any copy fails (or the copies land different
        version numbers), every landed version is deleted again — it
        was by construction each copy's newest, so the undo returns
        every catalog to the old head and no replica ever exposes a
        partial version."""
        with self._write_lock:
            if len(locals_by_node) != self.nodes:
                # The payload was sliced against a generation that a
                # rebalance replaced before this write got the lock.
                raise _ReshardedMidWrite(
                    f"payload sliced for {len(locals_by_node)} bands "
                    f"but the cluster now has {self.nodes}")
            # Known-dead copies fail the write before any byte moves —
            # encoding full band versions on every live replica only
            # to compensate them all away would trade work for
            # nothing.  The per-pair check below still covers marks
            # set mid-fan-out.
            self._check_all_writable()
            pairs = [(node, replica)
                     for node in range(self.nodes)
                     for replica in range(self.replication)]

            def insert_one(pair: tuple[int, int]) -> int:
                node, replica = pair
                self._check_writable(node, replica)
                return self.replicas[node][replica].insert(
                    name, locals_by_node[node], timestamp,
                    workers=workers)

            results, error = self._settle_nodes(insert_one, pairs)
            landed = {version for version in results
                      if version is not None}
            if error is None and len(landed) > 1:
                error = StorageError(
                    f"cluster is out of step: replicas landed versions "
                    f"{results}")
            if error is not None:
                for (node, replica), version in zip(pairs, results):
                    if version is not None:
                        # reclaim=False: the undo must never write
                        # through the (possibly failing) backend —
                        # consistency over space; the next successful
                        # repack reclaims.
                        self._compensate(
                            self.replicas[node][replica].delete_version,
                            name, version, reclaim=False)
                raise error
            self.stats.record_replica_writes(
                self.nodes * (self.replication - 1))
            return results[0]

    def _replay_locals(self, name: str,
                       locals_by_node: list[ArrayData], *,
                       version: int, kind: str,
                       parent_version: int | None,
                       timestamp: float | None,
                       merge_parents: list[tuple[str, int]] | None,
                       workers: int | None = None) -> int:
        """The migration twin of :meth:`_insert_locals`: fan one
        version's pre-sliced band payloads to every copy through
        :meth:`VersionedStorageManager.replay_version`, preserving the
        source version's lineage row (kind, parent link, merge
        parents, timestamp) instead of minting a plain insert.  Same
        all-or-nothing settle-then-compensate contract."""
        with self._write_lock:
            self._check_all_writable()
            pairs = [(node, replica)
                     for node in range(self.nodes)
                     for replica in range(self.replication)]

            def replay_one(pair: tuple[int, int]) -> int:
                node, replica = pair
                self._check_writable(node, replica)
                return self.replicas[node][replica].replay_version(
                    name, locals_by_node[node], version=version,
                    kind=kind, parent_version=parent_version,
                    timestamp=timestamp, merge_parents=merge_parents,
                    workers=workers)

            results, error = self._settle_nodes(replay_one, pairs)
            if error is not None:
                for (node, replica), landed in zip(pairs, results):
                    if landed is not None:
                        self._compensate(
                            self.replicas[node][replica].delete_version,
                            name, landed, reclaim=False)
                raise error
            self.stats.record_replica_writes(
                self.nodes * (self.replication - 1))
            return results[0]

    def branch(self, source_name: str, source_version: int,
               new_name: str,
               timestamp: float | None = None, *,
               workers: int | None = None):
        """Branch every band copy of the source version (Branch).

        All-or-nothing across the cluster: if any replica fails, the
        half-created branch is removed from every replica before the
        error propagates.
        """
        self._partitioner(source_name)

        def branch_node(manager: VersionedStorageManager):
            return manager.branch(source_name, source_version, new_name,
                                  timestamp, workers=workers)

        with self._write_lock:
            partitioner = self._partitioner(source_name)
            schema = self._schema(source_name)
            self._all_nodes_or_none(branch_node, new_name,
                                    versions_created=1)
            # The branch shares the source's shape, so its partitioning
            # is identical by construction.
            self._partitioners[new_name] = partitioner
            self._schemas[new_name] = schema
        return new_name

    def merge(self, parents: list[tuple[str, int]], new_name: str,
              timestamp: float | None = None, *,
              workers: int | None = None):
        """Merge parent versions into a new array sequence on every
        band copy (the paper's Merge: versions 1..k replay the
        parents)."""
        if len(parents) < 2:
            raise StorageError("merge requires at least two parent versions")
        schema = self._schema(parents[0][0])
        for parent_name, _ in parents:
            if self._schema(parent_name) != schema:
                raise StorageError(
                    "merge parents must share the same schema")

        def merge_node(manager: VersionedStorageManager):
            return manager.merge(parents, new_name, timestamp,
                                 workers=workers)

        with self._write_lock:
            partitioner = self._partitioner(parents[0][0])
            schema = self._schema(parents[0][0])
            self._all_nodes_or_none(merge_node, new_name,
                                    versions_created=len(parents))
            self._partitioners[new_name] = partitioner
            self._schemas[new_name] = schema
        return new_name

    def _all_nodes_or_none(self, operation, new_name: str, *,
                           versions_created: int) -> None:
        """Run an array-creating write on every band copy; undo it on
        every copy where it succeeded if any copy fails, so no replica
        keeps a partial array.

        The name must be unused: rollback deletes ``new_name`` on the
        replicas that created it, which would destroy a pre-existing
        array of that name had the operation been allowed to start.
        The guard checks the node catalogs as well as the registry —
        coordinator state is session-scoped, but node arrays are not.
        """
        if new_name in self._partitioners or \
                new_name in self._read_node(
                    0, lambda manager: manager.list_arrays()):
            raise StorageError(
                f"array {new_name!r} already exists on this cluster")
        self._check_all_writable()
        pairs = [(node, replica)
                 for node in range(self.nodes)
                 for replica in range(self.replication)]

        def run_one(pair: tuple[int, int]):
            node, replica = pair
            self._check_writable(node, replica)
            return operation(self.replicas[node][replica])

        results, error = self._settle_nodes(run_one, pairs)
        if error is not None:
            for (node, replica), result in zip(pairs, results):
                if result is not None:
                    self._compensate(
                        self.replicas[node][replica].delete_array,
                        new_name)
            raise error
        self.stats.record_replica_writes(
            self.nodes * (self.replication - 1) * versions_created)

    def _compensate(self, undo, *args, **kwargs) -> bool:
        """Run one compensating undo, retrying a few times.

        Under fault injection the undo itself can fail (a co-located
        repack re-places payloads through the same faulty backend); a
        finite fault schedule is outlasted by the retry loop.  Returns
        whether the undo eventually succeeded — a False leaves that
        replica out of step, which the caller's raised error already
        reports as a failed cluster write.
        """
        for _ in range(COMPENSATION_ATTEMPTS):
            try:
                undo(*args, **kwargs)
                return True
            except ReproError:
                continue
        return False

    def _map_nodes(self, operation, items) -> list:
        """Apply ``operation`` to every item, fanning across the node
        executor when configured; results come back in item order."""
        items = list(items)
        if self.workers > 1 and len(items) > 1:
            return list(self._pool().map(operation, items))
        return [operation(item) for item in items]

    def _settle_nodes(self, operation, items) -> tuple[list, object]:
        """Like :meth:`_map_nodes`, but *every* submitted operation is
        waited for before returning — the write paths compensate by
        inspecting which replicas succeeded, which is only sound once
        no straggler is still mutating its node.  Returns ``(results,
        first_error)`` with None results for failed (or, serially,
        never-attempted) items.
        """
        items = list(items)
        results: list = [None] * len(items)
        error = None
        if self.workers > 1 and len(items) > 1:
            pool = self._pool()
            futures = [pool.submit(operation, item) for item in items]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except BaseException as exc:
                    if error is None:
                        error = exc
        else:
            for index, item in enumerate(items):
                try:
                    results[index] = operation(item)
                except BaseException as exc:
                    error = exc
                    break  # serial: later items were never started
        return results, error

    def get_versions(self, name: str) -> list[int]:
        self._partitioner(name)
        return self._read_any(lambda manager: manager.get_versions(name))

    # ------------------------------------------------------------------
    # Read routing (generation-pinned, failover-capable)
    # ------------------------------------------------------------------
    def _read_node(self, node: int, op, gen: "_Generation | None" = None):
        """Serve one band read from its first live replica.

        Copies marked dead are skipped, and a copy that raises is
        abandoned for the next one; every abandoned copy is one
        recorded failover.  Only when no copy can serve does the read
        fail — so with ``replication=2`` any single dead node leaves
        every band readable.  ``gen`` routes the read against an
        explicitly pinned generation (multi-step reads pin once so an
        online rebalance can never swap the topology out from under
        them mid-read); without it the read pins the live generation
        for its own duration.
        """
        if gen is None:
            with self._pinned() as pinned:
                return self._read_node(node, op, pinned)
        last_error = None
        for replica in range(self.replication):
            if (node, replica) in self._dead:
                self.stats.record_failover()
                continue
            try:
                return op(gen.replicas[node][replica])
            except ReproError as exc:
                last_error = exc
                self.stats.record_failover()
        raise StorageError(
            f"no live replica of node {node} could serve the read "
            f"(replication={self.replication})") from last_error

    def _read_any(self, op, gen: "_Generation | None" = None):
        """Serve a band-agnostic read (version lists, catalogs agree
        everywhere) from the first band with a live replica."""
        if gen is None:
            with self._pinned() as pinned:
                return self._read_any(op, pinned)
        last_error = None
        for node in range(gen.nodes):
            try:
                return self._read_node(node, op, gen)
            except ReproError as exc:
                last_error = exc
        raise StorageError(
            "no live replica on any node could serve the read") \
            from last_error

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, name: str, version: int) -> ArrayData:
        """Reassemble one full version from every band."""
        schema = self._schema(name)
        lo = tuple(0 for _ in schema.shape)
        hi = tuple(extent - 1 for extent in schema.shape)
        return self.select_region(name, version, lo, hi)

    def select_region(self, name: str, version: int,
                      corner_lo: tuple[int, ...],
                      corner_hi: tuple[int, ...]) -> ArrayData:
        """Route a region query to the overlapping nodes only, each
        band served by its first live replica (reads fail over).  The
        whole query runs against one pinned generation, so an online
        rebalance swapping mid-query can neither mix topologies nor
        close the managers the query is reading."""
        with self._pinned() as gen:
            return self._select_region(gen, name, version,
                                       corner_lo, corner_hi)

    def _select_region(self, gen: "_Generation", name: str, version: int,
                       corner_lo: tuple[int, ...],
                       corner_hi: tuple[int, ...]) -> ArrayData:
        try:
            partitioner = gen.partitioners[name]
            schema = gen.schemas[name]
        except KeyError:
            raise StorageError(
                f"array {name!r} is not registered with this "
                "coordinator") from None
        lo = schema.to_zero_based(corner_lo)
        hi = schema.to_zero_based(corner_hi)
        region_shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        axis = partitioner.axis

        canvases = {
            attr.name: np.empty(region_shape, dtype=attr.dtype)
            for attr in schema.attributes
        }

        def fetch(band):
            local_lo, local_hi = partitioner.clip_region(band, lo, hi)
            return self._read_node(
                band.node,
                lambda manager: manager.select_region(
                    name, version, local_lo, local_hi),
                gen)

        bands = list(partitioner.bands_overlapping(lo, hi))
        parts = self._map_nodes(fetch, bands)

        for band, part in zip(bands, parts):
            dest_lo = max(lo[axis], band.lo) - lo[axis]
            dest_hi = min(hi[axis], band.hi) - lo[axis]
            index = tuple(
                np.s_[dest_lo:dest_hi + 1] if dim == axis else np.s_[:]
                for dim in range(schema.ndim))
            for attr in schema.attributes:
                canvases[attr.name][index] = part.attribute(attr.name)
        from repro.core.array import _sliced_schema

        return ArrayData(_sliced_schema(schema, lo, hi), canvases)

    def select_versions(self, name: str, versions: list[int],
                        attribute: str | None = None) -> np.ndarray:
        """The stacked (N+1-dimensional) select across the cluster."""
        schema = self._schema(name)
        attr = attribute or schema.attributes[0].name
        layers = [self.select(name, v).attribute(attr) for v in versions]
        return np.stack(layers, axis=0)

    # ------------------------------------------------------------------
    # Rebalancing (cluster growth / shrink)
    # ------------------------------------------------------------------
    def rebalance(self, new_node_count: int, *, seed: int = 0) -> int:
        """Reshard every array across ``new_node_count`` nodes, online.

        A deterministic :func:`rebalance_plan` (fixed by ``seed``) maps
        old bands onto new ones; each slab is read from the first live
        replica of its source band (so a cluster with dead copies can
        still be evacuated while a quorum survives) and every version
        replays, in order, into a fresh generation of managers under
        ``root/gen<k>`` — with its *source* lineage row, so insert vs
        branch-root vs merge kinds, parent links, and merge parents
        survive the reshard.

        The build is online: the old generation keeps serving reads
        (and accepting writes) while the new one is copied, and a
        catch-up loop re-syncs arrays and versions written
        mid-migration.  Only the *final* catch-up pass and the
        generation swap run under the cluster write lock — with
        writes excluded the cluster is frozen, so one sweep provably
        converges, the new generation is adopted, and in-flight reads
        drain before the old managers are closed and removed.  A
        failure at any point leaves the old cluster untouched and the
        half-built generation deleted.

        Contents, version numbering, and lineage are preserved exactly
        (the cluster :meth:`fingerprint` is byte-identical before and
        after, and :meth:`lineage` rows match).  Dead-copy marks
        reset: the new generation is a new fleet.  Returns the number
        of chunk placements the migration performed (also recorded in
        ``stats.migrated_chunks``).
        """
        if new_node_count < 1:
            raise StorageError("a cluster needs at least one node")
        if new_node_count < self.replication:
            raise StorageError(
                f"cannot rebalance to {new_node_count} node(s) with "
                f"replication={self.replication}")
        with self._maintenance_lock:
            return self._rebalance_locked(new_node_count, seed)

    def _rebalance_locked(self, new_node_count: int, seed: int) -> int:
        generation = self._generation + 1
        new_root = self.root / f"gen{generation}"
        try:
            fresh = ClusterCoordinator(
                new_root, nodes=new_node_count,
                replication=self.replication,
                partition_axis=self.partition_axis,
                backend=self._backend_spec, workers=self.workers,
                fuse_chains=self.fuse_chains,
                **self._manager_kwargs)
        except BaseException:
            # A half-built generation (its constructor closed the
            # managers that did come up) must not leave node roots for
            # a later rebalance to adopt as pre-existing state.
            if new_root.exists():
                shutil.rmtree(new_root)
            raise
        try:
            # Initial copy plus bounded catch-up, all outside the
            # write lock: the cluster keeps serving both reads and
            # writes while the bulk of the migration runs.
            self._sync_generation(fresh, seed)
            for _ in range(REBALANCE_CATCHUP_PASSES):
                if not self._sync_generation(fresh, seed):
                    break
            # The brief exclusive window: writers blocked, one final
            # catch-up against the now-frozen cluster, then the swap.
            with self._write_lock:
                self._sync_generation(fresh, seed)
                migrated = sum(manager.stats.chunks_written
                               for row in fresh.replicas
                               for manager in row)
                old_gen = self._live
                old_base = self.root / f"gen{self._generation}" \
                    if self._generation else None
                fresh._shutdown_executor()
                self._live = _Generation(
                    fresh._live.replicas, fresh._live.nodes,
                    fresh._live.partitioners, fresh._live.schemas,
                    generation)
                self._dead = set()
                self._generation = generation
        except BaseException:
            # Suppress close errors: the cleanup must never mask the
            # error that sank the migration, and the half-built
            # generation must be removed regardless so a later
            # rebalance cannot adopt its node roots.
            fresh._shutdown_executor()
            fresh._close_managers(suppress=True)
            if fresh.root.exists():
                shutil.rmtree(fresh.root)
            raise
        # The node fan-out pool was sized for the old replica grid;
        # drop it so the next fan-out recreates it at the new width.
        self._shutdown_executor()
        # Release the old generation only after every in-flight read
        # that pinned it has finished — closing a manager out from
        # under a serving read is exactly what "online" must not do.
        old_gen.wait_drained()
        for row in old_gen.replicas:
            for manager in row:
                manager.close()
                if manager.root.exists():
                    shutil.rmtree(manager.root)
        if old_base is not None and old_base.exists():
            # Generation 0 lives directly under the cluster root; later
            # generations get their own base directory, removed once
            # its node roots are gone.
            shutil.rmtree(old_base)
        self.stats.record_migrated_chunks(migrated)
        return migrated

    def _sync_generation(self, fresh: "ClusterCoordinator",
                         seed: int) -> bool:
        """One catch-up pass: make ``fresh`` logically identical to
        the cluster's *current* contents.  Returns whether the pass
        changed anything — a False means the generations were already
        converged when the pass ran.

        Convergence never depends on the pass bound: under the write
        lock the cluster is frozen, so a single pass there syncs
        everything the unlocked passes missed.
        """
        changed = False
        names = set(self.list_arrays())
        for name in list(fresh.list_arrays()):
            if name not in names:
                # Deleted cluster-wide mid-migration.
                fresh.delete_array(name)
                changed = True
        for name in self.list_arrays():
            changed |= self._sync_array(fresh, name, seed)
        return changed

    def _sync_array(self, fresh: "ClusterCoordinator", name: str,
                    seed: int) -> bool:
        """Catch one array up in the fresh generation.

        The already-migrated prefix is validated by *lineage rows
        including timestamps* (the replay preserves the source rows
        verbatim, and source timestamps are strictly increasing per
        replica) — so an array that was deleted and re-created under
        the same name mid-migration can never masquerade as a valid
        prefix; it is dropped and rebuilt.  Versions beyond the valid
        prefix replay slab-by-slab with their source lineage rows.
        """
        changed = False
        source_rows = self._version_rows(name)
        if name in fresh._partitioners:
            fresh_rows = fresh._version_rows(name)
            if fresh_rows != source_rows[:len(fresh_rows)]:
                fresh.delete_array(name)
                changed = True
        if name not in fresh._partitioners:
            record = self._read_node(
                0, lambda manager: manager.catalog.get_array(name))
            fresh.create_array(name, self._schemas[name],
                               chunk_bytes=record.chunk_bytes,
                               compressor=record.compressor,
                               chunk_shape=record.chunk_shape,
                               parent_array=record.parent_array,
                               parent_version=record.parent_version)
            fresh_rows = []
            changed = True
        plan = rebalance_plan(self._partitioners[name],
                              fresh._partitioners[name], seed=seed)
        for version, parent_version, kind, timestamp, parents in \
                source_rows[len(fresh_rows):]:
            fresh._replay_locals(
                name,
                self._migrate_version(name, version, plan, fresh),
                version=version, kind=kind,
                parent_version=parent_version, timestamp=timestamp,
                merge_parents=list(parents) or None)
            changed = True
        return changed

    def _version_rows(self, name: str) -> list[tuple]:
        """Full lineage rows — (version, parent, kind, timestamp,
        merge parents) — of one array, from the first live replica."""
        def rows(manager: VersionedStorageManager) -> list[tuple]:
            record = manager.catalog.get_array(name)
            return [
                (row.version, row.parent_version, row.kind,
                 row.timestamp,
                 tuple(manager.catalog.merge_parents_of(record.array_id,
                                                        row.version)))
                for row in manager.catalog.get_versions(record.array_id)]

        return self._read_any(rows)

    def _migrate_version(self, name: str, version: int, plan,
                         fresh: "ClusterCoordinator"
                         ) -> list[ArrayData]:
        """Rebuild one version's new band payloads from slab reads
        against the old cluster (failover-capable)."""
        schema = self._schemas[name]
        old = self._partitioners[name]
        new = fresh._partitioners[name]
        axis = old.axis
        canvases = [
            {attr.name: np.empty(new.local_shape(node),
                                 dtype=attr.dtype)
             for attr in schema.attributes}
            for node in range(fresh.nodes)]
        for slab in plan:
            source_band = old.band_of(slab.source)
            local_lo = tuple(
                slab.lo - source_band.lo if dim == axis else 0
                for dim in range(schema.ndim))
            local_hi = tuple(
                slab.hi - source_band.lo if dim == axis
                else schema.shape[dim] - 1
                for dim in range(schema.ndim))
            part = self._read_node(
                slab.source,
                lambda manager: manager.select_region(
                    name, version, local_lo, local_hi))
            target_band = new.band_of(slab.target)
            dest = tuple(
                np.s_[slab.lo - target_band.lo:
                      slab.hi - target_band.lo + 1]
                if dim == axis else np.s_[:]
                for dim in range(schema.ndim))
            for attr in schema.attributes:
                canvases[slab.target][attr.name][dest] = \
                    part.attribute(attr.name)
        return [
            ArrayData(_band_schema(schema, new.local_shape(node)),
                      canvases[node])
            for node in range(fresh.nodes)]

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def reorganize(self, name: str, **kwargs) -> None:
        """Per-node background re-organization.  Every *live* copy
        re-lays-out independently (replica layouts may legitimately
        diverge — contents, not physical structure, are what
        replication guarantees); dead copies are skipped and pick a
        fresh layout whenever they next replay."""
        self._partitioner(name)
        for node in range(self.nodes):
            for replica in range(self.replication):
                if (node, replica) in self._dead:
                    continue
                self.replicas[node][replica].reorganize(name, **kwargs)

    def stored_bytes(self, name: str) -> int:
        """Logical stored bytes: one live copy of every band (replica
        copies are redundancy, not extra data)."""
        self._partitioner(name)
        return sum(
            self._read_node(node,
                            lambda manager: manager.stored_bytes(name))
            for node in range(self.nodes))

    def physical_bytes(self, name: str) -> int:
        """Stored bytes across *all* live copies (what the fleet's
        disks actually hold; ~``replication`` x the logical bytes)."""
        self._partitioner(name)
        return sum(self.replicas[node][replica].stored_bytes(name)
                   for node in range(self.nodes)
                   for replica in range(self.replication)
                   if (node, replica) not in self._dead)

    def node_stats(self) -> list[IOStats]:
        """Per-node I/O counters of the primary copies (routing tests
        use these)."""
        return [row[0].stats for row in self.replicas]

    def replica_stats(self) -> list[list[IOStats]]:
        """The full (band x replica) grid of per-manager counters."""
        return [[manager.stats for manager in row]
                for row in self.replicas]

    def fingerprint(self, name: str | None = None) -> str:
        """SHA-256 over the cluster's *logical* catalog rows and
        payload bytes: every array's schema and version list, and each
        version's reassembled contents in attribute order.

        Equal fingerprints mean the cluster serves byte-identical
        data.  Unlike the per-manager
        :meth:`~repro.storage.manager.VersionedStorageManager.fingerprint`
        (which also pins physical chunk placement), this observable is
        deliberately invariant under node count, replication factor,
        and per-node encoding choices — it is exactly what resharding
        and replica failover promise to preserve, and the chaos
        suite's one-fingerprint assertion across every (nodes,
        replication, fault schedule) cell leans on that.  Reads fail
        over, so the fingerprint stays computable while dead copies
        leave a quorum.
        """
        digest = hashlib.sha256()
        names = [name] if name is not None else self.list_arrays()
        for array_name in names:
            schema = self._schema(array_name)
            versions = self.get_versions(array_name)
            digest.update(repr((array_name, schema.to_dict(),
                                versions)).encode())
            for version in versions:
                data = self.select(array_name, version)
                for attr in schema.attributes:
                    digest.update(repr((array_name, version,
                                        attr.name)).encode())
                    digest.update(np.ascontiguousarray(
                        data.attribute(attr.name)).tobytes())
        return digest.hexdigest()

    def _pool(self) -> ThreadPoolExecutor:
        """One lazily-created node fan-out executor per coordinator,
        reused across queries (a fresh pool per select would put
        thread spawn/join on the hot query path); sized to the replica
        grid so a replicated write can fan every copy at once."""
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(self.workers,
                                    self.nodes * self.replication),
                    thread_name_prefix="repro-cluster")
            return self._executor

    def _shutdown_executor(self) -> None:
        with self._executor_lock:
            pool, self._executor = self._executor, None
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        self._shutdown_executor()
        self._close_managers()

    def _close_managers(self, suppress: bool = False) -> None:
        """Close every manager that was successfully constructed,
        letting nothing leak even when some close calls fail.

        ``suppress=True`` swallows close errors entirely — the
        construction-failure path uses it so the cleanup can never
        replace the error that actually sank the construction."""
        first_error = None
        for row in self.replicas:
            for manager in row:
                try:
                    manager.close()
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
        if first_error is not None and not suppress:
            raise first_error

    # ------------------------------------------------------------------
    def _partitioner(self, name: str) -> RangePartitioner:
        try:
            return self._partitioners[name]
        except KeyError:
            raise StorageError(
                f"array {name!r} is not registered with this "
                "coordinator") from None

    def _schema(self, name: str) -> ArraySchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise StorageError(
                f"array {name!r} is not registered with this "
                "coordinator") from None

    def _normalize(self, name: str,
                   payload: Payload | ArrayData | np.ndarray) -> ArrayData:
        schema = self._schema(name)
        if isinstance(payload, ArrayData):
            return payload
        if isinstance(payload, np.ndarray):
            return ArrayData.from_single(schema, payload)
        return payload.to_array_data(schema)


def _band_slice(schema: ArraySchema, partitioner: RangePartitioner,
                node: int, data: ArrayData) -> ArrayData:
    """One node's band of a full-array payload, as local ArrayData."""
    band = partitioner.band_of(node)
    axis = partitioner.axis
    index = tuple(
        np.s_[band.lo:band.hi + 1] if dim == axis else np.s_[:]
        for dim in range(schema.ndim))
    return ArrayData(
        _band_schema(schema, partitioner.local_shape(node)),
        {attr.name: data.attribute(attr.name)[index]
         for attr in schema.attributes})


def _band_schema(schema: ArraySchema,
                 local_shape: tuple[int, ...]) -> ArraySchema:
    """The schema of one node's partition (zero-based, band-sized)."""
    dims = tuple(
        Dimension(dim.name, 0, extent - 1)
        for dim, extent in zip(schema.dimensions, local_shape))
    attrs = tuple(
        Attribute(attr.name, attr.dtype, attr.default)
        for attr in schema.attributes)
    return ArraySchema(dimensions=dims, attributes=attrs)
