"""A multi-node deployment of the versioned storage system (Section II).

"The query processor receives a declarative query or update from a
front end ... The query processor translates this command into a
collection of commands to update or query specific versions in the
storage system.  Each array may be partitioned across several storage
system nodes, and each machine runs its own instance of the storage
system."

:class:`ClusterCoordinator` is that query-processor-side fan-out: it
partitions every array into bands (one per node), runs an independent
:class:`~repro.storage.manager.VersionedStorageManager` per node — each
node delta-encodes *its own* partition locally, exactly as the paper
states — and reassembles query results.  All single-node semantics
(no-overwrite, branches, layout re-organization) apply per node.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.cluster.partitioning import RangePartitioner
from repro.core.array import ArrayData, Payload
from repro.core.errors import ReproError, StorageError
from repro.core.schema import ArraySchema, Attribute, Dimension
from repro.storage.backend import StorageBackend
from repro.storage.iostats import IOStats
from repro.storage.manager import VersionedStorageManager
from repro.storage.pipeline import resolve_workers


class ClusterCoordinator:
    """Fans array operations out to per-node storage managers.

    ``backend`` selects the byte substrate of every node: a registry
    name or spec (``"local"``, ``"memory"``, ``"object[:durable]"``,
    ``"striped:<n>[:<child>]"``) or a factory called with each node's
    root, so every node gets its *own* backend instance — an
    all-in-memory cluster (``backend="memory"``) simulates multi-node
    behaviour with zero disk I/O, and ``backend="object"`` runs every
    node against its own S3-style object map, the deployment shape of
    a cluster whose nodes each own a bucket prefix.  A ready backend
    instance is rejected because the nodes must not share state.

    ``workers`` is per-node parallelism: each node's manager fans its
    chunk encodes and reconstructions across its own executors, and
    the coordinator additionally fans *node-level* work concurrently —
    region selects query the overlapping nodes in parallel, and
    ``insert``/``branch``/``merge`` run every node's write at once
    (``min(workers, nodes)`` coordinator threads; the nodes are fully
    independent storage systems, so node-level fan-out needs no extra
    locking).
    """

    def __init__(self, root: str | Path, nodes: int = 4, *,
                 partition_axis: int = 0, backend=None,
                 workers: int | None = None, **manager_kwargs):
        if nodes < 1:
            raise StorageError("a cluster needs at least one node")
        if isinstance(backend, StorageBackend):
            raise StorageError(
                "a cluster needs one backend per node; pass a backend"
                " name or factory, not a shared instance")
        self.workers = resolve_workers(workers)
        self.root = Path(root)
        self.nodes = nodes
        self.partition_axis = partition_axis
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self.managers = [
            VersionedStorageManager(self.root / f"node{index}",
                                    backend=backend,
                                    workers=self.workers,
                                    **manager_kwargs)
            for index in range(nodes)
        ]
        self._partitioners: dict[str, RangePartitioner] = {}
        self._schemas: dict[str, ArraySchema] = {}

    # ------------------------------------------------------------------
    # Array lifecycle
    # ------------------------------------------------------------------
    def create_array(self, name: str, schema: ArraySchema,
                     **kwargs) -> None:
        """Create the array's partition on every node."""
        partitioner = RangePartitioner(schema.shape, self.nodes,
                                       axis=self.partition_axis)
        for node, manager in enumerate(self.managers):
            manager.create_array(name,
                                 _band_schema(schema,
                                              partitioner.local_shape(node)),
                                 **kwargs)
        self._partitioners[name] = partitioner
        self._schemas[name] = schema

    def delete_array(self, name: str) -> None:
        self._partitioner(name)
        for manager in self.managers:
            manager.delete_array(name)
        del self._partitioners[name]
        del self._schemas[name]

    def list_arrays(self) -> list[str]:
        return sorted(self._partitioners)

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    def insert(self, name: str, payload: Payload | ArrayData | np.ndarray,
               timestamp: float | None = None, *,
               workers: int | None = None) -> int:
        """Split a version into bands and insert on every node.

        The per-node inserts are independent (each node owns its own
        catalog, store, and encoder), so they fan out across the
        coordinator's node executor — the write-side mirror of the
        region select's concurrent node queries.  ``workers`` overrides
        each node's encode parallelism for this one insert.
        """
        partitioner = self._partitioner(name)
        schema = self._schemas[name]
        data = self._normalize(name, payload)
        axis = partitioner.axis

        def insert_band(node: int) -> int:
            band = partitioner.band_of(node)
            index = tuple(
                np.s_[band.lo:band.hi + 1] if dim == axis else np.s_[:]
                for dim in range(schema.ndim))
            local = ArrayData(
                _band_schema(schema, partitioner.local_shape(node)),
                {attr.name: data.attribute(attr.name)[index]
                 for attr in schema.attributes})
            return self.managers[node].insert(name, local, timestamp,
                                              workers=workers)

        versions, error = self._settle_nodes(insert_band,
                                             range(self.nodes))
        if error is None and len(set(versions)) > 1:
            error = StorageError(
                f"cluster is out of step: nodes landed versions "
                f"{versions}")
        if error is not None:
            # Best-effort compensation: the version that landed on some
            # nodes is by construction their newest (no dependents), so
            # deleting it keeps every node at the old head instead of
            # leaving the cluster permanently out of step.
            for node, version in enumerate(versions):
                if version is not None:
                    try:
                        self.managers[node].delete_version(name, version)
                    except ReproError:
                        pass
            raise error
        return versions[0]

    def branch(self, source_name: str, source_version: int,
               new_name: str,
               timestamp: float | None = None, *,
               workers: int | None = None):
        """Branch every node's band of the source version (Branch).

        All-or-nothing across the cluster: if any node fails, the
        half-created branch is removed from every node before the
        error propagates.
        """
        partitioner = self._partitioner(source_name)
        schema = self._schema(source_name)

        def branch_node(manager: VersionedStorageManager):
            return manager.branch(source_name, source_version, new_name,
                                  timestamp, workers=workers)

        self._all_nodes_or_none(branch_node, new_name)
        # The branch shares the source's shape, so its partitioning is
        # identical by construction.
        self._partitioners[new_name] = partitioner
        self._schemas[new_name] = schema
        return new_name

    def merge(self, parents: list[tuple[str, int]], new_name: str,
              timestamp: float | None = None, *,
              workers: int | None = None):
        """Merge parent versions into a new array sequence on every
        node (the paper's Merge: versions 1..k replay the parents)."""
        if len(parents) < 2:
            raise StorageError("merge requires at least two parent versions")
        partitioner = self._partitioner(parents[0][0])
        schema = self._schema(parents[0][0])
        for parent_name, _ in parents:
            if self._schema(parent_name) != schema:
                raise StorageError(
                    "merge parents must share the same schema")

        def merge_node(manager: VersionedStorageManager):
            return manager.merge(parents, new_name, timestamp,
                                 workers=workers)

        self._all_nodes_or_none(merge_node, new_name)
        self._partitioners[new_name] = partitioner
        self._schemas[new_name] = schema
        return new_name

    def _all_nodes_or_none(self, operation, new_name: str) -> None:
        """Run an array-creating write on every node; undo it on every
        node where it succeeded if any node fails, so no node keeps a
        partial array.

        The name must be unused: rollback deletes ``new_name`` on the
        nodes that created it, which would destroy a pre-existing
        array of that name had the operation been allowed to start.
        The guard checks the node catalogs as well as the registry —
        coordinator state is session-scoped, but node arrays are not.
        """
        if new_name in self._partitioners or \
                new_name in self.managers[0].list_arrays():
            raise StorageError(
                f"array {new_name!r} already exists on this cluster")
        results, error = self._settle_nodes(operation, self.managers)
        if error is not None:
            for manager, result in zip(self.managers, results):
                if result is not None:
                    try:
                        manager.delete_array(new_name)
                    except ReproError:
                        pass
            raise error

    def _map_nodes(self, operation, items) -> list:
        """Apply ``operation`` to every item, fanning across the node
        executor when configured; results come back in item order."""
        items = list(items)
        if self.workers > 1 and len(items) > 1:
            return list(self._pool().map(operation, items))
        return [operation(item) for item in items]

    def _settle_nodes(self, operation, items) -> tuple[list, object]:
        """Like :meth:`_map_nodes`, but *every* submitted operation is
        waited for before returning — the write paths compensate by
        inspecting which nodes succeeded, which is only sound once no
        straggler is still mutating its node.  Returns ``(results,
        first_error)`` with None results for failed (or, serially,
        never-attempted) items.
        """
        items = list(items)
        results: list = [None] * len(items)
        error = None
        if self.workers > 1 and len(items) > 1:
            pool = self._pool()
            futures = [pool.submit(operation, item) for item in items]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except BaseException as exc:
                    if error is None:
                        error = exc
        else:
            for index, item in enumerate(items):
                try:
                    results[index] = operation(item)
                except BaseException as exc:
                    error = exc
                    break  # serial: later items were never started
        return results, error

    def get_versions(self, name: str) -> list[int]:
        self._partitioner(name)
        return self.managers[0].get_versions(name)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, name: str, version: int) -> ArrayData:
        """Reassemble one full version from every node's band."""
        schema = self._schema(name)
        lo = tuple(0 for _ in schema.shape)
        hi = tuple(extent - 1 for extent in schema.shape)
        return self.select_region(name, version, lo, hi)

    def select_region(self, name: str, version: int,
                      corner_lo: tuple[int, ...],
                      corner_hi: tuple[int, ...]) -> ArrayData:
        """Route a region query to the overlapping nodes only."""
        partitioner = self._partitioner(name)
        schema = self._schema(name)
        lo = schema.to_zero_based(corner_lo)
        hi = schema.to_zero_based(corner_hi)
        region_shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        axis = partitioner.axis

        canvases = {
            attr.name: np.empty(region_shape, dtype=attr.dtype)
            for attr in schema.attributes
        }

        def fetch(band):
            local_lo, local_hi = partitioner.clip_region(band, lo, hi)
            return self.managers[band.node].select_region(
                name, version, local_lo, local_hi)

        bands = list(partitioner.bands_overlapping(lo, hi))
        parts = self._map_nodes(fetch, bands)

        for band, part in zip(bands, parts):
            dest_lo = max(lo[axis], band.lo) - lo[axis]
            dest_hi = min(hi[axis], band.hi) - lo[axis]
            index = tuple(
                np.s_[dest_lo:dest_hi + 1] if dim == axis else np.s_[:]
                for dim in range(schema.ndim))
            for attr in schema.attributes:
                canvases[attr.name][index] = part.attribute(attr.name)
        from repro.core.array import _sliced_schema

        return ArrayData(_sliced_schema(schema, lo, hi), canvases)

    def select_versions(self, name: str, versions: list[int],
                        attribute: str | None = None) -> np.ndarray:
        """The stacked (N+1-dimensional) select across the cluster."""
        schema = self._schema(name)
        attr = attribute or schema.attributes[0].name
        layers = [self.select(name, v).attribute(attr) for v in versions]
        return np.stack(layers, axis=0)

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def reorganize(self, name: str, **kwargs) -> None:
        """Per-node background re-organization (each node independent)."""
        self._partitioner(name)
        for manager in self.managers:
            manager.reorganize(name, **kwargs)

    def stored_bytes(self, name: str) -> int:
        self._partitioner(name)
        return sum(manager.stored_bytes(name)
                   for manager in self.managers)

    def node_stats(self) -> list[IOStats]:
        """Per-node I/O counters (routing tests use these)."""
        return [manager.stats for manager in self.managers]

    def _pool(self) -> ThreadPoolExecutor:
        """One lazily-created node fan-out executor per coordinator,
        reused across queries (a fresh pool per select would put
        thread spawn/join on the hot query path)."""
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(self.workers, self.nodes),
                    thread_name_prefix="repro-cluster")
            return self._executor

    def close(self) -> None:
        with self._executor_lock:
            pool, self._executor = self._executor, None
        if pool is not None:
            pool.shutdown(wait=True)
        for manager in self.managers:
            manager.close()

    # ------------------------------------------------------------------
    def _partitioner(self, name: str) -> RangePartitioner:
        try:
            return self._partitioners[name]
        except KeyError:
            raise StorageError(
                f"array {name!r} is not registered with this "
                "coordinator") from None

    def _schema(self, name: str) -> ArraySchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise StorageError(
                f"array {name!r} is not registered with this "
                "coordinator") from None

    def _normalize(self, name: str,
                   payload: Payload | ArrayData | np.ndarray) -> ArrayData:
        schema = self._schema(name)
        if isinstance(payload, ArrayData):
            return payload
        if isinstance(payload, np.ndarray):
            return ArrayData.from_single(schema, payload)
        return payload.to_array_data(schema)


def _band_schema(schema: ArraySchema,
                 local_shape: tuple[int, ...]) -> ArraySchema:
    """The schema of one node's partition (zero-based, band-sized)."""
    dims = tuple(
        Dimension(dim.name, 0, extent - 1)
        for dim, extent in zip(schema.dimensions, local_shape))
    attrs = tuple(
        Attribute(attr.name, attr.dtype, attr.default)
        for attr in schema.attributes)
    return ArraySchema(dimensions=dims, attributes=attrs)
