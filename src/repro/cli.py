"""Command-line inspector for a versioned array store.

Usage::

    python -m repro.cli <store-root> list
    python -m repro.cli <store-root> info <array>
    python -m repro.cli <store-root> versions <array>
    python -m repro.cli <store-root> chunks <array> <version>
    python -m repro.cli <store-root> layout <array>
    python -m repro.cli <store-root> sql "VERSIONS(Example);"
    python -m repro.cli <store-root> --workers 4 ingest <array> a.npy b.npy

``list`` enumerates arrays; ``info`` prints schema and storage figures;
``versions`` the version history with parentage; ``chunks`` the
per-chunk encoding records of one version (which delta codec, which
base, where on disk); ``layout`` the current materialization structure
as a tree; ``sql`` executes one AQL statement; ``ingest`` appends one
version per ``.npy`` file (creating the array from the first file's
shape and dtype when absent) and reports throughput — ``--workers``
sets the encode *and* decode parallelism, so ingest fans chunk encoding
across the thread pool.  ``--fuse {0,1}`` selects the fused
delta-chain decode (default on): deep-chain reads fold every
composable delta level into one accumulator and apply it to the
materialized root once, byte-identical to the stepwise path.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import fmt_bytes, fmt_seconds
from repro.core.errors import StorageError
from repro.core.schema import ArraySchema
from repro.query.engine import Database
from repro.storage.backend import ensure_backend_spec
from repro.storage.pipeline import resolve_workers


def _cmd_list(db: Database, _args) -> int:
    for name in db.manager.list_arrays():
        print(name)
    return 0


def _cmd_info(db: Database, args) -> int:
    props = db.properties(args.array)
    record = db.manager.catalog.get_array(args.array)
    print(f"array:       {args.array}")
    print(f"schema:      {record.schema.to_aql()}")
    print(f"chunk bytes: {record.chunk_bytes}")
    print(f"compressor:  {record.compressor}")
    if record.parent_array:
        print(f"branched:    from {record.parent_array}"
              f"@{record.parent_version}")
    print(f"versions:    {props['versions']}")
    print(f"stored:      {fmt_bytes(props['stored_bytes'])}")
    print(f"logical:     {fmt_bytes(props['logical_bytes'])}")
    print(f"ratio:       {props['compression_ratio']:.2f}x")
    if props["sparsity"] is not None:
        print(f"sparsity:    {props['sparsity']:.2%} empty")
    return 0


def _cmd_versions(db: Database, args) -> int:
    record = db.manager.catalog.get_array(args.array)
    for version in db.manager.catalog.get_versions(record.array_id):
        size = db.manager.stored_bytes(args.array, version.version)
        parent = f" parent=v{version.parent_version}" \
            if version.parent_version else ""
        merge_parents = db.manager.catalog.merge_parents_of(
            record.array_id, version.version)
        merged = f" merged-from={merge_parents}" if merge_parents else ""
        print(f"v{version.version}  kind={version.kind}"
              f"{parent}{merged}  stored={fmt_bytes(size)}")
    return 0


def _cmd_chunks(db: Database, args) -> int:
    record = db.manager.catalog.get_array(args.array)
    chunks = db.manager.catalog.chunks_for_version(record.array_id,
                                                   args.version)
    for chunk in chunks:
        encoding = (f"delta[{chunk.delta_codec}] vs v{chunk.base_version}"
                    if chunk.is_delta else
                    f"materialized[{chunk.compressor}]")
        print(f"{chunk.attribute}/{chunk.chunk_name}  {encoding}  "
              f"{fmt_bytes(chunk.location.length)} at "
              f"{chunk.location.path}+{chunk.location.offset}")
    return 0


def _cmd_layout(db: Database, args) -> int:
    record = db.manager.catalog.get_array(args.array)
    parent_of: dict[int, set[int]] = {}
    roots = []
    for version in db.manager.catalog.get_versions(record.array_id):
        chunks = db.manager.catalog.chunks_for_version(
            record.array_id, version.version)
        bases = {c.base_version for c in chunks if c.is_delta}
        if bases:
            for base in bases:
                parent_of.setdefault(base, set()).add(version.version)
        else:
            roots.append(version.version)

    def render(version: int, indent: int) -> None:
        marker = "M" if indent == 0 else "Δ"
        print("  " * indent + f"{marker} v{version}")
        for child in sorted(parent_of.get(version, ())):
            render(child, indent + 1)

    for root in roots:
        render(root, 0)
    return 0


def _cmd_ingest(db: Database, args) -> int:
    """Append one version per ``.npy`` file, creating the array from
    the first file when it does not exist yet."""
    # Validate before any side effect (the ensure_policy rule): a typo,
    # an unloadable file, or a shape mismatch must fail before the
    # first version is created.  mmap keeps the pass cheap.
    missing = [filename for filename in args.files
               if not Path(filename).is_file()]
    if missing:
        print(f"ingest: no such file: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    shapes = {}
    for filename in args.files:
        try:
            probe = np.load(filename, mmap_mode="r")
        except Exception as exc:
            print(f"ingest: cannot load {filename}: {exc}",
                  file=sys.stderr)
            return 2
        shapes[filename] = (probe.shape, probe.dtype)
    if len(set(shapes.values())) > 1:
        print(f"ingest: files disagree on shape/dtype: {shapes}",
              file=sys.stderr)
        return 2
    manager = db.manager
    total_bytes = 0
    count = 0
    exists = args.array in manager.list_arrays()
    start = time.perf_counter()
    for filename in args.files:
        data = np.load(filename)
        if not exists:
            manager.create_array(
                args.array,
                ArraySchema.simple(data.shape, dtype=data.dtype),
                chunk_bytes=args.chunk_bytes)
            exists = True
        version = manager.insert(args.array, data)
        total_bytes += data.nbytes
        count += 1
        print(f"v{version}  {fmt_bytes(data.nbytes)}  {filename}")
    elapsed = time.perf_counter() - start
    window = manager.stats
    rate = total_bytes / elapsed if elapsed else float("inf")
    print(f"ingested {count} version(s), {fmt_bytes(total_bytes)} in "
          f"{fmt_seconds(elapsed)} ({fmt_bytes(rate)}/s; "
          f"{window.encode_tasks} encode tasks, "
          f"{fmt_bytes(window.bytes_written)} stored)")
    return 0


def _cmd_sql(db: Database, args) -> int:
    result = db.execute(args.statement)
    if result.value is not None:
        print(result.value)
    return 0


def _backend_spec(text: str) -> str:
    """argparse type for ``--backend``: validate the spec *before* the
    store is opened (the ``ensure_policy`` pattern — a bad flag must
    fail before any directory or catalog file is created).  Delegates
    to the storage layer's own validator so the CLI and the
    ``backend=`` kwarg can never drift."""
    try:
        return ensure_backend_spec(text)
    except StorageError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _workers_count(text: str) -> int:
    """argparse type for ``--workers``: delegates to the storage
    layer's own validator so the CLI and the ``workers=`` kwarg can
    never drift."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}") from None
    try:
        return resolve_workers(value)
    except StorageError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _fuse_flag(text: str) -> bool:
    """argparse type for ``--fuse``: accepts exactly the values
    ``REPRO_FUSE`` accepts (see
    :func:`repro.storage.pipeline.resolve_fuse`), so the flag and the
    env knob can never drift."""
    if text not in ("0", "1"):
        raise argparse.ArgumentTypeError(
            f"fuse must be 0 or 1, got {text!r}")
    return text == "1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Inspect a versioned array store.")
    parser.add_argument("root", help="store root directory")
    parser.add_argument("--backend", type=_backend_spec,
                        default="local",
                        help="storage backend for chunk payloads"
                             " (default: local files; 'memory' starts"
                             " an empty ephemeral store;"
                             " 'object[:durable]' is the S3-style"
                             " object store — ranged GETs, multipart"
                             " append; 'striped:<n>[:<child>]' stripes"
                             " objects over n child backends, child in"
                             " {local,durable,memory,object};"
                             " 'faulty:<seed>[:<inner>]' injects a"
                             " deterministic seeded fault schedule"
                             " over an inner backend — seed 0 is"
                             " fault-free)")
    parser.add_argument("--workers", type=_workers_count, default=None,
                        help="parallel chunk encode/reconstruction"
                             " degree, applied to reads and to ingest"
                             " (default: the REPRO_WORKERS environment"
                             " variable, else serial)")
    parser.add_argument("--fuse", type=_fuse_flag, default=None,
                        metavar="{0,1}",
                        help="fused delta-chain decode: fold a chain"
                             " of composable deltas into one"
                             " accumulator and apply it to the root"
                             " once, instead of one apply per level"
                             " (default: the REPRO_FUSE environment"
                             " variable, else on; results are"
                             " byte-identical either way)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list").set_defaults(func=_cmd_list)

    info = commands.add_parser("info")
    info.add_argument("array")
    info.set_defaults(func=_cmd_info)

    versions = commands.add_parser("versions")
    versions.add_argument("array")
    versions.set_defaults(func=_cmd_versions)

    chunks = commands.add_parser("chunks")
    chunks.add_argument("array")
    chunks.add_argument("version", type=int)
    chunks.set_defaults(func=_cmd_chunks)

    layout = commands.add_parser("layout")
    layout.add_argument("array")
    layout.set_defaults(func=_cmd_layout)

    ingest = commands.add_parser("ingest")
    ingest.add_argument("array")
    ingest.add_argument("files", nargs="+",
                        help=".npy files, one version each")
    ingest.add_argument("--chunk-bytes", type=int, default=None,
                        help="chunk byte budget when the array is"
                             " created by this ingest")
    ingest.set_defaults(func=_cmd_ingest)

    sql = commands.add_parser("sql")
    sql.add_argument("statement")
    sql.set_defaults(func=_cmd_sql)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with Database(args.root, backend=args.backend,
                  workers=args.workers, fuse_chains=args.fuse) as db:
        return args.func(db, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
