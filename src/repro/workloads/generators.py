"""The five workloads of Table V (Section V-B).

"Table V gives the results for five different workloads: i) Head, where
the most recent version is selected with 90% probability, and another
single random version is selected with 10% probability (this is repeated
10 times) ii) Random, where a random single version is selected (this is
repeated 30 times) iii) Range, where with 10% probability, a random
single matrix is selected and with 90% probability, a random range with
a standard deviation of 10 is selected (this is repeated 30 times)
iv) Mixed, where a query is chosen from the three previous query types
with equal probability (this is repeated 15 times) and finally
v) Update, where a random modification is made (this is repeated 5
times, each time for a different version chosen uniformly at random)."

Each generator yields :class:`Operation` records; :func:`run_workload`
executes them against a storage manager and reports wall-clock time plus
I/O counters, and :func:`to_optimizer_workload` converts read operations
into the weighted-query form the Section IV-D optimizer consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.array import DeltaListPayload
from repro.materialize.workload_opt import (
    RangeQuery,
    SnapshotQuery,
    WeightedQuery,
    Workload,
)
from repro.storage.manager import VersionedStorageManager

SNAPSHOT = "snapshot"
RANGE = "range"
UPDATE = "update"


@dataclass(frozen=True)
class Operation:
    """One workload operation.

    ``versions`` is the inclusive (first, last) version pair for reads;
    for updates it names the single version being modified.
    """

    kind: str
    first: int
    last: int

    @property
    def versions(self) -> tuple[int, ...]:
        return tuple(range(self.first, self.last + 1))


def _random_version(rng: np.random.Generator, count: int) -> int:
    return int(rng.integers(1, count + 1))


def _random_range(rng: np.random.Generator, count: int,
                  std: float = 10.0) -> tuple[int, int]:
    """A random range whose length has the paper's std-dev of 10."""
    length = max(1, int(round(abs(rng.normal(0, std)))))
    length = min(length, count)
    first = int(rng.integers(1, count - length + 2))
    return first, first + length - 1


def head_workload(version_count: int, *, repetitions: int = 10,
                  seed: int = 0) -> list[Operation]:
    """90% latest version, 10% a random version."""
    rng = np.random.default_rng(seed)
    operations = []
    for _ in range(repetitions):
        if rng.random() < 0.9:
            version = version_count
        else:
            version = _random_version(rng, version_count)
        operations.append(Operation(SNAPSHOT, version, version))
    return operations


def random_workload(version_count: int, *, repetitions: int = 30,
                    seed: int = 1) -> list[Operation]:
    """A random single version per query."""
    rng = np.random.default_rng(seed)
    return [Operation(SNAPSHOT, v, v)
            for v in (_random_version(rng, version_count)
                      for _ in range(repetitions))]


def range_workload(version_count: int, *, repetitions: int = 30,
                   seed: int = 2, std: float = 10.0) -> list[Operation]:
    """10% single snapshots, 90% ranges with length std-dev 10."""
    rng = np.random.default_rng(seed)
    operations = []
    for _ in range(repetitions):
        if rng.random() < 0.1:
            version = _random_version(rng, version_count)
            operations.append(Operation(SNAPSHOT, version, version))
        else:
            first, last = _random_range(rng, version_count, std)
            operations.append(Operation(RANGE, first, last))
    return operations


def mixed_workload(version_count: int, *, repetitions: int = 15,
                   seed: int = 3) -> list[Operation]:
    """Equal-probability mixture of Head, Random, and Range queries."""
    rng = np.random.default_rng(seed)
    operations = []
    for _ in range(repetitions):
        kind = int(rng.integers(0, 3))
        if kind == 0:  # head-style
            if rng.random() < 0.9:
                version = version_count
            else:
                version = _random_version(rng, version_count)
            operations.append(Operation(SNAPSHOT, version, version))
        elif kind == 1:  # random
            version = _random_version(rng, version_count)
            operations.append(Operation(SNAPSHOT, version, version))
        else:  # range
            first, last = _random_range(rng, version_count)
            operations.append(Operation(RANGE, first, last))
    return operations


def update_workload(version_count: int, *, repetitions: int = 5,
                    seed: int = 4) -> list[Operation]:
    """Random modifications to distinct uniformly-chosen versions."""
    rng = np.random.default_rng(seed)
    chosen = rng.choice(np.arange(1, version_count + 1),
                        size=min(repetitions, version_count),
                        replace=False)
    return [Operation(UPDATE, int(v), int(v)) for v in chosen]


#: Table V's workload column order.
TABLE5_WORKLOADS = ("head", "random", "range", "update", "mixed")


def workload_by_name(name: str, version_count: int,
                     seed: int = 0) -> list[Operation]:
    """Build one of the Table V workloads by its column name."""
    factories = {
        "head": head_workload,
        "random": random_workload,
        "range": range_workload,
        "mixed": mixed_workload,
        "update": update_workload,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; "
                         f"expected {sorted(factories)}") from None
    return factory(version_count, seed=seed)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class WorkloadReport:
    """Wall-clock and I/O outcome of one workload run."""

    name: str
    seconds: float
    bytes_read: int
    chunks_read: int
    operations: int


def run_workload(manager: VersionedStorageManager, array: str,
                 operations: list[Operation], *,
                 name: str = "workload",
                 update_cells: int = 16,
                 seed: int = 99) -> WorkloadReport:
    """Execute a workload against one array and measure it.

    Updates follow the paper's no-overwrite model: a "random
    modification" of version v inserts a *new* version whose payload is
    a delta-list against v.
    """
    rng = np.random.default_rng(seed)
    record = manager.catalog.get_array(array)
    schema = record.schema
    started = time.perf_counter()
    with manager.stats.measure() as window:
        for operation in operations:
            if operation.kind == SNAPSHOT:
                manager.select(array, operation.first)
            elif operation.kind == RANGE:
                manager.select_versions(
                    array, list(operation.versions))
            elif operation.kind == UPDATE:
                cells = rng.integers(
                    0, schema.cell_count, size=update_cells)
                coords = np.array([schema.unflatten_index(int(c))
                                   for c in cells])
                attr = schema.attributes[0]
                values = rng.integers(0, 100, size=update_cells) \
                    .astype(attr.dtype)
                manager.insert(array, DeltaListPayload.of(
                    coords, values, base_version=operation.first,
                    attribute=attr.name))
            else:
                raise ValueError(f"unknown operation kind "
                                 f"{operation.kind!r}")
    elapsed = time.perf_counter() - started
    return WorkloadReport(name=name, seconds=elapsed,
                          bytes_read=window.bytes_read,
                          chunks_read=window.chunks_read,
                          operations=len(operations))


def to_optimizer_workload(operations: list[Operation]) -> Workload:
    """Collapse read operations into the optimizer's weighted-query form."""
    weights: dict[tuple[str, int, int], float] = {}
    for operation in operations:
        if operation.kind == UPDATE:
            continue
        key = (operation.kind, operation.first, operation.last)
        weights[key] = weights.get(key, 0.0) + 1.0
    workload: Workload = []
    for (kind, first, last), weight in sorted(weights.items()):
        if kind == SNAPSHOT:
            workload.append(WeightedQuery(SnapshotQuery(first), weight))
        else:
            workload.append(WeightedQuery(RangeQuery(first, last), weight))
    return workload
