"""Workload generators and execution harness (Section V-B, Table V)."""

from repro.workloads.generators import (
    RANGE,
    SNAPSHOT,
    TABLE5_WORKLOADS,
    UPDATE,
    Operation,
    WorkloadReport,
    head_workload,
    mixed_workload,
    random_workload,
    range_workload,
    run_workload,
    to_optimizer_workload,
    update_workload,
    workload_by_name,
)

__all__ = [
    "Operation",
    "RANGE",
    "SNAPSHOT",
    "TABLE5_WORKLOADS",
    "UPDATE",
    "WorkloadReport",
    "head_workload",
    "mixed_workload",
    "random_workload",
    "range_workload",
    "run_workload",
    "to_optimizer_workload",
    "update_workload",
    "workload_by_name",
]
