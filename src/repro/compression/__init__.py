"""Chunk compression library (Section III-B.2).

Reimplements the SciDB compression library codecs the paper evaluates:
run-length encoding, null suppression, Lempel-Ziv, plus the image-derived
PNG-like and JPEG2000-like codecs, and a from-scratch LZW used for
ablations.  All codecs are lossless for every supported dtype.
"""

from repro.compression.adaptive import AdaptiveLZCodec
from repro.compression.base import Codec, IdentityCodec
from repro.compression.jpeg2000_like import JPEG2000LikeCodec
from repro.compression.lz import LempelZivCodec, lz_bytes, unlz_bytes
from repro.compression.lzw import LZWCodec
from repro.compression.null_suppression import NullSuppressionCodec
from repro.compression.png_like import PNGLikeCodec
from repro.compression.registry import (
    codec_names,
    get_codec,
    register_codec,
)
from repro.compression.rle import RunLengthCodec

__all__ = [
    "AdaptiveLZCodec",
    "Codec",
    "IdentityCodec",
    "JPEG2000LikeCodec",
    "LZWCodec",
    "LempelZivCodec",
    "NullSuppressionCodec",
    "PNGLikeCodec",
    "RunLengthCodec",
    "codec_names",
    "get_codec",
    "lz_bytes",
    "register_codec",
    "unlz_bytes",
]
