"""Codec registry: look up compression codecs by the name stored in metadata.

The version metadata records, per chunk, the name of the compression
codec that produced it (Section II-A step three).  The select path uses
this registry to find the matching decoder.
"""

from __future__ import annotations

from typing import Callable

from repro.compression.adaptive import AdaptiveLZCodec
from repro.compression.base import Codec, IdentityCodec
from repro.compression.jpeg2000_like import JPEG2000LikeCodec
from repro.compression.lz import LempelZivCodec
from repro.compression.lzw import LZWCodec
from repro.compression.null_suppression import NullSuppressionCodec
from repro.compression.png_like import PNGLikeCodec
from repro.compression.rle import RunLengthCodec
from repro.core.errors import CodecError

_FACTORIES: dict[str, Callable[[], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register (or replace) a codec factory under ``name``."""
    _FACTORIES[name] = factory


def codec_names() -> tuple[str, ...]:
    """All registered codec names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_codec(name: str) -> Codec:
    """Instantiate the codec registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CodecError(
            f"unknown compression codec {name!r}; "
            f"registered: {codec_names()}") from None
    return factory()


register_codec(AdaptiveLZCodec.name, AdaptiveLZCodec)
register_codec(IdentityCodec.name, IdentityCodec)
register_codec(RunLengthCodec.name, RunLengthCodec)
register_codec(NullSuppressionCodec.name, NullSuppressionCodec)
register_codec(LempelZivCodec.name, LempelZivCodec)
register_codec(LZWCodec.name, LZWCodec)
register_codec(PNGLikeCodec.name, PNGLikeCodec)
register_codec(JPEG2000LikeCodec.name, JPEG2000LikeCodec)
