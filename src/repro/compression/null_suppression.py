"""Null suppression: drop leading zero bytes of each cell.

Null suppression is the classic database compression scheme (Section
III-B.2 cites it from the SciDB compression library): integer values that
are small relative to their declared width waste high-order zero bytes,
so each cell is stored as a short length code plus only its significant
bytes.

The implementation is fully vectorized: cells are viewed as little-endian
byte rows, per-cell significant lengths are computed with an ``argmax``
over the reversed nonzero mask, and the surviving bytes are gathered with
a single boolean mask.

Float arrays are bit-cast to the same-width unsigned integers first; this
keeps the codec lossless for every dtype (though floats rarely have zero
high bytes, mirroring the real scheme's ineffectiveness on floats).

On-disk layout::

    array header (dtype, shape)
    u8   bits per length code
    packed per-cell byte lengths (bitpack)
    surviving bytes, cell-major
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec
from repro.core import bitpack
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_u8,
    unpack_array_header,
    unpack_u8,
)


def _byte_view(array: np.ndarray) -> np.ndarray:
    """(n, itemsize) little-endian byte matrix of the flattened cells."""
    flat = np.ascontiguousarray(array).ravel()
    itemsize = flat.dtype.itemsize
    rows = flat.view(np.uint8).reshape(flat.size, itemsize)
    if flat.dtype.byteorder == ">":  # pragma: no cover - BE platforms only
        rows = rows[:, ::-1]
    return rows


class NullSuppressionCodec(Codec):
    """Per-cell leading-zero-byte suppression."""

    name = "null-suppression"

    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        if array.size == 0:
            return header + pack_u8(0)
        rows = _byte_view(array)
        itemsize = rows.shape[1]

        nonzero = rows != 0
        # Significant length = index of the highest nonzero byte + 1;
        # all-zero cells take length 0.
        reversed_mask = nonzero[:, ::-1]
        first_from_top = np.argmax(reversed_mask, axis=1)
        any_nonzero = reversed_mask.any(axis=1)
        lengths = np.where(any_nonzero, itemsize - first_from_top, 0)

        keep = np.arange(itemsize)[None, :] < lengths[:, None]
        payload = rows[keep].tobytes()

        bits = bitpack.required_bits(itemsize)
        packed_lengths = bitpack.pack_unsigned(
            lengths.astype(np.uint64), bits)
        return b"".join([header, pack_u8(bits), packed_lengths, payload])

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        bits, offset = unpack_u8(data, offset)
        total = int(np.prod(shape)) if shape else 1
        if total == 0:
            return np.zeros(shape, dtype=dtype)
        itemsize = np.dtype(dtype).itemsize

        packed_len = bitpack.packed_size(total, bits)
        lengths = bitpack.unpack_unsigned(
            data[offset:offset + packed_len], bits, total).astype(np.int64)
        offset += packed_len
        if int(lengths.max(initial=0)) > itemsize:
            raise CodecError("null-suppression length exceeds cell width")

        payload = np.frombuffer(data, dtype=np.uint8,
                                count=int(lengths.sum()), offset=offset)
        rows = np.zeros((total, itemsize), dtype=np.uint8)
        keep = np.arange(itemsize)[None, :] < lengths[:, None]
        rows[keep] = payload
        if np.dtype(dtype).byteorder == ">":  # pragma: no cover
            rows = rows[:, ::-1]
        return rows.reshape(-1).view(dtype)[:total].reshape(shape).copy()
