"""Adaptive compression: enable LZ only where it pays.

Table IV's discussion: "These results suggest that it might be
interesting to adaptively enable LZ compression based on the data set
size and the anticipated compression ratios; we leave this to future
work."  This codec implements that future work:

* payloads smaller than ``min_bytes`` are stored raw — at small sizes
  decompression CPU dominates any I/O savings (the Table VII effect
  where "uncompressed access was the most efficient");
* otherwise the LZ ratio is *anticipated* from a prefix sample of the
  raw bytes; only when the predicted ratio beats ``min_ratio`` is the
  whole payload compressed, and the final encoding keeps whichever
  representation actually turned out smaller.

Each payload carries a one-byte tag so decoding is self-describing, and
the codec registers as ``"adaptive-lz"`` for use as a storage-manager
compressor.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import Codec
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_u8,
    unpack_array_header,
    unpack_u8,
)

_RAW = 0
_LZ = 1


class AdaptiveLZCodec(Codec):
    """LZ that turns itself off when it would not help."""

    name = "adaptive-lz"

    def __init__(self, *, min_bytes: int = 4096,
                 sample_bytes: int = 8192,
                 min_ratio: float = 0.9,
                 level: int = 6):
        if min_bytes < 0 or sample_bytes <= 0:
            raise CodecError("thresholds must be positive")
        if not 0 < min_ratio <= 1:
            raise CodecError("min_ratio must be in (0, 1]")
        self.min_bytes = min_bytes
        self.sample_bytes = sample_bytes
        self.min_ratio = min_ratio
        self.level = level

    # ------------------------------------------------------------------
    def anticipated_ratio(self, raw: bytes) -> float:
        """Predicted compressed/raw ratio from a prefix sample."""
        sample = raw[:self.sample_bytes]
        if not sample:
            return 1.0
        return len(zlib.compress(sample, self.level)) / len(sample)

    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        raw = array.tobytes()

        use_lz = len(raw) >= self.min_bytes and \
            self.anticipated_ratio(raw) <= self.min_ratio
        if use_lz:
            compressed = zlib.compress(raw, self.level)
            # Keep whichever representation actually won.
            if len(compressed) < len(raw):
                return header + pack_u8(_LZ) + compressed
        return header + pack_u8(_RAW) + raw

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        tag, offset = unpack_u8(data, offset)
        payload = data[offset:]
        if tag == _LZ:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise CodecError(f"adaptive-lz stream corrupt: {exc}") \
                    from exc
        elif tag != _RAW:
            raise CodecError(f"unknown adaptive-lz tag {tag}")
        count = int(np.prod(shape)) if shape else 1
        flat = np.frombuffer(payload, dtype=dtype, count=count)
        return flat.reshape(shape).copy()
