"""Run-length encoding.

The paper: "Run-length simply stores a list of tuples of the form
(value, # of repetitions), to eliminate repeated values."

Runs are detected on the *bit patterns* of cells (via an unsigned byte
view), not on numeric equality, so that NaNs with identical payloads form
runs and ``-0.0`` / ``+0.0`` are kept distinct — the codec is bit-exact.

On-disk layout::

    array header (dtype, shape)
    u8   bits per run length
    i64  number of runs
    packed run lengths (bitpack, LSB-first)
    raw run values (native dtype bytes)
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec
from repro.core import bitpack
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_i64,
    pack_u8,
    unpack_array_header,
    unpack_i64,
    unpack_u8,
)


class RunLengthCodec(Codec):
    """Lossless run-length encoder over flattened (row-major) cells."""

    name = "rle"

    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        flat = array.ravel()
        if flat.size == 0:
            return header + pack_u8(0) + pack_i64(0)

        # Compare bit patterns byte-wise so NaN == NaN for run purposes.
        as_bytes = flat.view(np.uint8).reshape(flat.size, array.dtype.itemsize)
        changed = np.any(as_bytes[1:] != as_bytes[:-1], axis=1)
        starts = np.concatenate(([0], np.flatnonzero(changed) + 1))
        ends = np.concatenate((starts[1:], [flat.size]))
        lengths = (ends - starts).astype(np.uint64)
        values = flat[starts]

        # Lengths are >= 1; store length-1 so all-singleton arrays pack to
        # zero bits.
        codes = lengths - np.uint64(1)
        bits = bitpack.required_bits_for(codes)
        packed = bitpack.pack_unsigned(codes, bits)
        return b"".join([
            header,
            pack_u8(bits),
            pack_i64(len(values)),
            packed,
            values.tobytes(),
        ])

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        bits, offset = unpack_u8(data, offset)
        run_count, offset = unpack_i64(data, offset)
        total = int(np.prod(shape)) if shape else 1
        if run_count == 0:
            if total != 0:
                raise CodecError("RLE stream has no runs for non-empty array")
            return np.zeros(shape, dtype=dtype)

        packed_len = bitpack.packed_size(run_count, bits)
        codes = bitpack.unpack_unsigned(
            data[offset:offset + packed_len], bits, run_count)
        offset += packed_len
        lengths = codes.astype(np.int64) + 1
        values = np.frombuffer(data, dtype=dtype, count=run_count,
                               offset=offset)
        if int(lengths.sum()) != total:
            raise CodecError(
                f"RLE run lengths sum to {int(lengths.sum())}, "
                f"expected {total}")
        return np.repeat(values, lengths).reshape(shape)
