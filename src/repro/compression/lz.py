"""Lempel-Ziv compression.

The paper's LZ codec (Ziv & Lempel 1977, reference [7]) "compresses by
accumulating a dictionary of known patterns".  We expose the DEFLATE
implementation from the standard library (LZ77 + Huffman), which is the
same family of algorithm the SciDB compression library used, wrapped so
that the output is self-describing.

On-disk layout::

    array header (dtype, shape)
    u8   zlib level
    zlib-compressed raw cell bytes
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import Codec
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_u8,
    unpack_array_header,
    unpack_u8,
)


class LempelZivCodec(Codec):
    """LZ77/DEFLATE over the raw row-major cell bytes."""

    name = "lz"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError(f"zlib level must be in [1, 9], got {level}")
        self.level = level

    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        compressed = zlib.compress(array.tobytes(), self.level)
        return header + pack_u8(self.level) + compressed

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        _level, offset = unpack_u8(data, offset)
        try:
            raw = zlib.decompress(data[offset:])
        except zlib.error as exc:
            raise CodecError(f"LZ stream corrupt: {exc}") from exc
        count = int(np.prod(shape)) if shape else 1
        flat = np.frombuffer(raw, dtype=dtype, count=count)
        return flat.reshape(shape).copy()


def lz_bytes(blob: bytes, level: int = 6) -> bytes:
    """Compress an opaque byte string (used by the storage layer)."""
    return zlib.compress(blob, level)


def unlz_bytes(blob) -> bytes:
    """Inverse of :func:`lz_bytes`; accepts any bytes-like buffer.

    Strict about stream length: a truncated stream and trailing bytes
    after the stream's end both raise (one-shot ``zlib.decompress``
    would silently ignore the latter), so addressing bugs in the
    storage layer surface instead of vanishing."""
    decomp = zlib.decompressobj()
    try:
        out = decomp.decompress(blob) + decomp.flush()
    except zlib.error as exc:
        raise CodecError(f"LZ stream corrupt: {exc}") from exc
    if not decomp.eof:
        raise CodecError("LZ stream corrupt: truncated stream")
    if decomp.unused_data:
        raise CodecError(f"LZ stream has {len(decomp.unused_data)} "
                         "trailing bytes")
    return out
