"""JPEG2000-style compression: reversible integer wavelet + entropy coding.

The paper: "JPEG 2000 uses wavelets."  Lossless JPEG2000 is built on the
LeGall 5/3 *integer lifting* wavelet, which this codec reimplements from
scratch:

1. cells are mapped to integer codes (integers directly; floats are
   bit-cast to same-width integers, which keeps the transform lossless —
   and, as the paper observed, makes wavelets a poor fit for float data);
2. a multi-level 2-D (or 1-D) 5/3 lifting decomposition decorrelates the
   codes.  Lifting steps use wrap-around integer arithmetic, which is
   exactly invertible regardless of dynamic range;
3. the coefficient planes are zigzag-mapped to unsigned codes, bit-packed
   at the minimal width per subband pass, and DEFLATE is applied on top
   as the entropy-coding stage.

On-disk layout::

    array header (dtype, shape)
    u8   number of decomposition levels
    u8   bits per coefficient
    zlib(packed zigzag coefficients)
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import Codec
from repro.core import bitpack
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_u8,
    unpack_array_header,
    unpack_u8,
)

_FLOAT_TO_INT = {
    np.dtype(np.float32): np.dtype(np.int32),
    np.dtype(np.float64): np.dtype(np.int64),
}


def _to_codes(array: np.ndarray) -> np.ndarray:
    """Map cells to int64 codes, bit-casting floats."""
    dtype = array.dtype
    if dtype.kind in ("i", "u", "b"):
        return array.astype(np.int64)
    if dtype in _FLOAT_TO_INT:
        return array.view(_FLOAT_TO_INT[dtype]).astype(np.int64)
    raise CodecError(f"jpeg2000-like codec: unsupported dtype {dtype}")


def _from_codes(codes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`_to_codes`."""
    dtype = np.dtype(dtype)
    with np.errstate(over="ignore"):
        if dtype.kind in ("i", "u", "b"):
            return codes.astype(dtype)
        if dtype in _FLOAT_TO_INT:
            return codes.astype(_FLOAT_TO_INT[dtype]).view(dtype)
    raise CodecError(f"jpeg2000-like codec: unsupported dtype {dtype}")


def _forward_53_1d(signal: np.ndarray) -> np.ndarray:
    """One level of the 5/3 lifting transform along axis 0.

    Returns the concatenation [lowpass, highpass].  All arithmetic is
    wrap-around int64; floor division matches the JPEG2000 reversible
    filter definition.
    """
    n = signal.shape[0]
    if n < 2:
        return signal.copy()
    even = signal[0::2].copy()
    odd = signal[1::2].copy()
    # Predict: odd -= floor((left_even + right_even) / 2)
    right = even[1:] if len(even) > len(odd) else \
        np.concatenate([even[1:], even[-1:]])
    if len(right) < len(odd):  # pragma: no cover - defensive
        right = np.concatenate([right, even[-1:]])
    with np.errstate(over="ignore"):
        odd -= (even[:len(odd)] + right[:len(odd)]) >> 1
        # Update: even += floor((left_odd + right_odd + 2) / 4)
        padded_odd = odd if len(odd) == len(even) else \
            np.concatenate([odd, odd[-1:]])
        left_pad = np.concatenate([padded_odd[:1], padded_odd[:-1]])
        even += (left_pad + padded_odd + 2) >> 2
    return np.concatenate([even, odd], axis=0)


def _inverse_53_1d(transformed: np.ndarray, n: int) -> np.ndarray:
    """Invert :func:`_forward_53_1d` for a signal of original length n."""
    if n < 2:
        return transformed.copy()
    half = (n + 1) // 2
    even = transformed[:half].copy()
    odd = transformed[half:].copy()
    with np.errstate(over="ignore"):
        padded_odd = odd if len(odd) == len(even) else \
            np.concatenate([odd, odd[-1:]])
        left_pad = np.concatenate([padded_odd[:1], padded_odd[:-1]])
        even -= (left_pad + padded_odd + 2) >> 2
        right = even[1:] if len(even) > len(odd) else \
            np.concatenate([even[1:], even[-1:]])
        odd += (even[:len(odd)] + right[:len(odd)]) >> 1
    signal = np.empty((n,) + transformed.shape[1:], dtype=transformed.dtype)
    signal[0::2] = even
    signal[1::2] = odd
    return signal


class JPEG2000LikeCodec(Codec):
    """Multi-level reversible 5/3 wavelet compressor."""

    name = "jpeg2000"

    def __init__(self, levels: int = 3, zlib_level: int = 6):
        if not 1 <= levels <= 8:
            raise CodecError("levels must be in [1, 8]")
        self.levels = levels
        self.zlib_level = zlib_level

    # ------------------------------------------------------------------
    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        codes = _to_codes(array)

        work = codes.reshape(codes.shape if codes.ndim else (1,))
        levels_applied = 0
        extents: list[tuple[int, ...]] = []
        for _ in range(self.levels):
            region = tuple(_low_extent(extents, work.shape, levels_applied))
            if max(region) < 2:
                break
            work = _transform_region(work, region, forward=True)
            extents.append(region)
            levels_applied += 1

        zigzag = bitpack.zigzag_encode(work.ravel())
        bits = bitpack.required_bits_for(zigzag)
        packed = bitpack.pack_unsigned(zigzag, bits)
        payload = zlib.compress(packed, self.zlib_level)
        return b"".join([
            header,
            pack_u8(levels_applied),
            pack_u8(bits),
            payload,
        ])

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        levels, offset = unpack_u8(data, offset)
        bits, offset = unpack_u8(data, offset)
        try:
            packed = zlib.decompress(data[offset:])
        except zlib.error as exc:
            raise CodecError(f"jpeg2000-like stream corrupt: {exc}") from exc

        total = int(np.prod(shape)) if shape else 1
        zigzag = bitpack.unpack_unsigned(packed, bits, total)
        work = bitpack.zigzag_decode(zigzag).reshape(shape or (1,))

        # Rebuild the ladder of low-pass extents to invert in reverse order.
        extents: list[tuple[int, ...]] = []
        for level in range(levels):
            extents.append(tuple(_low_extent(extents, work.shape, level)))
        for region in reversed(extents):
            work = _transform_region(work, region, forward=False)
        result = _from_codes(work.ravel(), dtype)
        return result.reshape(shape).copy()


def _low_extent(extents: list[tuple[int, ...]], shape: tuple[int, ...],
                level: int) -> tuple[int, ...]:
    """Extent of the low-pass region at a given decomposition level."""
    if level == 0:
        return tuple(shape)
    previous = extents[level - 1]
    return tuple((extent + 1) // 2 for extent in previous)


def _transform_region(work: np.ndarray, region: tuple[int, ...],
                      forward: bool) -> np.ndarray:
    """Apply the 5/3 lifting step to the low-pass corner of ``work``."""
    out = work.copy()
    corner = tuple(np.s_[:extent] for extent in region)
    block = out[corner]
    # Integer lifting along different axes does not commute exactly, so
    # the inverse must undo the axes in reverse order.
    axes = range(block.ndim) if forward else reversed(range(block.ndim))
    for axis in axes:
        if region[axis] < 2:
            continue
        moved = np.moveaxis(block, axis, 0)
        if forward:
            transformed = _forward_53_1d(moved)
        else:
            transformed = _inverse_53_1d(moved, moved.shape[0])
        block = np.moveaxis(transformed, 0, axis)
    out[corner] = block
    return out
