"""Pure-Python LZW, the dictionary variant of Lempel-Ziv.

The paper's description of LZ — "accumulating a dictionary of known
patterns" — is literally LZW (LZ78 family).  The default ``lz`` codec in
this library is the faster DEFLATE wrapper; this codec exists as a
from-scratch dictionary implementation used in ablation benchmarks and as
an executable specification for tests (the two must agree on round-trips,
not on byte output).

Codes are emitted at a variable width that grows with the dictionary, as
in GIF/TIFF LZW.  The dictionary is reset when it reaches ``max_codes``
entries, bounding memory for large inputs.

On-disk layout::

    array header (dtype, shape)
    i64  number of codes
    u8   reserved (dictionary reset policy version)
    packed variable-width codes, flattened to a bitstream (LSB-first)
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_i64,
    pack_u8,
    unpack_array_header,
    unpack_i64,
    unpack_u8,
)

_RESET_POLICY_VERSION = 1


class LZWCodec(Codec):
    """From-scratch LZW over the raw cell bytes."""

    name = "lzw"

    def __init__(self, max_code_bits: int = 16):
        if not 9 <= max_code_bits <= 24:
            raise CodecError("max_code_bits must be in [9, 24]")
        self.max_code_bits = max_code_bits
        self.max_codes = 1 << max_code_bits

    # ------------------------------------------------------------------
    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        data = array.tobytes()
        codes, widths = self._compress(data)
        bitstream = _pack_variable(codes, widths)
        return b"".join([
            header,
            pack_i64(len(codes)),
            pack_u8(_RESET_POLICY_VERSION),
            bitstream,
        ])

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        code_count, offset = unpack_i64(data, offset)
        policy, offset = unpack_u8(data, offset)
        if policy != _RESET_POLICY_VERSION:
            raise CodecError(f"unsupported LZW stream version {policy}")
        raw = self._decompress(data[offset:], code_count)
        count = int(np.prod(shape)) if shape else 1
        flat = np.frombuffer(raw, dtype=dtype, count=count)
        return flat.reshape(shape).copy()

    # ------------------------------------------------------------------
    def _compress(self, data: bytes) -> tuple[list[int], list[int]]:
        """LZW core; returns the code sequence and per-code bit widths."""
        dictionary: dict[bytes, int] = {bytes([i]): i for i in range(256)}
        next_code = 256
        width = 9
        codes: list[int] = []
        widths: list[int] = []
        if not data:
            return codes, widths

        phrase = bytes([data[0]])
        for byte in data[1:]:
            candidate = phrase + bytes([byte])
            if candidate in dictionary:
                phrase = candidate
                continue
            codes.append(dictionary[phrase])
            widths.append(width)
            dictionary[candidate] = next_code
            next_code += 1
            if next_code > (1 << width) and width < self.max_code_bits:
                width += 1
            if next_code >= self.max_codes:
                dictionary = {bytes([i]): i for i in range(256)}
                next_code = 256
                width = 9
            phrase = bytes([byte])
        codes.append(dictionary[phrase])
        widths.append(width)
        return codes, widths

    def _decompress(self, bitstream: bytes, code_count: int) -> bytes:
        """Inverse of :meth:`_compress`, replaying dictionary growth.

        The encoder updates ``next_code``/``width`` (and possibly resets
        the dictionary) *after emitting* each code, so the decoder must
        apply the identical bookkeeping *before reading* the next code —
        otherwise the variable code widths drift out of sync.
        """
        if code_count == 0:
            return b""
        reader = _BitReader(bitstream)
        table: dict[int, bytes] = {i: bytes([i]) for i in range(256)}
        next_code = 256
        width = 9

        first = reader.read(width)
        if first not in table:
            raise CodecError(f"LZW: invalid initial code {first}")
        output = bytearray(table[first])
        previous = table[first]
        for _ in range(code_count - 1):
            # Bookkeeping the encoder performed after its previous emit:
            # it inserted a candidate at `pending`, bumped next_code and
            # possibly the width, and possibly reset the dictionary
            # (wiping the fresh insertion).
            pending = next_code
            next_code += 1
            if next_code > (1 << width) and width < self.max_code_bits:
                width += 1
            was_reset = next_code >= self.max_codes
            if was_reset:
                table = {i: bytes([i]) for i in range(256)}
                next_code = 256
                width = 9

            code = reader.read(width)
            if was_reset:
                if code not in table:
                    raise CodecError(f"LZW: invalid code {code} after reset")
                entry = table[code]
            elif code == pending:
                # KwKwK case: the code names the entry being defined.
                entry = previous + previous[:1]
                table[pending] = entry
            elif code in table:
                entry = table[code]
                table[pending] = previous + entry[:1]
            else:
                raise CodecError(f"LZW: invalid code {code}")
            output.extend(entry)
            previous = entry
        return bytes(output)


class _BitReader:
    """Reads LSB-first variable-width codes from a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._bit_position = 0

    def read(self, width: int) -> int:
        value = 0
        for out_bit in range(width):
            byte_index, bit_index = divmod(self._bit_position, 8)
            if byte_index >= len(self._data):
                raise CodecError("LZW bitstream truncated")
            bit = (self._data[byte_index] >> bit_index) & 1
            value |= bit << out_bit
            self._bit_position += 1
        return value


def _pack_variable(codes: list[int], widths: list[int]) -> bytes:
    """Pack variable-width codes LSB-first into a byte string."""
    total_bits = sum(widths)
    out = bytearray((total_bits + 7) // 8)
    position = 0
    for code, width in zip(codes, widths):
        for bit in range(width):
            if (code >> bit) & 1:
                byte_index, bit_index = divmod(position + bit, 8)
                out[byte_index] |= 1 << bit_index
        position += width
    return bytes(out)
