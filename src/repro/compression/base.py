"""Compression codec interface.

Section III-B.2: "Our system is able to compress individual versions using
popular compression schemes ... Run-Length encoding, Null Suppression, and
Lempel-Ziv compression.  Additionally, we added compression methods based
on the JPEG2000 and PNG compressors."

Every codec maps a numpy array to a self-describing byte string and back.
Codecs must be *lossless* for every supported dtype: ``decode(encode(a))``
returns an array equal to ``a`` bit-for-bit (NaN payloads included).  The
chunk store treats codec output as opaque bytes; the codec name is
recorded in the version metadata so the select path knows how to decode.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Codec(ABC):
    """A lossless array compressor."""

    #: Registry key and the name recorded in version metadata.
    name: str = "abstract"

    @abstractmethod
    def encode(self, array: np.ndarray) -> bytes:
        """Compress an array into a self-describing byte string."""

    @abstractmethod
    def decode(self, data: bytes) -> np.ndarray:
        """Recover the exact original array from :meth:`encode` output."""

    def decode_view(self, data: bytes) -> np.ndarray:
        """Like :meth:`decode`, but the result may be a *read-only*
        view over ``data`` when the codec can decode without copying.

        Callers must treat the result as immutable and must not assume
        it owns its buffer; anything else should call :meth:`decode`.
        The default simply decodes.
        """
        return self.decode(data)

    def ratio(self, array: np.ndarray) -> float:
        """Convenience: compressed bytes / raw bytes for an array."""
        raw = max(1, np.asarray(array).nbytes)
        return len(self.encode(array)) / raw

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityCodec(Codec):
    """Stores the raw array bytes with only the header added.

    This is the "no compression" baseline used throughout the paper's
    evaluation tables (the ``None`` rows of Table V).
    """

    name = "none"

    def encode(self, array: np.ndarray) -> bytes:
        from repro.core.serial import pack_array_header

        array = np.ascontiguousarray(array)
        return pack_array_header(array.dtype, array.shape) + array.tobytes()

    def decode(self, data: bytes) -> np.ndarray:
        return self.decode_view(data).copy()

    def decode_view(self, data: bytes) -> np.ndarray:
        # The raw-bytes codec can decode without any copy: the result
        # is a read-only reshape of the payload buffer itself.
        from repro.core.serial import unpack_array_header

        dtype, shape, offset = unpack_array_header(data)
        count = int(np.prod(shape)) if shape else 1
        flat = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        return flat.reshape(shape)
