"""PNG-style compression: per-row byte predictors followed by Lempel-Ziv.

The paper: "PNG uses LZ with pre-filtering ... PNG in particular makes
heavy use of a variety of tunable heuristics."  This codec reimplements
the PNG pipeline for arbitrary arrays:

1. the array is viewed as a matrix of rows of raw bytes (first dimension
   = rows, remaining dimensions flattened), with the "pixel stride" equal
   to the cell itemsize so predictors reference the previous *cell*, not
   the previous byte;
2. each row independently picks one of the five PNG filters — None, Sub,
   Up, Average, Paeth — using libpng's minimum-sum-of-absolute-differences
   heuristic;
3. the filter-tagged rows are DEFLATE compressed.

Everything is bit-exact for every dtype because filtering operates on raw
bytes with wrap-around uint8 arithmetic, exactly as PNG does.

On-disk layout::

    array header (dtype, shape)
    u8   zlib level
    zlib(filter tags + filtered rows, row-major)
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.compression.base import Codec
from repro.core.errors import CodecError
from repro.core.serial import (
    pack_array_header,
    pack_u8,
    unpack_array_header,
    unpack_u8,
)

FILTER_NONE = 0
FILTER_SUB = 1
FILTER_UP = 2
FILTER_AVERAGE = 3
FILTER_PAETH = 4


def _paeth_predictor(left: np.ndarray, up: np.ndarray,
                     up_left: np.ndarray) -> np.ndarray:
    """The PNG Paeth predictor, vectorized over a row of bytes."""
    left_i = left.astype(np.int16)
    up_i = up.astype(np.int16)
    up_left_i = up_left.astype(np.int16)
    estimate = left_i + up_i - up_left_i
    distance_left = np.abs(estimate - left_i)
    distance_up = np.abs(estimate - up_i)
    distance_up_left = np.abs(estimate - up_left_i)
    result = np.where(
        (distance_left <= distance_up) & (distance_left <= distance_up_left),
        left,
        np.where(distance_up <= distance_up_left, up, up_left),
    )
    return result.astype(np.uint8)


def _shift_right(row: np.ndarray, stride: int) -> np.ndarray:
    """Row shifted right by one cell (stride bytes), zero-filled."""
    shifted = np.zeros_like(row)
    if stride < len(row):
        shifted[stride:] = row[:-stride]
    return shifted


class PNGLikeCodec(Codec):
    """Five-filter PNG pipeline generalized to arbitrary arrays."""

    name = "png"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError(f"zlib level must be in [1, 9], got {level}")
        self.level = level

    # ------------------------------------------------------------------
    def encode(self, array: np.ndarray) -> bytes:
        array = np.ascontiguousarray(array)
        header = pack_array_header(array.dtype, array.shape)
        stride = array.dtype.itemsize
        rows = self._as_rows(array)

        previous = np.zeros(rows.shape[1] if rows.size else 0, dtype=np.uint8)
        filtered = bytearray()
        for row in rows:
            tag, coded = self._best_filter(row, previous, stride)
            filtered.append(tag)
            filtered.extend(coded.tobytes())
            previous = row
        payload = zlib.compress(bytes(filtered), self.level)
        return header + pack_u8(self.level) + payload

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        _level, offset = unpack_u8(data, offset)
        try:
            raw = zlib.decompress(data[offset:])
        except zlib.error as exc:
            raise CodecError(f"PNG-like stream corrupt: {exc}") from exc

        stride = np.dtype(dtype).itemsize
        total = int(np.prod(shape)) if shape else 1
        if total == 0:
            return np.zeros(shape, dtype=dtype)
        row_count = shape[0] if shape else 1
        row_bytes = total * stride // row_count

        expected = row_count * (1 + row_bytes)
        if len(raw) != expected:
            raise CodecError(
                f"PNG-like payload is {len(raw)} bytes, expected {expected}")

        output = np.empty((row_count, row_bytes), dtype=np.uint8)
        previous = np.zeros(row_bytes, dtype=np.uint8)
        position = 0
        for row_index in range(row_count):
            tag = raw[position]
            position += 1
            coded = np.frombuffer(raw, dtype=np.uint8, count=row_bytes,
                                  offset=position)
            position += row_bytes
            row = self._unfilter(tag, coded, previous, stride)
            output[row_index] = row
            previous = row
        flat = output.reshape(-1).view(dtype)[:total]
        return flat.reshape(shape).copy()

    # ------------------------------------------------------------------
    def _as_rows(self, array: np.ndarray) -> np.ndarray:
        """View the array as (rows, row_bytes) uint8."""
        if array.ndim == 0:
            return array.reshape(1).view(np.uint8).reshape(1, -1)
        rows = array.shape[0] if array.shape[0] > 0 else 1
        return array.view(np.uint8).reshape(rows, -1)

    def _best_filter(self, row: np.ndarray, previous: np.ndarray,
                     stride: int) -> tuple[int, np.ndarray]:
        """Pick the filter minimizing the sum of absolute coded bytes."""
        candidates = {
            FILTER_NONE: row,
            FILTER_SUB: row - _shift_right(row, stride),
            FILTER_UP: row - previous,
            FILTER_AVERAGE: row - (
                (_shift_right(row, stride).astype(np.uint16)
                 + previous.astype(np.uint16)) // 2).astype(np.uint8),
            FILTER_PAETH: row - _paeth_predictor(
                _shift_right(row, stride), previous,
                _shift_right(previous, stride)),
        }
        best_tag = FILTER_NONE
        best_cost = None
        for tag, coded in candidates.items():
            # libpng heuristic: treat coded bytes as signed and minimize
            # the sum of magnitudes.
            as_signed = coded.astype(np.int16)
            magnitudes = np.minimum(as_signed, 256 - as_signed)
            cost = int(magnitudes.sum())
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_tag = tag
        return best_tag, candidates[best_tag]

    def _unfilter(self, tag: int, coded: np.ndarray, previous: np.ndarray,
                  stride: int) -> np.ndarray:
        """Invert one row's filter.  Sub/Average/Paeth require a scan."""
        if tag == FILTER_NONE:
            return coded.copy()
        if tag == FILTER_UP:
            return coded + previous
        if tag == FILTER_SUB:
            # Bytes at the same offset within a cell form independent
            # chains row[k] = coded[k] + row[k-stride]; a modular cumsum
            # along each chain inverts the filter in one vector pass.
            lanes = coded.reshape(-1, stride).astype(np.uint64)
            return np.cumsum(lanes, axis=0).astype(np.uint8).reshape(-1)
        if tag == FILTER_AVERAGE:
            row = coded.copy()
            for index in range(len(row)):
                left = int(row[index - stride]) if index >= stride else 0
                up = int(previous[index])
                row[index] = (int(coded[index]) + (left + up) // 2) % 256
            return row
        if tag == FILTER_PAETH:
            row = coded.copy()
            for index in range(len(row)):
                left = int(row[index - stride]) if index >= stride else 0
                up = int(previous[index])
                up_left = int(previous[index - stride]) if index >= stride else 0
                estimate = left + up - up_left
                distance_left = abs(estimate - left)
                distance_up = abs(estimate - up)
                distance_up_left = abs(estimate - up_left)
                if distance_left <= distance_up and \
                        distance_left <= distance_up_left:
                    predictor = left
                elif distance_up <= distance_up_left:
                    predictor = up
                else:
                    predictor = up_left
                row[index] = (int(coded[index]) + predictor) % 256
            return row
        raise CodecError(f"unknown PNG filter tag {tag}")
