"""Handling new versions without global re-encoding (Section IV-E).

"When a new version is added, we do not want to immediately re-encode
all previous versions."  The paper offers three strategies, all
implemented here:

* :func:`extend_matrix` + :func:`incremental_insert` — "the simplest
  option is to update the materialization matrix, and use it to compute
  the best encoding of the new version in terms of previous versions";
* :class:`BatchUpdatePlanner` — "accumulate a batch of K new versions,
  and compute the optimal encoding of them together (in terms only of
  the other versions in the batch) ... as long as K is relatively large
  (say 10-100), it is sufficient to simply keep these batches separate.
  This also has the effect of constraining the materialization matrix
  size and improving query performance by avoiding very long delta
  chains";
* background re-organization — periodically recompute the optimal
  layout; this is simply :func:`repro.materialize.spanning.optimal_layout`
  applied to the refreshed matrix (storage managers expose it via
  ``apply_layout``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ReproError
from repro.materialize.layout import Layout
from repro.materialize.matrix import MaterializationMatrix, _delta_cost
from repro.materialize.spanning import optimal_layout


def extend_matrix(matrix: MaterializationMatrix,
                  contents: dict[int, np.ndarray],
                  new_id: int, new_array: np.ndarray, *,
                  materialized_size: float | None = None,
                  sample_index: np.ndarray | None = None
                  ) -> MaterializationMatrix:
    """Add one version's row/column to an existing matrix.

    ``contents`` must provide the arrays of the existing versions (they
    are needed for the new pairwise deltas).  Cost: n delta estimates —
    O(n) instead of the O(n^2) full rebuild.
    """
    if new_id in matrix.versions:
        raise ReproError(f"version {new_id} already in matrix")
    missing = set(matrix.versions) - set(contents)
    if missing:
        raise ReproError(f"contents missing versions {sorted(missing)}")

    old_n = matrix.n
    ids = (*matrix.versions, new_id)
    costs = np.zeros((old_n + 1, old_n + 1))
    costs[:old_n, :old_n] = matrix.costs
    new_flat = np.ascontiguousarray(new_array).ravel()
    total = new_flat.size
    for i, version in enumerate(matrix.versions):
        other = np.ascontiguousarray(contents[version]).ravel()
        # Canonical direction: earlier id differenced against later id,
        # matching MaterializationMatrix.build (see _delta_cost).
        if version < new_id:
            cost = _delta_cost(other, new_flat, sample_index, total)
        else:
            cost = _delta_cost(new_flat, other, sample_index, total)
        costs[i, old_n] = costs[old_n, i] = cost
    costs[old_n, old_n] = (materialized_size
                           if materialized_size is not None
                           else new_array.nbytes)
    return MaterializationMatrix(versions=ids, costs=costs)


def incremental_insert(layout: Layout,
                       matrix: MaterializationMatrix,
                       new_id: int) -> Layout:
    """Encode one new version without touching existing encodings.

    The new version is delta'ed against whichever existing version gives
    the smallest delta, or materialized when that is cheaper.
    """
    if new_id in layout.parent_of:
        raise ReproError(f"version {new_id} already laid out")
    best_parent: int | None = None
    best_cost = matrix.materialize_size(new_id)
    for version in layout.versions:
        cost = matrix.delta_size(new_id, version)
        if cost < best_cost:
            best_cost = cost
            best_parent = version
    updated = dict(layout.parent_of)
    updated[new_id] = best_parent
    return Layout(updated).require_valid()


@dataclass
class BatchUpdatePlanner:
    """Batch-of-K optimal encoding with separate batches (Section IV-E).

    Versions accumulate in an open batch; when the batch reaches
    ``batch_size`` it is *flushed*: the space-optimal layout over the
    batch members alone is computed and appended to the global layout.
    Chains therefore never span batches, which bounds both the matrix
    construction cost and the worst-case chain length.
    """

    batch_size: int = 10
    _pending: dict[int, np.ndarray] = field(default_factory=dict)
    _layout: dict[int, int | None] = field(default_factory=dict)
    _flushed_batches: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ReproError("batch_size must be >= 1")

    @property
    def layout(self) -> Layout:
        """Layout of every flushed version (pending ones excluded)."""
        return Layout(dict(self._layout))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def flushed_batches(self) -> int:
        return self._flushed_batches

    def add(self, version: int, contents: np.ndarray) -> Layout | None:
        """Queue a version; returns the batch layout on flush, else None."""
        if version in self._pending or version in self._layout:
            raise ReproError(f"version {version} already added")
        self._pending[version] = np.ascontiguousarray(contents)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> Layout | None:
        """Lay out the open batch (no-op when empty)."""
        if not self._pending:
            return None
        matrix = MaterializationMatrix.build(self._pending)
        batch_layout = optimal_layout(matrix)
        self._layout.update(batch_layout.parent_of)
        self._pending.clear()
        self._flushed_batches += 1
        return batch_layout

    def max_chain_length(self) -> int:
        """Longest reconstruction chain across all flushed batches."""
        layout = self.layout
        if not layout.parent_of:
            return 0
        return max(len(layout.path_to_root(v)) for v in layout.versions)
