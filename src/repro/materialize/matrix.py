"""The Materialization Matrix (Section IV-A).

"The Materialization Matrix MM is an n x n matrix derived from a series
of versions.  The values MM(i, i) on the diagonal give the space required
to materialize a given version V^i.  The values off the diagonal MM(i, j)
represent the space taken by a delta between two versions V^i and V^j.
Note that this matrix is symmetric.  This matrix can be constructed in
O(n^2) pairwise comparisons."

Two construction strategies are provided:

* **exact** — every pairwise delta size is measured with the hybrid
  delta's closed-form size estimator (no bytes are actually encoded);
* **sampled** — "computing the space S to store the deltas based on a
  random sample of R of the total of N cells ... and then computing
  S x R / N yields a fairly approximate estimate of the actual delta
  size, even for S/N values of .1% or less":  deltas are measured on a
  random subset of cells and scaled up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import Codec, IdentityCodec
from repro.core import numeric
from repro.core.errors import DeltaShapeMismatchError, ReproError
from repro.delta import codes as code_store


@dataclass(frozen=True)
class MaterializationMatrix:
    """Pairwise encoding costs for a series of versions.

    ``versions`` are the caller's version identifiers; ``costs[i, j]``
    (symmetric) is the estimated byte size of delta-encoding version i
    against version j, and ``costs[i, i]`` of materializing version i.
    """

    versions: tuple[int, ...]
    costs: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.versions)
        if self.costs.shape != (n, n):
            raise ReproError(
                f"cost matrix shape {self.costs.shape} does not match "
                f"{n} versions")

    # ------------------------------------------------------------------
    def index_of(self, version: int) -> int:
        try:
            return self.versions.index(version)
        except ValueError:
            raise ReproError(
                f"version {version} not in matrix {self.versions}") from None

    def materialize_size(self, version: int) -> float:
        """MM(i, i): bytes to materialize one version."""
        i = self.index_of(version)
        return float(self.costs[i, i])

    def delta_size(self, version_a: int, version_b: int) -> float:
        """MM(i, j): bytes to delta one version against another."""
        i = self.index_of(version_a)
        j = self.index_of(version_b)
        if i == j:
            raise ReproError("delta_size requires two distinct versions")
        return float(self.costs[i, j])

    def size(self, version: int, parent: int | None) -> float:
        """Encoding cost under a layout: materialize or delta."""
        if parent is None:
            return self.materialize_size(version)
        return self.delta_size(version, parent)

    @property
    def n(self) -> int:
        return len(self.versions)

    def restrict(self, versions: list[int]) -> "MaterializationMatrix":
        """Submatrix over a subset of versions (order-normalized).

        Used by the segment-based workload heuristic of Section IV-D,
        which lays out each segment of overlapping queries separately.
        """
        subset = tuple(sorted(versions))
        index = [self.index_of(v) for v in subset]
        return MaterializationMatrix(
            versions=subset,
            costs=self.costs[np.ix_(index, index)].copy())

    def materialization_always_larger(self) -> bool:
        """Section IV-C's simplifying assumption: MM(i,i) > MM(i,j) for all j.

        When it holds, the optimal layout has exactly one materialized
        version (the plain MST case); otherwise the spanning *forest*
        generalization can win.
        """
        diag = np.diag(self.costs)
        off = self.costs.copy()
        np.fill_diagonal(off, -np.inf)  # exclude self-comparisons
        return bool(np.all(diag[:, None] > off - 1e-12))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, versions: dict[int, np.ndarray], *,
              compressor: Codec | None = None,
              sample_fraction: float | None = None,
              rng: np.random.Generator | None = None
              ) -> "MaterializationMatrix":
        """Construct the matrix from in-memory version contents.

        ``versions`` maps version id to its array.  ``sample_fraction``
        of None computes exact sizes; a value in (0, 1] activates the
        S x R / N sampled estimator.
        """
        if not versions:
            raise ReproError("cannot build a matrix from zero versions")
        ids = tuple(sorted(versions))
        arrays = [np.ascontiguousarray(versions[v]) for v in ids]
        first = arrays[0]
        for array in arrays[1:]:
            if array.shape != first.shape or array.dtype != first.dtype:
                raise DeltaShapeMismatchError(
                    "all versions must share shape and dtype")

        compressor = compressor or IdentityCodec()
        n = len(ids)
        total_cells = first.size

        sample_index: np.ndarray | None = None
        if sample_fraction is not None:
            if not 0 < sample_fraction <= 1:
                raise ReproError(
                    f"sample_fraction must be in (0, 1], "
                    f"got {sample_fraction}")
            rng = rng or np.random.default_rng(0)
            sample_count = max(1, int(round(total_cells * sample_fraction)))
            sample_index = rng.choice(total_cells, size=sample_count,
                                      replace=False)

        flats = [array.ravel() for array in arrays]
        costs = np.zeros((n, n))
        for i in range(n):
            costs[i, i] = len(compressor.encode(arrays[i]))
        for i in range(n):
            for j in range(i + 1, n):
                costs[i, j] = costs[j, i] = _delta_cost(
                    flats[i], flats[j], sample_index, total_cells)
        return cls(versions=ids, costs=costs)

    @classmethod
    def from_manager(cls, manager, name: str, *,
                     attribute: str | None = None,
                     compressor: Codec | None = None,
                     sample_fraction: float | None = None,
                     rng: np.random.Generator | None = None
                     ) -> "MaterializationMatrix":
        """Build the matrix for an array living in a storage manager."""
        record = manager.catalog.get_array(name)
        attr = attribute or record.schema.attributes[0].name
        contents = {
            v: manager.select(name, v).attribute(attr)
            for v in manager.get_versions(name)
        }
        return cls.build(contents, compressor=compressor,
                         sample_fraction=sample_fraction, rng=rng)


def _delta_cost(flat_a: np.ndarray, flat_b: np.ndarray,
                sample_index: np.ndarray | None, total_cells: int) -> float:
    """Hybrid-delta size of a pair, exact or sampled (S x R / N).

    The hybrid encoding is *almost* symmetric — zigzag maps +x to code 2x
    but -x to 2x-1, so the two directions can differ by up to a bit per
    cell.  The matrix keeps the paper's symmetry by always differencing
    the lower-id version against the higher-id one; callers must pass
    ``flat_a`` as the earlier version (see :meth:`build` and
    :func:`repro.materialize.updates.extend_matrix`).
    """
    if sample_index is None:
        delta, mode = numeric.compute_delta(flat_a, flat_b)
        codes = code_store.delta_to_codes(delta, mode)
        return float(code_store.hybrid_size(codes))
    sample_a = flat_a[sample_index]
    sample_b = flat_b[sample_index]
    delta, mode = numeric.compute_delta(sample_a, sample_b)
    codes = code_store.delta_to_codes(delta, mode)
    sampled = float(code_store.hybrid_size(codes))
    return sampled * (total_cells / len(sample_index))
