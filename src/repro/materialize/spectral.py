"""Harmonic-analysis estimation of delta sizes (Section IV-A's sketch).

"We are also exploring the use of transformations (e.g., harmonic
analyses) of large versions in order to work on smaller
representations."  This module implements that idea: each version is
reduced to the low-frequency corner of its orthonormal DCT-II — a
``k x k`` *spectral signature* — and pairwise delta sizes are estimated
from signature distances instead of full cell-wise comparisons.

Why it works: the evaluation data (weather fields, map tiles, webcam
frames) is spatially smooth, so most of the energy of a version — and
of the *difference* between two versions — lives in the low
frequencies.  By Parseval's theorem the signature distance approximates
the RMS cell-wise difference, which in turn predicts the bit width the
hybrid delta needs.  Building the materialization matrix then costs
O(n^2 k^2) on k^2-cell sketches instead of O(n^2 N) on N-cell arrays.

The estimate is a *ranking* device: tests assert it orders candidate
delta partners like the exact matrix does (which is all the spanning
tree needs), not that absolute sizes match.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn

from repro.core.errors import ReproError
from repro.materialize.matrix import MaterializationMatrix

DEFAULT_SIGNATURE_SIZE = 16


def spectral_signature(array: np.ndarray,
                       k: int = DEFAULT_SIGNATURE_SIZE) -> np.ndarray:
    """The k x k low-frequency DCT corner of a (2-D folded) array."""
    if k < 1:
        raise ReproError("signature size must be >= 1")
    values = np.ascontiguousarray(array, dtype=np.float64)
    if values.ndim == 1:
        values = values.reshape(1, -1)
    elif values.ndim > 2:
        values = values.reshape(values.shape[0], -1)
    spectrum = dctn(values, norm="ortho")
    rows = min(k, spectrum.shape[0])
    cols = min(k, spectrum.shape[1])
    signature = np.zeros((k, k))
    signature[:rows, :cols] = spectrum[:rows, :cols]
    return signature


def estimate_delta_bits(signature_a: np.ndarray,
                        signature_b: np.ndarray) -> float:
    """Predicted bits per cell of the delta between two versions.

    The orthonormal DCT preserves L2 norms, so the signature distance
    is (a low-frequency lower bound on) the RMS cell difference; the
    zigzag code of a typical cell then needs ~log2(2 * rms + 1) bits.
    """
    if signature_a.shape != signature_b.shape:
        raise ReproError("signatures must have identical shapes")
    energy = float(np.sum((signature_a - signature_b) ** 2))
    cells = signature_a.size
    rms = np.sqrt(energy / cells)
    return float(np.log2(2.0 * rms + 1.0))


class SpectralEstimator:
    """Builds approximate materialization matrices from signatures."""

    def __init__(self, k: int = DEFAULT_SIGNATURE_SIZE):
        self.k = k

    def build(self, versions: dict[int, np.ndarray]
              ) -> MaterializationMatrix:
        """An approximate matrix: sketch-based deltas, exact diagonal."""
        if not versions:
            raise ReproError("cannot build a matrix from zero versions")
        ids = tuple(sorted(versions))
        arrays = [np.ascontiguousarray(versions[v]) for v in ids]
        total_cells = arrays[0].size
        signatures = [spectral_signature(a, self.k) for a in arrays]

        n = len(ids)
        costs = np.zeros((n, n))
        for i in range(n):
            costs[i, i] = arrays[i].nbytes
        for i in range(n):
            for j in range(i + 1, n):
                bits = estimate_delta_bits(signatures[i], signatures[j])
                estimate = total_cells * bits / 8.0
                costs[i, j] = costs[j, i] = max(1.0, estimate)
        return MaterializationMatrix(versions=ids, costs=costs)

    def signature_bytes(self, array: np.ndarray) -> int:
        """Sketch footprint: what the estimator keeps per version."""
        del array
        return self.k * self.k * 8
