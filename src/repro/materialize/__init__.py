"""Version materialization algorithms (Section IV).

Decides which versions of an array to store in full and which to delta
against which others, minimizing total storage (spanning tree / forest
algorithms) or workload I/O cost (workload-aware layouts), with
incremental policies for newly arriving versions.
"""

from repro.materialize.layout import Layout
from repro.materialize.matrix import MaterializationMatrix
from repro.materialize.spanning import (
    UnionFind,
    algorithm1_mst,
    algorithm2_forest,
    kruskal_mst,
    optimal_layout,
    prim_mst,
)
from repro.materialize.updates import (
    BatchUpdatePlanner,
    extend_matrix,
    incremental_insert,
)
from repro.materialize.spectral import SpectralEstimator
from repro.materialize.workload_opt import (
    RangeQuery,
    RegionQuery,
    SnapshotQuery,
    WeightedQuery,
    Workload,
    exhaustive_optimal,
    greedy_workload_layout,
    head_biased_layout,
    segmented_layout,
    workload_aware_layout,
    workload_cost,
)

__all__ = [
    "BatchUpdatePlanner",
    "Layout",
    "MaterializationMatrix",
    "RangeQuery",
    "RegionQuery",
    "SnapshotQuery",
    "SpectralEstimator",
    "UnionFind",
    "WeightedQuery",
    "Workload",
    "algorithm1_mst",
    "algorithm2_forest",
    "exhaustive_optimal",
    "extend_matrix",
    "greedy_workload_layout",
    "head_biased_layout",
    "incremental_insert",
    "kruskal_mst",
    "optimal_layout",
    "prim_mst",
    "segmented_layout",
    "workload_aware_layout",
    "workload_cost",
]
