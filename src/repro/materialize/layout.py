"""Version layouts: the graph model of Section IV-B.

A *layout* records, for every version, either that it is materialized or
which other version it is delta-encoded against.  In the paper's graph
representation each version is a node with exactly one incoming arc — a
self-loop for materialization, or an arc from its delta base — so a
layout of n versions always contains n edges (Observation 1).

Validity (the ability to reconstruct every version) is characterized by
Observations 2–4:

* Obs. 2 — any undirected cycle of length > 1 makes the layout invalid;
* Obs. 3 — a layout whose every connected component has exactly one
  materialized version is valid;
* Obs. 4 — a layout without undirected cycles is always valid; ignoring
  materialization self-loops, a valid layout graph is a *polytree*
  (here, since every node stores its base, a forest of rooted trees).

:class:`Layout` is a thin immutable mapping ``version -> parent`` (None
meaning materialized) with the validity predicate, cost evaluation
against a :class:`~repro.materialize.matrix.MaterializationMatrix`, and
the closure computation used by the workload-aware cost model of
Section IV-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.errors import InvalidLayoutError
from repro.materialize.matrix import MaterializationMatrix


@dataclass(frozen=True)
class Layout:
    """An encoding strategy for a collection of versions."""

    parent_of: Mapping[int, int | None]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parent_of", dict(self.parent_of))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def versions(self) -> tuple[int, ...]:
        return tuple(sorted(self.parent_of))

    @property
    def materialized(self) -> tuple[int, ...]:
        """The roots: versions stored in full."""
        return tuple(sorted(v for v, p in self.parent_of.items()
                            if p is None))

    @property
    def edge_count(self) -> int:
        """Observation 1: always n (self-loops included)."""
        return len(self.parent_of)

    def is_valid(self) -> bool:
        """Whether every version can be reconstructed.

        Checks the Observation 3/4 characterization: delta edges must
        form a forest (no undirected cycle), every parent must be a
        version of the layout, and — because each node has exactly one
        incoming arc by construction — each tree then contains exactly
        one materialized root.
        """
        parent = {v: v for v in self.parent_of}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for version, base in self.parent_of.items():
            if base is None:
                continue
            if base not in self.parent_of or base == version:
                return False
            root_a, root_b = find(version), find(base)
            if root_a == root_b:
                return False  # undirected cycle (Observation 2)
            parent[root_a] = root_b
        # A forest with one incoming arc per node: each component must
        # contain exactly one materialized version.
        roots_per_component: dict[int, int] = {}
        for version, base in self.parent_of.items():
            component = find(version)
            if base is None:
                roots_per_component[component] = \
                    roots_per_component.get(component, 0) + 1
        components = {find(v) for v in self.parent_of}
        return all(roots_per_component.get(c, 0) == 1 for c in components)

    def require_valid(self) -> "Layout":
        if not self.is_valid():
            raise InvalidLayoutError(
                f"layout cannot reconstruct all versions: {self.parent_of}")
        return self

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def total_size(self, matrix: MaterializationMatrix) -> float:
        """Total storage bytes of the layout under the matrix."""
        return sum(matrix.size(v, p) for v, p in self.parent_of.items())

    def stored_size_of(self, version: int,
                       matrix: MaterializationMatrix) -> float:
        """Bytes this layout uses for one version."""
        return matrix.size(version, self.parent_of[version])

    def path_to_root(self, version: int) -> list[int]:
        """Versions on the reconstruction path, starting at ``version``."""
        if version not in self.parent_of:
            raise InvalidLayoutError(
                f"version {version} not in layout {sorted(self.parent_of)}")
        path = [version]
        seen = {version}
        cursor = self.parent_of[version]
        while cursor is not None:
            if cursor in seen:
                raise InvalidLayoutError(
                    f"cycle while resolving version {version}")
            path.append(cursor)
            seen.add(cursor)
            cursor = self.parent_of[cursor]
        return path

    def closure(self, requested: Iterable[int]) -> set[int]:
        """All versions that must be retrieved to answer a query.

        Section IV-D: "the union of all versions directly accessed by the
        query, plus all further versions that have to be retrieved in
        order to reconstruct the accessed versions."
        """
        needed: set[int] = set()
        for version in requested:
            needed.update(self.path_to_root(version))
        return needed

    def io_cost(self, requested: Iterable[int],
                matrix: MaterializationMatrix) -> float:
        """Cost_Lambda(q) ~ sum of stored sizes over the closure."""
        return sum(self.stored_size_of(v, matrix)
                   for v in self.closure(requested))

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_parent(self, version: int, parent: int | None) -> "Layout":
        """A copy with one version's encoding changed."""
        updated = dict(self.parent_of)
        updated[version] = parent
        return Layout(updated)

    @classmethod
    def linear_chain(cls, versions: Iterable[int],
                     newest_materialized: bool = False) -> "Layout":
        """The baseline of Section V-D: a simple linear chain of deltas.

        With ``newest_materialized`` False the *first* version is stored
        in full and each later version is delta'ed against its
        predecessor (the natural insert order); True flips the chain to
        be "differenced backwards in time from the most recently added
        version".
        """
        ordered = sorted(versions)
        if not ordered:
            raise InvalidLayoutError("cannot lay out zero versions")
        parent_of: dict[int, int | None] = {}
        if newest_materialized:
            parent_of[ordered[-1]] = None
            for previous, current in zip(ordered, ordered[1:]):
                parent_of[previous] = current
        else:
            parent_of[ordered[0]] = None
            for previous, current in zip(ordered, ordered[1:]):
                parent_of[current] = previous
        return cls(parent_of)

    @classmethod
    def all_materialized(cls, versions: Iterable[int]) -> "Layout":
        """Every version stored in full (the uncompressed baseline)."""
        return cls({v: None for v in versions})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Layout({dict(sorted(self.parent_of.items()))})"
