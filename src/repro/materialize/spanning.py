"""Space-optimal layouts via spanning trees and forests (Section IV-C).

Three algorithms are provided:

* :func:`algorithm1_mst` — the paper's Algorithm 1: build the undirected
  materialization graph over the delta costs, take its minimum spanning
  tree, root it at the cheapest materialization, and orient the deltas
  away from the root.  Optimal under the assumption that materializing
  always costs more than any delta.

* :func:`algorithm2_forest` — the paper's Algorithm 2 (Appendix B):
  start from Algorithm 1's tree, then repeatedly consider versions whose
  materialization is cheaper than some delta on their path to the root;
  if the most expensive such delta exceeds the materialization cost,
  split the tree there and materialize the version — producing a minimum
  spanning *forest* with multiple roots.  This greedy split is the
  paper's heuristic.

* :func:`optimal_layout` — an exact formulation the paper's analysis
  implies: add a *virtual root* node connected to every version i with
  edge weight MM(i, i).  Spanning trees of the augmented graph are in
  one-to-one correspondence with valid layouts (versions adjacent to the
  virtual root are materialized), so the MST of the augmented graph is
  the provably space-optimal layout, with no single-materialization
  assumption needed.  Tests verify Algorithm 1 matches it whenever the
  assumption holds and Algorithm 2 closes most of the gap otherwise.

A from-scratch union-find Kruskal and a Prim implementation are both
included; Kruskal is the default, Prim exists for cross-validation.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.errors import ReproError
from repro.materialize.layout import Layout
from repro.materialize.matrix import MaterializationMatrix


class UnionFind:
    """Disjoint sets with path compression and union by size."""

    def __init__(self, items):
        self._parent = {item: item for item in items}
        self._size = {item: 1 for item in items}

    def find(self, item):
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a, b) -> bool:
        """Merge the sets of a and b; False when already joined."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True


def kruskal_mst(nodes: list[int],
                edges: list[tuple[float, int, int]]
                ) -> list[tuple[float, int, int]]:
    """Minimum spanning tree/forest edges via Kruskal's algorithm."""
    forest = UnionFind(nodes)
    chosen = []
    for weight, a, b in sorted(edges):
        if forest.union(a, b):
            chosen.append((weight, a, b))
    return chosen


def prim_mst(nodes: list[int],
             weight_of: dict[tuple[int, int], float]
             ) -> list[tuple[float, int, int]]:
    """Minimum spanning tree edges via Prim's algorithm (dense graphs)."""
    if not nodes:
        return []
    start = nodes[0]
    visited = {start}
    frontier = [(w, start, b) for (a, b), w in weight_of.items()
                if a == start]
    heapq.heapify(frontier)
    chosen = []
    while frontier and len(visited) < len(nodes):
        weight, a, b = heapq.heappop(frontier)
        if b in visited:
            continue
        visited.add(b)
        chosen.append((weight, a, b))
        for (x, y), w in weight_of.items():
            if x == b and y not in visited:
                heapq.heappush(frontier, (w, b, y))
    if len(visited) != len(nodes):
        raise ReproError("graph is not connected")
    return chosen


# ----------------------------------------------------------------------
# Layout algorithms
# ----------------------------------------------------------------------
def _orient_tree(versions: tuple[int, ...],
                 tree_edges: list[tuple[int, int]],
                 roots: list[int]) -> Layout:
    """Turn undirected tree edges + chosen roots into a Layout."""
    adjacency: dict[int, list[int]] = {v: [] for v in versions}
    for a, b in tree_edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    parent_of: dict[int, int | None] = {}
    stack = list(roots)
    for root in roots:
        parent_of[root] = None
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour not in parent_of:
                parent_of[neighbour] = node
                stack.append(neighbour)
    if len(parent_of) != len(versions):
        raise ReproError("tree does not span every version")
    return Layout(parent_of)


def algorithm1_mst(matrix: MaterializationMatrix,
                   use_prim: bool = False) -> Layout:
    """The paper's Algorithm 1: MST of deltas, cheapest version as root."""
    versions = matrix.versions
    if len(versions) == 1:
        return Layout({versions[0]: None})

    if use_prim:
        weight_of = {}
        for i, a in enumerate(versions):
            for j, b in enumerate(versions):
                if i != j:
                    weight_of[(a, b)] = float(matrix.costs[i, j])
        mst = prim_mst(list(versions), weight_of)
    else:
        edges = [(float(matrix.costs[i, j]), versions[i], versions[j])
                 for i in range(len(versions))
                 for j in range(i + 1, len(versions))]
        mst = kruskal_mst(list(versions), edges)

    root = min(versions, key=matrix.materialize_size)
    return _orient_tree(versions, [(a, b) for _, a, b in mst],
                        [root]).require_valid()


def algorithm2_forest(matrix: MaterializationMatrix) -> Layout:
    """The paper's Algorithm 2: split the MST where materializing wins.

    "If there exists a delta on the path from that version to the root of
    the tree that is more expensive than the materialization, then it is
    advantageous to split the graph by materializing that version
    instead."  Applied greedily, best gain first, until no positive gain
    remains.
    """
    layout = algorithm1_mst(matrix)
    while True:
        best_gain = 0.0
        best_version = None
        for version in layout.versions:
            if layout.parent_of[version] is None:
                continue
            # Most expensive delta on the path from `version` to its root.
            path = layout.path_to_root(version)
            edge_costs = [matrix.delta_size(child, parent)
                          for child, parent in zip(path, path[1:])]
            most_expensive = max(edge_costs)
            gain = most_expensive - matrix.materialize_size(version)
            if gain > best_gain + 1e-9:
                best_gain = gain
                best_version = version
        if best_version is None:
            return layout.require_valid()
        layout = _split_at(layout, best_version, matrix)


def _split_at(layout: Layout, version: int,
              matrix: MaterializationMatrix) -> Layout:
    """Cut the most expensive path edge above ``version``; re-root at it."""
    path = layout.path_to_root(version)
    edge_costs = [matrix.delta_size(child, parent)
                  for child, parent in zip(path, path[1:])]
    cut_index = int(np.argmax(edge_costs))
    # Cutting the edge (path[k], path[k+1]) detaches the subtree holding
    # `version`; re-root that subtree at `version` by reversing the
    # parent pointers strictly below the cut.  (Deltas are bidirectional,
    # so reversing an edge keeps its cost — the matrix is symmetric.)
    parent_of = dict(layout.parent_of)
    for child, parent in list(zip(path, path[1:]))[:cut_index]:
        parent_of[parent] = child
    parent_of[version] = None
    return Layout(parent_of)


def optimal_layout(matrix: MaterializationMatrix) -> Layout:
    """Exact space-optimal layout via the virtual-root MST reduction.

    Add node -1 ("the disk") with an edge of weight MM(i, i) to every
    version i.  Any valid layout corresponds to a spanning tree of the
    augmented complete graph and vice versa, with identical total cost,
    so the MST is the global optimum over all spanning forests and
    materialization choices.
    """
    versions = matrix.versions
    virtual = object()  # sentinel that cannot collide with a version id
    nodes: list = [virtual, *versions]
    edges: list[tuple[float, object, object]] = []
    for i, version in enumerate(versions):
        edges.append((float(matrix.costs[i, i]), virtual, version))
    for i in range(len(versions)):
        for j in range(i + 1, len(versions)):
            edges.append((float(matrix.costs[i, j]),
                          versions[i], versions[j]))

    forest = UnionFind(nodes)
    chosen: list[tuple[object, object]] = []
    for weight, a, b in sorted(edges, key=lambda e: e[0]):
        if forest.union(a, b):
            chosen.append((a, b))

    # Orient away from the virtual root.
    adjacency: dict[object, list[object]] = {node: [] for node in nodes}
    for a, b in chosen:
        adjacency[a].append(b)
        adjacency[b].append(a)
    parent_of: dict[int, int | None] = {}
    stack: list[tuple[object, object | None]] = [(virtual, None)]
    seen = {virtual}
    while stack:
        node, parent = stack.pop()
        if node is not virtual:
            parent_of[node] = None if parent is virtual else parent
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append((neighbour, node))
    if len(parent_of) != len(versions):
        raise ReproError("virtual-root MST did not span all versions")
    return Layout(parent_of).require_valid()
