"""Workload-aware layouts (Section IV-D).

Given a workload Q of weighted snapshot and range queries, the I/O
optimal layout minimizes

    Lambda_Q = argmin_Lambda sum_j w_j * Cost_Lambda(q_j)

where Cost_Lambda(q) is the total stored size of every version in the
query's reconstruction closure.  Exhaustive search is exponential (the
number of candidate spanning trees follows Cayley's formula), so the
module provides:

* :func:`exhaustive_optimal` — exact search by enumerating spanning
  trees of the virtual-root graph through Prüfer sequences; tractable
  for small n and used as ground truth in tests;
* :func:`greedy_workload_layout` — local search over single-version
  re-encoding moves, the practical default;
* :func:`segmented_layout` — the paper's divide-and-conquer heuristic
  for overlapping range queries: lay out each segment delineated by the
  query boundaries most compactly, giving each its own materialization;
* :func:`head_biased_layout` — the Section IV-E special case: "the
  newest version is always materialized since it is heavily queried",
  everything else stored most compactly;
* :func:`workload_aware_layout` — the front door: builds the candidate
  set, refines the best with greedy local search, returns the winner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ReproError, WorkloadError
from repro.materialize.layout import Layout
from repro.materialize.matrix import MaterializationMatrix
from repro.materialize.spanning import optimal_layout


# ----------------------------------------------------------------------
# Workload model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SnapshotQuery:
    """Read one version (optionally a sub-region; cost model treats the
    chunk set as proportional, per Section IV-D's byte proxy)."""

    version: int

    def versions(self) -> tuple[int, ...]:
        return (self.version,)


@dataclass(frozen=True)
class RangeQuery:
    """Read every version in an inclusive range (the stacked select)."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.last < self.first:
            raise WorkloadError(
                f"range [{self.first}, {self.last}] is reversed")

    def versions(self) -> tuple[int, ...]:
        return tuple(range(self.first, self.last + 1))


@dataclass(frozen=True)
class RegionQuery:
    """Read a sub-region of one version (IV-D's "small portions of
    arbitrary versions").

    ``fraction`` is the share of the version's chunks the region
    overlaps; the byte-proxy cost model scales the closure cost by it
    (every version on the reconstruction path is read at the same chunk
    subset, since all versions share one chunk grid).
    """

    version: int
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise WorkloadError(
                f"region fraction must be in (0, 1], got {self.fraction}")

    def versions(self) -> tuple[int, ...]:
        return (self.version,)


@dataclass(frozen=True)
class WeightedQuery:
    """A query with its access frequency."""

    query: SnapshotQuery | RangeQuery | RegionQuery
    weight: float = 1.0


Workload = list[WeightedQuery]


def validate_workload(workload: Workload,
                      matrix: MaterializationMatrix) -> None:
    """Every queried version must exist in the matrix."""
    known = set(matrix.versions)
    for item in workload:
        missing = set(item.query.versions()) - known
        if missing:
            raise WorkloadError(
                f"workload references unknown versions {sorted(missing)}")


def workload_cost(layout: Layout, workload: Workload,
                  matrix: MaterializationMatrix) -> float:
    """sum_j w_j * Cost_Lambda(q_j) over the workload.

    Region queries scale their closure cost by the chunk fraction they
    touch (Section IV-D counts chunks accessed as the I/O proxy).
    """
    total = 0.0
    for item in workload:
        cost = layout.io_cost(item.query.versions(), matrix)
        fraction = getattr(item.query, "fraction", 1.0)
        total += item.weight * cost * fraction
    return total


# ----------------------------------------------------------------------
# Exact search (small n)
# ----------------------------------------------------------------------
def _prufer_to_edges(sequence: tuple[int, ...],
                     node_count: int) -> list[tuple[int, int]]:
    """Decode a Prüfer sequence into the edges of its labelled tree."""
    import heapq

    degree = [1] * node_count
    for node in sequence:
        degree[node] += 1
    leaves = [node for node in range(node_count) if degree[node] == 1]
    heapq.heapify(leaves)
    edges = []
    for node in sequence:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, node))
        degree[leaf] -= 1
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    last = [node for node in range(node_count) if degree[node] == 1]
    edges.append((last[0], last[1]))
    return edges


def _layout_from_tree(edges: list[tuple[int, int]],
                      matrix: MaterializationMatrix) -> Layout:
    """Orient a virtual-root tree (node 0 = virtual) into a Layout."""
    versions = matrix.versions
    adjacency: dict[int, list[int]] = {i: [] for i in
                                       range(len(versions) + 1)}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    parent_of: dict[int, int | None] = {}
    stack = [(0, None)]
    seen = {0}
    while stack:
        node, parent = stack.pop()
        if node != 0:
            version = versions[node - 1]
            parent_of[version] = None if parent == 0 else \
                versions[parent - 1]
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append((neighbour, node))
    return Layout(parent_of)


def exhaustive_optimal(matrix: MaterializationMatrix,
                       workload: Workload,
                       max_versions: int = 7) -> Layout:
    """Exact I/O-optimal layout by full spanning-tree enumeration.

    Enumerates all (n+1)^(n-1) spanning trees of the virtual-root graph
    via Prüfer sequences (Cayley's formula — the count the paper cites
    as the reason exhaustive search does not scale).
    """
    validate_workload(workload, matrix)
    n = matrix.n
    if n > max_versions:
        raise ReproError(
            f"exhaustive search limited to {max_versions} versions; "
            f"matrix has {n} (Cayley growth: (n+1)^(n-1) trees)")
    if n == 1:
        return Layout({matrix.versions[0]: None})

    node_count = n + 1
    best_layout: Layout | None = None
    best_cost = np.inf
    best_size = np.inf
    for sequence in itertools.product(range(node_count),
                                      repeat=node_count - 2):
        edges = _prufer_to_edges(tuple(sequence), node_count)
        if not any(0 in edge for edge in edges):
            continue  # no materialized version at all
        layout = _layout_from_tree(edges, matrix)
        if not layout.is_valid():
            continue
        cost = workload_cost(layout, workload, matrix)
        # Tie-break on storage so results are deterministic.
        key = (cost, layout.total_size(matrix))
        if best_layout is None or key < (best_cost, best_size):
            best_layout = layout
            best_cost, best_size = key
    assert best_layout is not None
    return best_layout


# ----------------------------------------------------------------------
# Greedy local search
# ----------------------------------------------------------------------
def greedy_workload_layout(matrix: MaterializationMatrix,
                           workload: Workload,
                           start: Layout | None = None,
                           max_rounds: int = 100) -> Layout:
    """Hill-climb over single-version re-encoding moves.

    Each move re-encodes one version — materializing it or delta-ing it
    against a different version — keeping the layout valid.  Moves are
    applied best-first until a local optimum.
    """
    validate_workload(workload, matrix)
    layout = start or optimal_layout(matrix)
    current_cost = workload_cost(layout, workload, matrix)
    versions = layout.versions

    for _ in range(max_rounds):
        best_move: Layout | None = None
        best_cost = current_cost
        for version in versions:
            for parent in (None, *versions):
                if parent == version or \
                        parent == layout.parent_of[version]:
                    continue
                candidate = layout.with_parent(version, parent)
                if not candidate.is_valid():
                    continue
                cost = workload_cost(candidate, workload, matrix)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_move = candidate
        if best_move is None:
            return layout
        layout = best_move
        current_cost = best_cost
    return layout


# ----------------------------------------------------------------------
# The paper's structural heuristics
# ----------------------------------------------------------------------
def head_biased_layout(matrix: MaterializationMatrix) -> Layout:
    """Materialize the newest version; store the rest most compactly.

    Section IV-E: for workloads "heavily biased towards the latest
    version ... the newest version is always materialized since it is
    heavily queried.  All the other versions are then stored in the most
    compact way possible."
    """
    newest = matrix.versions[-1]
    index = matrix.index_of(newest)
    forced = matrix.costs.copy()
    forced[index, index] = 0.0  # force the virtual edge to the newest
    constrained = MaterializationMatrix(versions=matrix.versions,
                                        costs=forced)
    layout = optimal_layout(constrained)
    assert layout.parent_of[newest] is None
    return layout


def segmented_layout(matrix: MaterializationMatrix,
                     workload: Workload) -> Layout:
    """Divide-and-conquer over the segments range queries delineate.

    Section IV-D: "This divide and conquer algorithm can be generalized
    for N overlapping queries delineating M segments, by considering the
    most compact representation of each segment initially, and by
    combining adjacent segments iteratively."  Each segment is laid out
    space-optimally in isolation (one materialization per segment), so
    no query's closure crosses a segment whose versions it never asked
    for; a final merge pass joins adjacent segments when that lowers the
    workload cost.
    """
    validate_workload(workload, matrix)
    boundaries = _segments(matrix.versions, workload)

    parent_of: dict[int, int | None] = {}
    for segment in boundaries:
        sub = matrix.restrict(list(segment))
        sub_layout = optimal_layout(sub)
        parent_of.update(sub_layout.parent_of)
    layout = Layout(parent_of).require_valid()

    # Merge pass: try delta-ing each segment root against the adjacent
    # version of the previous segment; keep changes that lower cost.
    cost = workload_cost(layout, workload, matrix)
    for segment, previous in zip(boundaries[1:], boundaries):
        root = next(v for v in segment if layout.parent_of[v] is None)
        candidate = layout.with_parent(root, previous[-1])
        if not candidate.is_valid():
            continue
        candidate_cost = workload_cost(candidate, workload, matrix)
        if candidate_cost < cost - 1e-9:
            layout, cost = candidate, candidate_cost
    return layout


def _segments(versions: tuple[int, ...],
              workload: Workload) -> list[tuple[int, ...]]:
    """Partition versions into maximal runs with identical query sets."""
    membership: dict[int, frozenset[int]] = {}
    for version in versions:
        touching = frozenset(
            index for index, item in enumerate(workload)
            if version in item.query.versions())
        membership[version] = touching
    segments: list[tuple[int, ...]] = []
    current: list[int] = []
    previous_set: frozenset[int] | None = None
    for version in versions:
        if previous_set is not None and membership[version] != previous_set:
            segments.append(tuple(current))
            current = []
        current.append(version)
        previous_set = membership[version]
    if current:
        segments.append(tuple(current))
    return segments


def workload_aware_layout(matrix: MaterializationMatrix,
                          workload: Workload,
                          exhaustive_limit: int = 6) -> Layout:
    """The front door: exact when tiny, candidates + greedy otherwise."""
    validate_workload(workload, matrix)
    if matrix.n <= exhaustive_limit:
        return exhaustive_optimal(matrix, workload,
                                  max_versions=exhaustive_limit)

    candidates = [
        optimal_layout(matrix),
        head_biased_layout(matrix),
        segmented_layout(matrix, workload),
        Layout.linear_chain(matrix.versions, newest_materialized=True),
    ]
    best = min(candidates,
               key=lambda lay: workload_cost(lay, workload, matrix))
    return greedy_workload_layout(matrix, workload, start=best)
