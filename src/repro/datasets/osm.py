"""Synthetic OpenStreetMap tile renderings (Section V's third data set).

The paper's OSM data: "a collection of 16 large (1 GB) dense arrays from
Open Street Maps — a free and editable collection of maps ... one per
week for the last 16 weeks of 2009.  The OSM data generally differs less
between consecutive versions (and is thus more amenable to delta
compression) than the NOAA data, because the street map evolves less
quickly than weather does."

The generator draws a road network — random polylines rasterized onto a
light canvas, wider trunk roads plus narrow residential streets — and
evolves it very slowly: each weekly version adds or redraws only a few
road segments.  That extreme inter-version similarity of a large dense
raster is the property Tables III, IV and VI measure; the tiles are
scaled from 1 GB to megabytes (scale factor recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

BACKGROUND = 235  # light map background
ROAD_SHADES = (40, 70, 110)  # trunk, primary, residential


def _draw_line(canvas: np.ndarray, start: tuple[int, int],
               end: tuple[int, int], shade: int, width: int) -> None:
    """Rasterize one road segment by dense point sampling."""
    rows, cols = canvas.shape
    length = int(np.hypot(end[0] - start[0], end[1] - start[1])) + 1
    steps = np.linspace(0, 1, max(2, length * 2))
    ys = np.clip(np.round(start[0] + steps * (end[0] - start[0])), 0,
                 rows - 1).astype(np.int64)
    xs = np.clip(np.round(start[1] + steps * (end[1] - start[1])), 0,
                 cols - 1).astype(np.int64)
    half = width // 2
    for dy in range(-half, half + 1):
        for dx in range(-half, half + 1):
            canvas[np.clip(ys + dy, 0, rows - 1),
                   np.clip(xs + dx, 0, cols - 1)] = shade


class OSMGenerator:
    """Slowly-evolving rendered road map."""

    def __init__(self, shape: tuple[int, int] = (512, 512), *,
                 initial_roads: int = 60,
                 edits_per_week: int = 3,
                 seed: int = 2009):
        self.shape = shape
        self.edits_per_week = edits_per_week
        self.rng = np.random.default_rng(seed)
        self._roads: list[tuple[tuple[int, int], tuple[int, int],
                                int, int]] = []
        for _ in range(initial_roads):
            self._roads.append(self._random_road())

    def _random_road(self):
        rows, cols = self.shape
        start = (int(self.rng.integers(0, rows)),
                 int(self.rng.integers(0, cols)))
        end = (int(self.rng.integers(0, rows)),
               int(self.rng.integers(0, cols)))
        tier = int(self.rng.integers(0, len(ROAD_SHADES)))
        width = (3, 2, 1)[tier]
        return start, end, ROAD_SHADES[tier], width

    def _render(self) -> np.ndarray:
        canvas = np.full(self.shape, BACKGROUND, dtype=np.uint8)
        for start, end, shade, width in self._roads:
            _draw_line(canvas, start, end, shade, width)
        return canvas

    def weekly_tiles(self, count: int):
        """Yield ``count`` weekly renderings; few roads change per week."""
        for week in range(count):
            if week:
                for _ in range(self.edits_per_week):
                    action = self.rng.random()
                    if action < 0.6 or not self._roads:
                        self._roads.append(self._random_road())
                    elif action < 0.85:
                        index = int(self.rng.integers(0, len(self._roads)))
                        self._roads[index] = self._random_road()
                    else:
                        index = int(self.rng.integers(0, len(self._roads)))
                        self._roads.pop(index)
            yield self._render()


def osm_series(count: int = 16, shape: tuple[int, int] = (512, 512), *,
               seed: int = 2009) -> list[np.ndarray]:
    """The paper's 16 consecutive weekly tiles, scaled."""
    return list(OSMGenerator(shape, seed=seed).weekly_tiles(count))
