"""Synthetic NOAA RTMA-style weather rasters (Section V's first data set).

The paper's NOAA data: "a dense collection of 1,365 approximately 1 MB
weather satellite images captured in 15 minute intervals ... sensor data
measuring a variety of conditions that govern the weather, such as wind
speed, surface pressure, or humidity ... Each type of measurement was
stored as floating-point numbers, in its own versioned matrix."  Figure 4
notes the defining texture: "the images are very similar, but not quite
identical; for example, many of the sharp edges in the images have
scattered single-pixel variations."

This generator reproduces exactly those statistics:

* a smooth spatially-correlated base field (superposed low-frequency
  harmonics — fronts and pressure systems);
* slow temporal drift via advection (the field translates a fraction of
  a pixel per 15-minute step) and diffusion (features blur and reform);
* scattered single-pixel sensor noise re-drawn every frame.

Delta compressibility therefore behaves like the real data: consecutive
frames differ slightly everywhere (dense small deltas) with sparse large
outliers — the regime where the paper's hybrid delta wins Table I.
"""

from __future__ import annotations

import numpy as np

#: The measurements the paper names (each its own versioned matrix).
DEFAULT_MEASUREMENTS = ("humidity", "pressure", "wind_speed")


class NOAAGenerator:
    """Evolving weather-field generator."""

    def __init__(self, shape: tuple[int, int] = (128, 128), *,
                 seed: int = 2010_08_30,
                 drift_cells_per_step: float = 0.15,
                 noise_pixels_per_frame: float = 0.002,
                 quantum: float = 0.5,
                 dtype=np.float32):
        self.shape = shape
        self.rng = np.random.default_rng(seed)
        self.drift = drift_cells_per_step
        self.noise_fraction = noise_pixels_per_frame
        # Real RTMA values are quantized sensor measurements, not
        # continuous reals; quantization is what makes float rasters
        # delta-compressible (unchanged cells repeat bit patterns).
        self.quantum = quantum
        self.dtype = np.dtype(dtype)

    # ------------------------------------------------------------------
    def _base_field(self, scale: float) -> np.ndarray:
        """A smooth random field from a handful of low harmonics."""
        rows, cols = self.shape
        y = np.linspace(0, 2 * np.pi, rows, endpoint=False)
        x = np.linspace(0, 2 * np.pi, cols, endpoint=False)
        field = np.zeros(self.shape)
        for _ in range(6):
            fy, fx = self.rng.integers(1, 4, size=2)
            phase_y, phase_x = self.rng.uniform(0, 2 * np.pi, size=2)
            amplitude = self.rng.uniform(0.3, 1.0)
            field += amplitude * np.outer(np.sin(fy * y + phase_y),
                                          np.cos(fx * x + phase_x))
        return field * scale

    def frames(self, count: int, *, offset_scale: float = 100.0):
        """Yield ``count`` consecutive frames of one measurement."""
        field = self._base_field(offset_scale)
        phase = 0.0
        for _ in range(count):
            phase += self.drift
            shift = int(phase)
            # Advection: integer-pixel translation once enough phase has
            # accumulated (sub-pixel drift shows up as slow change).
            frame = np.roll(field, shift, axis=1)
            # Diffusion: features soften and regenerate slightly.  The
            # amplitude sits below the sensor quantum so only cells near
            # a quantization boundary flip between frames.
            frame = frame + self._base_field(offset_scale * 0.002)
            # Quantize to the sensor's measurement grid, then add the
            # scattered single-pixel noise (Figure 4's texture).
            quantized = np.round(frame / self.quantum) * self.quantum
            noisy = quantized.astype(self.dtype)
            total = noisy.size
            outliers = max(1, int(total * self.noise_fraction))
            index = self.rng.choice(total, size=outliers, replace=False)
            flat = noisy.ravel()
            flat[index] += self.rng.normal(
                0, offset_scale, size=outliers).astype(self.dtype)
            yield noisy
            field = field * 0.998 + self._base_field(offset_scale) * 0.002


def noaa_series(count: int, shape: tuple[int, int] = (128, 128), *,
                measurements: tuple[str, ...] = DEFAULT_MEASUREMENTS,
                seed: int = 2010_08_30,
                dtype=np.float32) -> dict[str, list[np.ndarray]]:
    """Generate ``count`` versions of each measurement matrix.

    Mirrors the paper's Table I corpus construction: "the first 10
    versions of the NOAA data set ... contains multiple arrays at each
    version" — one matrix series per measurement.
    """
    series: dict[str, list[np.ndarray]] = {}
    for index, name in enumerate(measurements):
        generator = NOAAGenerator(shape, seed=seed + index * 1000,
                                  dtype=dtype)
        scale = 100.0 * (index + 1)
        series[name] = list(generator.frames(count, offset_scale=scale))
    return series
