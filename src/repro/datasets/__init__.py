"""Synthetic equivalents of the paper's four evaluation data sets.

Each generator reproduces the statistical property that drives the
corresponding experiments (see DESIGN.md's substitution table): NOAA's
smooth drift + single-pixel noise, ConceptNet's sparse churn, OSM's
near-identical weekly map tiles, Switch Panorama's periodic scenes, and
the Section V-D synthetic periodic patterns.
"""

from repro.datasets.conceptnet import (
    ConceptNetGenerator,
    SparseSnapshot,
    conceptnet_series,
)
from repro.datasets.noaa import DEFAULT_MEASUREMENTS, NOAAGenerator, noaa_series
from repro.datasets.osm import OSMGenerator, osm_series
from repro.datasets.panorama import PanoramaGenerator, panorama_series
from repro.datasets.periodic import (
    paper_n2_series,
    paper_n3_series,
    periodic_series,
)

__all__ = [
    "ConceptNetGenerator",
    "DEFAULT_MEASUREMENTS",
    "NOAAGenerator",
    "OSMGenerator",
    "PanoramaGenerator",
    "SparseSnapshot",
    "conceptnet_series",
    "noaa_series",
    "osm_series",
    "panorama_series",
    "paper_n2_series",
    "paper_n3_series",
    "periodic_series",
]
