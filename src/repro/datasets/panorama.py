"""Synthetic Switch Panorama webcam frames (Section V's fourth data set).

The paper's data: "a dense, periodic data set ... taken from the Switch
Panorama archive.  We used every 80th view taken from Zurich's
observatory for one week" — and Section V-D: "the Switch dataset ...
exhibits some interesting periodicity as adjacent versions (video
frames) are very different, but the same scene does occasionally
re-occur.  Here, our algorithm detects this recurring pattern in the
data and computes complex deltas between non-consecutive versions."

The generator models a fixed scene under a diurnal cycle: a static
cityscape layer modulated by a brightness curve with period ``period``
frames, plus small per-frame atmospheric noise.  Frames one period apart
are near-identical while adjacent frames differ strongly — the regime in
which the optimal materialization algorithm beats the linear chain
(the 9.7 MB vs 15 MB result this library reproduces in
``benchmarks/bench_mat_panorama.py``).
"""

from __future__ import annotations

import numpy as np


class PanoramaGenerator:
    """Day/night periodic webcam frame generator."""

    def __init__(self, shape: tuple[int, int] = (96, 96), *,
                 period: int = 8, seed: int = 2011_02_14,
                 noise_scale: float = 1.0):
        self.shape = shape
        self.period = period
        self.noise_scale = noise_scale
        self.rng = np.random.default_rng(seed)
        rows, cols = shape
        # The static scene: skyline blocks over a sky gradient.
        scene = np.tile(np.linspace(180, 60, rows)[:, None], (1, cols))
        for _ in range(14):
            top = int(self.rng.integers(rows // 3, rows))
            left = int(self.rng.integers(0, cols - 6))
            width = int(self.rng.integers(4, 14))
            shade = float(self.rng.integers(20, 90))
            scene[top:, left:left + width] = shade
        self._scene = scene

    def frames(self, count: int):
        """Yield ``count`` frames cycling through the diurnal phases."""
        for index in range(count):
            phase = 2 * np.pi * (index % self.period) / self.period
            # Strong brightness swing: adjacent frames differ a lot,
            # same-phase frames nearly repeat.
            brightness = 0.25 + 0.75 * (0.5 + 0.5 * np.cos(phase))
            frame = self._scene * brightness
            frame += self.rng.normal(0, self.noise_scale, self.shape)
            yield np.clip(frame, 0, 255).astype(np.uint8)


def panorama_series(count: int = 32, shape: tuple[int, int] = (96, 96), *,
                    period: int = 8,
                    seed: int = 2011_02_14) -> list[np.ndarray]:
    """A week of observatory views, scaled (paper: 2,003 views)."""
    generator = PanoramaGenerator(shape, period=period, seed=seed)
    return list(generator.frames(count))
