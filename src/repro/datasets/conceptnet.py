"""Synthetic ConceptNet-style sparse snapshots (Section V's second set).

The paper's data: "a highly sparse square matrix storing degrees of
relationships between various 'concepts' ... weekly snapshots from 2008.
Each version is about 1,000,000 by 1,000,000 large with around 430,000
data points (represented as 32-bit integers)."

Scaled substitution (documented in DESIGN.md): the generator produces an
``n x n`` grid (default 1024) with a configurable nonzero budget, a
power-law degree distribution (a few hub concepts carry most relations,
as in the real semantic network), and weekly *churn*: each snapshot adds
a few new relations, strengthens some existing ones, and drops a few.
Sparse-delta behaviour — the property Table V's CNet rows exercise —
depends only on the nonzero count and the churn rate, both of which are
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SparseSnapshot:
    """One weekly snapshot: COO coordinates plus int32 weights."""

    size: int
    coords: np.ndarray  # (nnz, 2) int64
    values: np.ndarray  # (nnz,) int32

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_dense(self) -> np.ndarray:
        """Materialize (only sensible at test scale)."""
        canvas = np.zeros((self.size, self.size), dtype=np.int32)
        canvas[self.coords[:, 0], self.coords[:, 1]] = self.values
        return canvas


class ConceptNetGenerator:
    """Power-law sparse matrix with weekly churn."""

    def __init__(self, size: int = 1024, nnz: int = 4000, *,
                 churn_fraction: float = 0.02, seed: int = 2008):
        if nnz > size * size // 4:
            raise ValueError("nonzero budget too dense for the grid")
        self.size = size
        self.nnz = nnz
        self.churn_fraction = churn_fraction
        self.rng = np.random.default_rng(seed)
        self._entries: dict[tuple[int, int], int] = {}
        self._populate()

    # ------------------------------------------------------------------
    def _power_law_nodes(self, count: int) -> np.ndarray:
        """Node ids with a Zipf-ish hub structure."""
        raw = self.rng.zipf(1.8, size=count)
        return np.minimum(raw - 1, self.size - 1).astype(np.int64)

    def _populate(self) -> None:
        while len(self._entries) < self.nnz:
            missing = self.nnz - len(self._entries)
            rows = self._power_law_nodes(missing * 2)
            cols = self.rng.integers(0, self.size, size=missing * 2)
            weights = self.rng.integers(1, 50, size=missing * 2)
            for row, col, weight in zip(rows, cols, weights):
                if len(self._entries) >= self.nnz:
                    break
                self._entries.setdefault((int(row), int(col)), int(weight))

    def _snapshot(self) -> SparseSnapshot:
        items = sorted(self._entries.items())
        coords = np.array([pair for pair, _ in items], dtype=np.int64)
        values = np.array([weight for _, weight in items], dtype=np.int32)
        return SparseSnapshot(size=self.size, coords=coords, values=values)

    def _churn(self) -> None:
        """One week of graph evolution: inserts, updates, deletes."""
        changes = max(1, int(len(self._entries) * self.churn_fraction))
        keys = list(self._entries)
        # Strengthen existing relations.
        for index in self.rng.choice(len(keys), size=changes):
            self._entries[keys[int(index)]] += int(self.rng.integers(1, 5))
        # Forget a few.
        for index in self.rng.choice(len(keys), size=max(1, changes // 2),
                                     replace=False):
            self._entries.pop(keys[int(index)], None)
        # Learn new relations.
        rows = self._power_law_nodes(changes)
        cols = self.rng.integers(0, self.size, size=changes)
        weights = self.rng.integers(1, 50, size=changes)
        for row, col, weight in zip(rows, cols, weights):
            self._entries[(int(row), int(col))] = int(weight)

    # ------------------------------------------------------------------
    def snapshots(self, count: int):
        """Yield ``count`` weekly snapshots."""
        for week in range(count):
            if week:
                self._churn()
            yield self._snapshot()


def conceptnet_series(count: int, size: int = 1024, nnz: int = 4000, *,
                      seed: int = 2008) -> list[SparseSnapshot]:
    """The 2008 weekly snapshot series, scaled."""
    generator = ConceptNetGenerator(size=size, nnz=nnz, seed=seed)
    return list(generator.snapshots(count))
