"""The paper's synthetic periodic data sets (Section V-D).

"These data sets have identical arrays that re-occur every n versions.
E.g., for n = 2, there are three arrays that occur in the pattern
A1, A2, A3, A1, A2, A3 ... selected so that each of the n arrays doesn't
difference well against the other n - 1 arrays.  Here, we had 40 arrays,
each 8 MB (total size 320 MB with linear deltas); the optimal algorithm
for n = 2 used 17 MB and for n = 3 used 21 MB, finding the correct
encoding in both cases."

(Note the paper's wording: its "n = 2" pattern cycles through *three*
distinct arrays; we follow that reading by exposing ``distinct`` as the
number of distinct patterns directly, with helpers matching the paper's
two configurations.)

Distinct patterns are independent uniform random arrays — maximally
incompressible against each other — and recurrences are exact, so the
optimal layout stores each distinct pattern once and every recurrence as
a near-zero delta, while a linear chain pays a full-entropy delta at
every step.
"""

from __future__ import annotations

import numpy as np


def periodic_series(total: int, distinct: int,
                    shape: tuple[int, int] = (64, 64), *,
                    dtype=np.int32, seed: int = 40,
                    noise_cells: int = 0) -> list[np.ndarray]:
    """``total`` versions cycling through ``distinct`` random patterns.

    ``noise_cells`` > 0 perturbs that many cells per recurrence, turning
    exact recurrences into near-recurrences (used in ablations).
    """
    if distinct < 1:
        raise ValueError("need at least one distinct pattern")
    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    # Full-range uniform values: the zigzag codes of a cross-pattern
    # delta need *more* bits than the cells themselves, so distinct
    # patterns "don't difference well against the other n-1 arrays" —
    # delta-encoding across patterns costs strictly more than
    # materializing, exactly the paper's construction.
    patterns = [
        rng.integers(info.min, info.max, size=shape,
                     endpoint=True, dtype=dtype)
        for _ in range(distinct)
    ]
    versions = []
    for index in range(total):
        frame = patterns[index % distinct].copy()
        if noise_cells:
            flat = frame.ravel()
            cells = rng.choice(flat.size, size=noise_cells, replace=False)
            flat[cells] += rng.integers(1, 4, size=noise_cells) \
                .astype(dtype)
        versions.append(frame)
    return versions


def paper_n2_series(total: int = 40,
                    shape: tuple[int, int] = (64, 64)) -> list[np.ndarray]:
    """The paper's "n = 2" configuration: three recurring arrays."""
    return periodic_series(total, distinct=3, shape=shape, seed=2)


def paper_n3_series(total: int = 40,
                    shape: tuple[int, int] = (64, 64)) -> list[np.ndarray]:
    """The paper's "n = 3" configuration: four recurring arrays."""
    return periodic_series(total, distinct=4, shape=shape, seed=3)
