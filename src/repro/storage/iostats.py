"""Byte-, chunk- and handle-level I/O accounting.

Section IV-D argues that "because chunks read from disk in SciDB are
relatively large (i.e., several megabytes), disk seeks are amortized so
that we can count the number of chunks accessed as a proxy for total I/O
cost".  The evaluation tables report *Bytes Read* alongside wall-clock
time.  Every read and write the chunk store performs is recorded here so
benchmarks can report the same columns as the paper.

Beyond the paper's counters, :class:`IOStats` tracks ``file_opens`` —
how many *distinct objects* the store accessed (logical opens) — which
is what the batched chain read
(:meth:`~repro.storage.chunkstore.ChunkStore.read_chunks`) improves: a
co-located chain of *k* payloads is one object access, not *k* — and
the chunk-cache hit/miss counters, so cache effectiveness shows up in
the same report as the I/O it avoided.  The counter is deliberately
logical: when the backend's parallel span fan-out shards one object's
reads over several worker handles, that remains *one* open here, so
the chain-depth invariants stay comparable across workers settings.

The object-store backend adds request-level accounting: every ranged
GET it issues is counted in ``ranged_gets``, and every byte the
request-size floor or span coalescing fetched beyond what was asked
for lands in ``bytes_over_fetched`` — so the request-batching
trade-off (fewer round trips, more bytes) is visible in the same
report as the chunk- and handle-level counters it trades against.

The counters are lock-protected: parallel chain reads (the decode
pipeline's per-chunk fan-out) and parallel chunk encodes (the encode
pipeline's write-side fan-out) hammer one shared instance from many
threads, and benchmark invariants like "file opens stay constant in
chain depth" or "one encode task per chunk" only hold if no increment
is ever lost.  The write side is covered by four counters:
``encode_tasks`` (delta+compress units executed by the encode stage),
``chunks_written`` and ``bytes_written`` (placements that follow), and
``concurrent_placements`` (placements dispatched through the commit
stage's concurrent fan instead of the serial loop).

The single-pass encode planner adds three more write-side counters:
``encode_plans`` (chunk encodes that went through
:func:`~repro.delta.auto.plan_encoding` instead of the exhaustive
two-pass :func:`~repro.delta.auto.choose_encoding`),
``codec_encodes_avoided`` (representations the planner sized exactly
from the shared code plan but never encoded — losing delta candidates,
plus the materialized payload whenever the cost model proves a delta
wins under the identity compressor), and ``planner_bytes_saved`` (the
total size of those never-produced payloads).  ``encode_rebases``
counts chunk encodes planned by delta-of-delta re-base — the insert
diffed against (root, accumulator) chain state instead of a
reconstructed parent canvas.  The planner's and re-base's shared
contract is that they change no stored byte, so these counters are the
only place their work is visible outside wall-clock time.

The fused read path is covered by three counters: ``chains_fused``
(chunk reconstructions that folded their whole delta chain into one
accumulator and applied it to the root once), ``fused_levels`` (delta
levels those folds absorbed — the full-array applies the fusion
avoided), and ``scatter_levels`` (the subset of those levels composed
at O(nnz) by sparse/hybrid scatter instead of a dense pass).  The scan
bench reports them next to MB/s so the fused path's coverage is
visible, and the equivalence oracle asserts they are exactly zero when
the stepwise path must run.

The cluster coordinator adds replication accounting on its own stats
instance: ``replica_writes`` counts redundant version copies landed on
non-primary replicas, ``failovers`` counts reads that abandoned a dead
or failing replica for the next live one, and ``migrated_chunks``
counts chunk placements performed by ``rebalance`` while resharding
the cluster onto a new node count.  The chaos suite asserts *exact*
values for all three, so they share the lock discipline of the
byte-level counters.

Anti-entropy repair adds three more cluster counters: ``repairs``
(repair passes that actually resynced at least one version onto a
stale or empty replica), ``repaired_versions`` (versions replayed
through the transactional write path during those passes), and
``repair_bytes`` (logical payload bytes those replays carried — the
numerator of the stale-replica resync MB/s the cluster bench
reports).  Repair under chaos retries until the replica digests
converge, so the counters accumulate across attempts; the fault-free
tests assert exact values.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields


@dataclass
class IOStats:
    """Mutable I/O counters attached to a chunk store."""

    bytes_read: int = 0
    bytes_written: int = 0
    chunks_read: int = 0
    chunks_written: int = 0
    encode_tasks: int = 0
    encode_plans: int = 0
    encode_rebases: int = 0
    codec_encodes_avoided: int = 0
    planner_bytes_saved: int = 0
    concurrent_placements: int = 0
    file_opens: int = 0
    ranged_gets: int = 0
    bytes_over_fetched: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    chains_fused: int = 0
    fused_levels: int = 0
    scatter_levels: int = 0
    failovers: int = 0
    replica_writes: int = 0
    migrated_chunks: int = 0
    repairs: int = 0
    repaired_versions: int = 0
    repair_bytes: int = 0

    def __post_init__(self):
        # Not a dataclass field, so reset/snapshot/delta_since (which
        # iterate ``fields``) keep seeing counters only.
        self._lock = threading.Lock()

    def record_read(self, nbytes: int) -> None:
        """Account one chunk read of ``nbytes``."""
        with self._lock:
            self.bytes_read += nbytes
            self.chunks_read += 1

    def record_write(self, nbytes: int) -> None:
        """Account one chunk write of ``nbytes``."""
        with self._lock:
            self.bytes_written += nbytes
            self.chunks_written += 1

    def record_encode_task(self) -> None:
        """Account one chunk encode task (the write pipeline's
        delta+compress unit of work; ``chunks_written``/``bytes_written``
        count the placements that follow).  The encode stage's parallel
        fan-out must report exactly one task per chunk regardless of the
        workers degree, so the counter shares the lock discipline of the
        read-side counters."""
        with self._lock:
            self.encode_tasks += 1

    def record_encode_plan(self, encodes_avoided: int,
                           bytes_saved: int) -> None:
        """Account one chunk encode served by the single-pass planner:
        ``encodes_avoided`` representations were sized exactly from the
        shared code plan but never encoded, and ``bytes_saved`` is the
        total size of those never-produced payloads.  The planner runs
        inside the encode stage's parallel fan-out, so the counter
        shares the lock discipline of ``encode_tasks``."""
        with self._lock:
            self.encode_plans += 1
            self.codec_encodes_avoided += encodes_avoided
            self.planner_bytes_saved += bytes_saved

    def record_encode_rebase(self, chunks: int) -> None:
        """Account one insert whose base came from delta-of-delta
        re-base: ``chunks`` chunk encodes were planned directly from
        (root, accumulator) chain state instead of a reconstructed
        parent canvas.  The re-base contract is that it changes no
        stored byte, so — like the planner's counters — this is the
        only place its work is visible outside wall-clock time."""
        with self._lock:
            self.encode_rebases += chunks

    def record_concurrent_placement(self) -> None:
        """Account one chunk placement dispatched through the commit
        stage's concurrent fan (rather than the serial loop).  The
        counter makes the fan observable — a bench cell claiming
        parallel commit must show it nonzero, and the chaos suite's
        fault-injecting backend must show it zero."""
        with self._lock:
            self.concurrent_placements += 1

    def record_open(self, count: int = 1) -> None:
        """Account ``count`` logical object opens (distinct objects
        accessed; parallel span shards of one object count once)."""
        with self._lock:
            self.file_opens += count

    def record_ranged_gets(self, count: int, over_fetched: int) -> None:
        """Account ``count`` ranged-GET requests that together fetched
        ``over_fetched`` bytes beyond the spans actually asked for (the
        request-size floor and span coalescing trade bytes for round
        trips; both sides of that trade are recorded)."""
        with self._lock:
            self.ranged_gets += count
            self.bytes_over_fetched += over_fetched

    def record_chain_fused(self, levels: int, scatter_levels: int) -> None:
        """Account one chunk reconstruction served by the fused read
        path: ``levels`` delta levels folded into one accumulator and
        applied to the root in a single pass (instead of ``levels``
        full-array applies), of which ``scatter_levels`` composed at
        O(nnz) via sparse/hybrid scatter instead of a dense pass.  The
        equivalence oracle asserts the counter is zero whenever the
        stepwise path must run (prefetch admission, non-composable
        codecs, fusion off)."""
        with self._lock:
            self.chains_fused += 1
            self.fused_levels += levels
            self.scatter_levels += scatter_levels

    def record_cache_hit(self) -> None:
        """Account one chunk-cache hit (a read the cache absorbed)."""
        with self._lock:
            self.cache_hits += 1

    def record_failover(self) -> None:
        """Account one read failover: a replica that was marked dead or
        raised was abandoned and the next replica in line was tried."""
        with self._lock:
            self.failovers += 1

    def record_replica_writes(self, count: int) -> None:
        """Account ``count`` redundant version copies landed on
        non-primary replicas (one per (version, band, replica>0) that a
        successful cluster write fanned to)."""
        with self._lock:
            self.replica_writes += count

    def record_migrated_chunks(self, count: int) -> None:
        """Account ``count`` chunk placements performed while resharding
        the cluster onto a new node count (``rebalance``)."""
        with self._lock:
            self.migrated_chunks += count

    def record_repair(self, versions: int, nbytes: int) -> None:
        """Account one anti-entropy repair pass that replayed
        ``versions`` versions carrying ``nbytes`` logical payload bytes
        onto a stale or empty replica.  Repair under fault injection
        retries until the digests converge, so increments accumulate
        across attempts; only passes that resynced at least one version
        are recorded."""
        with self._lock:
            self.repairs += 1
            self.repaired_versions += versions
            self.repair_bytes += nbytes

    def record_cache_miss(self) -> None:
        """Account one chunk-cache miss."""
        with self._lock:
            self.cache_misses += 1

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            for field in fields(self):
                setattr(self, field.name, 0)

    def snapshot(self) -> "IOStats":
        """A consistent copy of the current counters."""
        with self._lock:
            return IOStats(**{field.name: getattr(self, field.name)
                              for field in fields(self)})

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counter increments since an earlier snapshot."""
        return IOStats(**{
            field.name: getattr(self, field.name)
            - getattr(earlier, field.name)
            for field in fields(self)})

    @contextmanager
    def measure(self):
        """Context manager yielding the I/O performed inside the block.

        >>> stats = IOStats()
        >>> with stats.measure() as window:
        ...     stats.record_read(100)
        >>> window.bytes_read
        100
        """
        before = self.snapshot()
        window = IOStats()
        try:
            yield window
        finally:
            delta = self.delta_since(before)
            for field in fields(delta):
                setattr(window, field.name, getattr(delta, field.name))
