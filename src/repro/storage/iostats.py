"""Byte- and chunk-level I/O accounting.

Section IV-D argues that "because chunks read from disk in SciDB are
relatively large (i.e., several megabytes), disk seeks are amortized so
that we can count the number of chunks accessed as a proxy for total I/O
cost".  The evaluation tables report *Bytes Read* alongside wall-clock
time.  Every read and write the chunk store performs is recorded here so
benchmarks can report the same columns as the paper.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable I/O counters attached to a chunk store."""

    bytes_read: int = 0
    bytes_written: int = 0
    chunks_read: int = 0
    chunks_written: int = 0

    def record_read(self, nbytes: int) -> None:
        """Account one chunk read of ``nbytes``."""
        self.bytes_read += nbytes
        self.chunks_read += 1

    def record_write(self, nbytes: int) -> None:
        """Account one chunk write of ``nbytes``."""
        self.bytes_written += nbytes
        self.chunks_written += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.chunks_read = 0
        self.chunks_written = 0

    def snapshot(self) -> "IOStats":
        """An immutable copy of the current counters."""
        return IOStats(bytes_read=self.bytes_read,
                       bytes_written=self.bytes_written,
                       chunks_read=self.chunks_read,
                       chunks_written=self.chunks_written)

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counter increments since an earlier snapshot."""
        return IOStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            chunks_read=self.chunks_read - earlier.chunks_read,
            chunks_written=self.chunks_written - earlier.chunks_written,
        )

    @contextmanager
    def measure(self):
        """Context manager yielding the I/O performed inside the block.

        >>> stats = IOStats()
        >>> with stats.measure() as window:
        ...     stats.record_read(100)
        >>> window.bytes_read
        100
        """
        before = self.snapshot()
        window = IOStats()
        try:
            yield window
        finally:
            delta = self.delta_since(before)
            window.bytes_read = delta.bytes_read
            window.bytes_written = delta.bytes_written
            window.chunks_read = delta.chunks_read
            window.chunks_written = delta.chunks_written
