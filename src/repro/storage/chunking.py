"""Fixed-stride chunking of array versions (Section III-B.1).

"Recall that arrays are 'chunked' into fixed sized sub-arrays.  The size
of an uncompressed chunk (in bytes) is defined by a compile-time
parameter in the storage system; by default we use 10 Mbyte chunks.  The
storage manager computes the number of cells that can fit into a single
chunk, and divides the dimensions evenly amongst chunks."

The paper's worked example: a 2-D array with 8-byte cells and 1 MB chunks
stores 128 Kcells per chunk, hence a stride of ceil(sqrt(128K)) = 358
cells per side, and each chunk lives in its own file named by its cell
range (``chunk-0-0-357-357.dat`` ...).  "Every version of a given array
is chunked identically", and "since chunks have a regular structure,
there is a straight-forward mapping of chunk locations to disk
containers, and no indexing is required" — :meth:`ChunkGrid.chunk_for_cell`
is that closed-form mapping.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionError, StorageError

#: The paper's default chunk byte budget (Section III-B.1).
DEFAULT_CHUNK_BYTES = 10 * 2 ** 20


def stride_for(chunk_bytes: int, cell_size: int, ndim: int) -> int:
    """Cells per side of a chunk.

    The largest stride whose chunk still fits the byte budget, i.e.
    ``floor(cells ** (1/ndim))``.  (The paper's worked example quotes 358
    for 1 MB / 8 B chunks because it treats 128 kcells as decimal; with
    binary kcells the same formula gives 362.)

    >>> stride_for(2 ** 20, 8, 2)
    362
    """
    if chunk_bytes < cell_size:
        raise StorageError(
            f"chunk budget {chunk_bytes} B smaller than one cell "
            f"({cell_size} B)")
    cells = chunk_bytes // cell_size
    stride = max(1, int(cells ** (1.0 / ndim)))
    # Floating point roots can land one off; nudge to the exact floor.
    while (stride + 1) ** ndim <= cells:
        stride += 1
    while stride > 1 and stride ** ndim > cells:
        stride -= 1
    return stride


@dataclass(frozen=True)
class ChunkRef:
    """One chunk of the grid: its index vector and zero-based cell range.

    ``lo`` and ``hi`` are inclusive cell bounds, mirroring the file
    naming scheme of Section III-B.1.
    """

    index: tuple[int, ...]
    lo: tuple[int, ...]
    hi: tuple[int, ...]

    @property
    def name(self) -> str:
        """The paper's file name: ``chunk-<lo...>-<hi...>.dat``."""
        parts = [str(c) for c in self.lo] + [str(c) for c in self.hi]
        return "chunk-" + "-".join(parts) + ".dat"

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def cell_count(self) -> int:
        return math.prod(self.shape)

    def slices(self) -> tuple[slice, ...]:
        """Numpy basic-indexing slices selecting this chunk's cells."""
        return tuple(np.s_[l:h + 1] for l, h in zip(self.lo, self.hi))


class ChunkGrid:
    """The regular chunk decomposition shared by every version of an array.

    By default the byte budget is divided evenly amongst dimensions (the
    paper's scheme).  ``chunk_shape`` overrides the per-dimension strides
    explicitly — the "more flexible chunking schemes" the paper notes
    SciDB was exploring, useful when access patterns favour one
    dimension (e.g. full-row reads want wide, flat chunks).
    """

    def __init__(self, shape: tuple[int, ...], cell_size: int,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 chunk_shape: tuple[int, ...] | None = None):
        if not shape:
            raise DimensionError("cannot chunk a zero-dimensional array")
        self.shape = tuple(int(extent) for extent in shape)
        self.cell_size = int(cell_size)
        self.chunk_bytes = int(chunk_bytes)
        if chunk_shape is None:
            stride = stride_for(self.chunk_bytes, self.cell_size,
                                len(self.shape))
            self.strides = tuple(stride for _ in self.shape)
        else:
            if len(chunk_shape) != len(self.shape):
                raise DimensionError(
                    f"chunk_shape has {len(chunk_shape)} dims; the array "
                    f"has {len(self.shape)}")
            if any(extent < 1 for extent in chunk_shape):
                raise DimensionError("chunk_shape extents must be >= 1")
            self.strides = tuple(int(extent) for extent in chunk_shape)
        self.counts = tuple(
            (extent + stride - 1) // stride
            for extent, stride in zip(self.shape, self.strides))

    @property
    def stride(self) -> int:
        """The uniform stride (defined only for even grids)."""
        first = self.strides[0]
        if any(stride != first for stride in self.strides):
            raise DimensionError(
                f"grid has per-dimension strides {self.strides}")
        return first

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def chunk_count(self) -> int:
        return math.prod(self.counts)

    def chunk_at(self, index: tuple[int, ...]) -> ChunkRef:
        """The chunk with the given grid index vector."""
        if len(index) != self.ndim:
            raise DimensionError(
                f"chunk index needs {self.ndim} components, got {len(index)}")
        for component, count in zip(index, self.counts):
            if not 0 <= component < count:
                raise DimensionError(
                    f"chunk index {index} outside grid {self.counts}")
        lo = tuple(c * stride for c, stride in zip(index, self.strides))
        hi = tuple(min(l + stride - 1, extent - 1)
                   for l, stride, extent in zip(lo, self.strides,
                                                self.shape))
        return ChunkRef(index=tuple(index), lo=lo, hi=hi)

    def chunk_for_cell(self, cell: tuple[int, ...]) -> ChunkRef:
        """Closed-form cell -> chunk mapping (the paper's fX/fY formula)."""
        if len(cell) != self.ndim:
            raise DimensionError(
                f"cell needs {self.ndim} coordinates, got {len(cell)}")
        for coordinate, extent in zip(cell, self.shape):
            if not 0 <= coordinate < extent:
                raise DimensionError(
                    f"cell {cell} outside array shape {self.shape}")
        index = tuple(coordinate // stride
                      for coordinate, stride in zip(cell, self.strides))
        return self.chunk_at(index)

    def chunks(self) -> list[ChunkRef]:
        """All chunks of the grid, in row-major grid order."""
        return [self.chunk_at(index)
                for index in itertools.product(
                    *(range(count) for count in self.counts))]

    def chunks_overlapping(self, lo: tuple[int, ...],
                           hi: tuple[int, ...]) -> list[ChunkRef]:
        """Chunks intersecting the inclusive zero-based region [lo, hi].

        This is the "Chunk Selection" step of the select path (Figure 1):
        a subselect touches only the chunks its hyper-rectangle overlaps.
        """
        if len(lo) != self.ndim or len(hi) != self.ndim:
            raise DimensionError("region corners must match dimensionality")
        for l, h, extent in zip(lo, hi, self.shape):
            if l > h:
                raise DimensionError(f"region corner {lo} exceeds {hi}")
            if l < 0 or h >= extent:
                raise DimensionError(
                    f"region [{lo}, {hi}] outside array shape {self.shape}")
        ranges = [range(l // stride, h // stride + 1)
                  for l, h, stride in zip(lo, hi, self.strides)]
        return [self.chunk_at(index)
                for index in itertools.product(*ranges)]

    def parse_name(self, name: str) -> ChunkRef:
        """Inverse of :attr:`ChunkRef.name`."""
        if not name.startswith("chunk-") or not name.endswith(".dat"):
            raise StorageError(f"not a chunk file name: {name!r}")
        fields = name[len("chunk-"):-len(".dat")].split("-")
        if len(fields) != 2 * self.ndim:
            raise StorageError(
                f"chunk name {name!r} has {len(fields)} fields, "
                f"expected {2 * self.ndim}")
        values = [int(f) for f in fields]
        lo = tuple(values[:self.ndim])
        return self.chunk_for_cell(lo)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ChunkGrid(shape={self.shape}, strides={self.strides}, "
                f"counts={self.counts})")
