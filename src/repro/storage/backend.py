"""Pluggable byte-storage backends for the versioned store.

The paper's prototype (Section II) is a single-node, local-disk system;
everything above this module — chunk placement, delta encoding,
compression, the metadata catalog — is byte-oriented and does not care
*where* the bytes live.  :class:`StorageBackend` is that seam: a small
keyed byte-container contract (write / append / read / read_many /
delete) that lets new substrates (memory, sharded stores, eventually
object storage) drop in without touching encoding semantics.

Four implementations ship today:

* :class:`LocalFileBackend` — the paper's local filesystem, one object
  per file under a root directory; ``durable=True`` (registry name
  ``"durable"``) enables **durability barriers**: :meth:`~StorageBackend.sync`
  fsyncs the named objects, and the write pipeline raises that barrier
  between placement and the catalog transaction — the transactional
  write path's durability leg, group-committed like a database log
  rather than one fsync per write;
* :class:`InMemoryBackend` — a zero-I/O dict-of-buffers backend for
  tests, benchmarks, and all-in-memory cluster simulation;
* :class:`StripedBackend` — spreads objects over N child backends by a
  deterministic hash of the object path, so independent chunk chains
  land on independent substrates and parallel readers do not contend
  on one device;
* :class:`ObjectStoreBackend` — S3 semantics emulated over a local
  object map (no network dependency): objects are immutable blobs,
  ``write`` is a whole-object PUT, ``append`` stages a part of a
  multipart upload that :meth:`~StorageBackend.sync` finalizes into a
  new committed object, and reads are **ranged GETs** coalesced under
  a configurable request-size floor.  The backend advertises
  ``high_latency = True`` so the chunk store batches requests harder
  (per-request cost dominates on an object store, not bytes moved);
* :class:`FaultInjectingBackend` — a transparent wrapper (spec
  ``faulty:<seed>[:<inner>]``) that follows a **deterministic seeded
  schedule** of injected failures: the Nth write raises before any
  byte lands, the Nth append tears (a prefix lands, then the error),
  the Nth durability barrier errors out, and :meth:`mark_dead` turns
  the node into a black hole where every operation raises.  Seed 0 is
  the fault-free mode, which must be indistinguishable from the inner
  backend — the wrapper itself sits in the conformance grid.  This is
  the chaos suite's product-code half: failure scenarios replay
  exactly from a seed instead of depending on timing or monkeypatches.

``read_many`` is the performance-critical batched read: a co-located
delta chain lives at many ``(offset, length)`` spans of *one* object,
and the batched read resolves the whole chain with a single open + seek
pass instead of one ``open()`` per payload.  ``max_workers`` adds a
parallel fan-out path — spans are sharded across a thread pool, each
worker serving its shard from its own handle — for deep chains on
substrates that profit from request concurrency.

Paths are backend-relative strings with ``/`` separators (the same
strings the metadata catalog records in chunk locations), so a store
written by one backend can be described identically by another.
"""

from __future__ import annotations

import os
import random
import shutil
import threading
import zlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.errors import StorageError
from repro.storage.iostats import IOStats

#: Names accepted by :func:`resolve_backend` (and the CLI / bench axis).
#: ``striped:<n>[:<child>]``, ``object[:durable]``, and
#: ``faulty:<seed>[:<inner>]`` specs are also accepted — see
#: :func:`parse_striped_spec` / :func:`parse_object_spec` /
#: :func:`parse_faulty_spec`; :func:`ensure_backend_spec` validates any
#: of them without side effects.
BACKEND_NAMES = ("local", "memory", "durable", "object")

#: A backend spec: a registry name, a ready instance, or a factory
#: called with the store root (so multi-node deployments can build one
#: backend per node).
BackendSpec = "str | StorageBackend | Callable[[Path], StorageBackend] | None"


class StorageBackend(ABC):
    """Abstract keyed byte container beneath the chunk store.

    Implementations must satisfy the shared conformance suite
    (``tests/storage/test_backends.py``): reads of missing objects or
    short spans raise :class:`~repro.core.errors.StorageError`, ``write``
    replaces an object wholesale, ``append`` returns the offset at which
    the payload landed, and ``delete`` removes an object or a whole
    prefix subtree.
    """

    #: Human-readable registry name.
    name: str = "abstract"
    #: True when the backend holds no durable state (nothing on disk).
    ephemeral: bool = False
    #: The backend's latency profile: True when per-request cost
    #: dominates per-byte cost (object stores), so callers should
    #: batch harder — coalesce spans into fewer, larger requests and
    #: fan independent requests concurrently — rather than minimize
    #: bytes moved.  Local and in-memory substrates leave this False.
    high_latency: bool = False
    #: True when the backend's observable behaviour depends on the
    #: *order* its write-side operations arrive in, so callers must not
    #: issue writes to distinct objects concurrently.  All production
    #: backends leave this False — within one version every chunk
    #: targets a distinct object, so the commit stage may fan
    #: placements freely.  The fault-injecting wrapper sets it: its
    #: seeded schedule counts operations, and a concurrent fan would
    #: make which placement draws fault #N racy instead of replayable.
    serial_writes: bool = False

    def bind_stats(self, stats: "IOStats") -> None:
        """Attach an :class:`IOStats` sink for backend-level counters.

        The chunk store binds its own stats instance at construction so
        request-level accounting (ranged GETs, over-fetched bytes) lands
        in the same report as the chunk-level I/O.  The default is a
        no-op — only backends with request-level behaviour worth
        counting (the object store) record anything; composites forward
        the sink to their children.
        """

    @abstractmethod
    def write(self, path: str, payload: bytes) -> None:
        """Create or replace the object at ``path`` with ``payload``."""

    @abstractmethod
    def append(self, path: str, payload: bytes) -> int:
        """Append to the object at ``path``; returns the write offset."""

    @abstractmethod
    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read exactly ``length`` bytes at ``offset`` of ``path``."""

    @abstractmethod
    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]], *,
                  max_workers: int = 0) -> list[bytes]:
        """Read several ``(offset, length)`` spans of one object.

        The whole batch is served from a single open of ``path`` — this
        is what turns a co-located delta chain into one open + seek
        pass.  ``max_workers`` > 1 shards the spans across a thread
        pool (each worker serves its shard from its own handle); the
        serial and parallel paths return identical payloads, in span
        order.
        """

    def sync(self, paths: Sequence[str], *, max_workers: int = 0) -> None:
        """Durability barrier: block until the listed objects survive a
        crash.

        The default is a no-op — the paper's prototype semantics, where
        the page cache owns write-back.  Backends opened in durable
        mode (``LocalFileBackend(durable=True)``) honor the barrier by
        fsyncing every listed object; ``max_workers`` > 1 fans the
        fsyncs across the shared I/O pool, letting the filesystem
        journal batch the commits instead of paying one full flush per
        object.  On the object store the barrier is a **finalize
        barrier**: every listed object's pending multipart upload is
        completed, so the staged parts become committed object bytes.
        The write pipeline calls this once per version, after
        placement and before the catalog transaction, so a catalog row
        can never name bytes the kernel still held in memory (or an
        upload nobody completed).
        """

    @abstractmethod
    def delete(self, prefix: str) -> None:
        """Remove the object at ``prefix`` or every object under it.

        The contract (conformance-tested across every backend,
        striped children included):

        * ``prefix`` naming an **object** removes exactly that object;
        * ``prefix`` naming a **subtree** removes every object whose
          path starts with ``prefix + "/"`` — prefixes match only at
          ``/`` component boundaries, so ``delete("A/ch")`` never
          touches ``A/chunks/...``;
        * deleting a missing prefix is a silent no-op (idempotent);
        * on composites the prefix may cover objects on every child,
          so the delete fans to all of them;
        * on the object store, pending multipart uploads under the
          prefix are aborted as well — a deleted object can never be
          resurrected by a later finalize.
        """

    @abstractmethod
    def total_bytes(self, prefix: str = "") -> int:
        """Stored bytes under ``prefix`` (the whole backend when '')."""

    def close(self) -> None:
        """Release auxiliary resources (idempotent).

        Shuts down the lazily-created span-read and sync executors; a
        later parallel read or durability barrier simply recreates
        them, so a backend instance stays usable after close.  The
        pools are detached under the guard but drained outside it, so
        closing one backend never stalls other backends' I/O on the
        shared creation lock.
        """
        with _span_pool_guard:
            pools = [getattr(self, "_span_executor", None),
                     getattr(self, "_sync_executor", None)]
            self._span_executor = None
            self._sync_executor = None
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True)


_span_pool_guard = threading.Lock()

#: Durability-barrier fan depth.  An fsync wait is I/O, not CPU: the
#: filesystem journal group-commits concurrent flushes, and batching
#: saturates around this queue depth on commodity disks — so the
#: barrier fans to this fixed width (bounded by the object count)
#: whenever concurrency is enabled, independent of the CPU-oriented
#: ``workers`` degree.
SYNC_FAN = 8


def _sync_pool(backend: "StorageBackend") -> ThreadPoolExecutor:
    """One lazily-created durability-barrier executor per backend.

    Separate from the span-read pool so the barrier's I/O depth is
    never silently capped by whatever size the read path happened to
    create its pool with."""
    with _span_pool_guard:
        pool = getattr(backend, "_sync_executor", None)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=SYNC_FAN,
                thread_name_prefix=f"repro-{backend.name}-sync")
            backend._sync_executor = pool
        return pool


def _span_pool(backend: "StorageBackend",
               max_workers: int) -> ThreadPoolExecutor:
    """One lazily-created span-read executor per backend instance.

    Reused across every ``read_many`` call (a fresh pool per read would
    put thread spawn/join on the hot chain-read path).  Sized at first
    use; later calls asking for more workers still run correctly, just
    at the original concurrency.  :meth:`StorageBackend.close` (called
    from the manager's close) shuts the pool down.
    """
    with _span_pool_guard:
        pool = getattr(backend, "_span_executor", None)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix=f"repro-{backend.name}-span")
            backend._span_executor = pool
        return pool


def _fan_out_spans(backend: "StorageBackend",
                   spans: Sequence[tuple[int, int]], max_workers: int,
                   read_shard) -> list[bytes]:
    """Shard ``spans`` into contiguous blocks read concurrently.

    ``read_shard`` maps one block of spans to its payloads; blocks are
    reassembled in span order, so the result is indistinguishable from
    a serial pass.
    """
    shards = min(max_workers, len(spans))
    step = -(-len(spans) // shards)  # ceil division
    blocks = [spans[i:i + step] for i in range(0, len(spans), step)]
    pool = _span_pool(backend, max_workers)
    return [payload
            for block in pool.map(read_shard, blocks)
            for payload in block]


class LocalFileBackend(StorageBackend):
    """Local-filesystem backend: one object per file under ``root``.

    ``durable=True`` arms the :meth:`sync` durability barrier: writes
    and appends stay buffered (the kernel's write-back proceeds in the
    background while later chunks are still being encoded), and the
    barrier fsyncs the touched objects in one group — so the write
    pipeline leaves payload bytes crash-safe *before* the catalog
    transaction that names them commits, at a per-version rather than
    per-chunk flush cost.  The fsync waits release the GIL and can be
    fanned across the shared I/O pool (``max_workers``), which lets
    the filesystem journal batch the commits.
    """

    name = "local"

    def __init__(self, root: str | Path, durable: bool = False):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        if durable:
            self.name = "durable"
        # Files created since the last barrier: their directory entries
        # need an fsync too, but only once — appends to existing files
        # never do (the entry is already durable).
        self._fresh_files: set[Path] = set()
        self._fresh_lock = threading.Lock()

    def _resolve(self, path: str) -> Path:
        return self.root / path

    def _note_fresh(self, target: Path) -> None:
        if self.durable and not target.exists():
            with self._fresh_lock:
                self._fresh_files.add(target)

    def write(self, path: str, payload: bytes) -> None:
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        self._note_fresh(target)
        with open(target, "wb") as handle:
            handle.write(payload)

    def append(self, path: str, payload: bytes) -> int:
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        self._note_fresh(target)
        with open(target, "ab") as handle:
            offset = handle.tell()
            handle.write(payload)
        return offset

    def sync(self, paths: Sequence[str], *, max_workers: int = 0) -> None:
        if not self.durable or not paths:
            return
        distinct = list(dict.fromkeys(paths))

        def fsync_at(target: "Path") -> None:
            fd = os.open(target, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

        def fsync_one(path: str) -> None:
            fsync_at(self._resolve(path))

        if max_workers > 1 and len(distinct) > 1:
            # One task per object at the barrier's own I/O depth: the
            # journal group-commits whatever flushes are in flight, so
            # depth — not CPU parallelism — sets the batching factor.
            pool = _sync_pool(self)
            list(pool.map(fsync_one, distinct))
        else:
            for path in distinct:
                fsync_one(path)
        # A freshly created file is only crash-safe once its directory
        # entry is too: fsync each distinct parent directory up to the
        # backend root, or the barrier could survive the data but lose
        # the name.  Appends to files whose entries an earlier barrier
        # already flushed skip this — only fresh files pay it.
        with self._fresh_lock:
            fresh = [target for path in distinct
                     if (target := self._resolve(path))
                     in self._fresh_files]
            self._fresh_files.difference_update(fresh)
        directories: list[Path] = []
        seen: set[Path] = set()
        for target in fresh:
            parent = target.parent
            while parent not in seen and \
                    parent.is_relative_to(self.root):
                seen.add(parent)
                directories.append(parent)
                parent = parent.parent
        for directory in directories:
            fsync_at(directory)

    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.read_many(path, [(offset, length)])[0]

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]], *,
                  max_workers: int = 0) -> list[bytes]:
        target = self._resolve(path)
        if max_workers > 1 and len(spans) > 1:
            return _fan_out_spans(
                self, list(spans), max_workers,
                lambda shard: self._read_spans(target, shard))
        return self._read_spans(target, spans)

    def _read_spans(self, target: Path,
                    spans: Sequence[tuple[int, int]]) -> list[bytes]:
        try:
            with open(target, "rb") as handle:
                payloads = []
                for offset, length in spans:
                    handle.seek(offset)
                    payload = handle.read(length)
                    if len(payload) != length:
                        raise StorageError(
                            f"chunk file {target} truncated: wanted "
                            f"{length} bytes at {offset}, got "
                            f"{len(payload)}")
                    payloads.append(payload)
        except FileNotFoundError as exc:
            raise StorageError(f"missing chunk file {target}") from exc
        return payloads

    def delete(self, prefix: str) -> None:
        target = self._resolve(prefix)
        if target.is_dir():
            shutil.rmtree(target)
        elif target.exists():
            target.unlink()

    def total_bytes(self, prefix: str = "") -> int:
        base = self._resolve(prefix) if prefix else self.root
        if not base.exists():
            return 0
        if base.is_file():
            return base.stat().st_size
        return sum(f.stat().st_size for f in base.rglob("*") if f.is_file())


class _MemoryObject:
    """One in-memory object: a consolidated head plus appended tail
    segments, merged lazily on first read.

    Appending straight onto one growing ``bytearray`` realloc-copies
    the whole object every few appends once it reaches co-located
    version-chain size (measured ~115us per 168 KB append at 6 MB —
    pure copy churn that lands inside the write pipeline's timed
    path), so appends just collect segments and reads pay one join.
    The lock makes concurrent consolidation safe: parallel chunk
    reconstructions may read one object from several threads.
    """

    __slots__ = ("_head", "_tail", "_length", "_lock")

    def __init__(self, payload: bytes = b""):
        self._head = bytearray(payload)
        self._tail: list[bytes] = []
        self._length = len(payload)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._length

    def append(self, payload: bytes) -> int:
        with self._lock:
            offset = self._length
            self._tail.append(bytes(payload))
            self._length += len(payload)
        return offset

    def consolidated(self) -> bytearray:
        """The whole object as one buffer (joins any pending tail)."""
        with self._lock:
            if self._tail:
                self._head += b"".join(self._tail)
                self._tail.clear()
            return self._head


class InMemoryBackend(StorageBackend):
    """Dict-of-buffers backend: zero disk I/O, per-instance state.

    Used by tests, benchmark baselines ("how fast without the disk?"),
    and cluster simulation, where every node gets its own instance.
    """

    name = "memory"
    ephemeral = True

    def __init__(self):
        self._objects: dict[str, _MemoryObject] = {}

    def write(self, path: str, payload: bytes) -> None:
        self._objects[path] = _MemoryObject(payload)

    def append(self, path: str, payload: bytes) -> int:
        obj = self._objects.setdefault(path, _MemoryObject())
        return obj.append(payload)

    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.read_many(path, [(offset, length)])[0]

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]], *,
                  max_workers: int = 0) -> list[bytes]:
        obj = self._objects.get(path)
        if obj is None:
            raise StorageError(f"missing chunk file {path}")
        buffer = obj.consolidated()
        if max_workers > 1 and len(spans) > 1:
            return _fan_out_spans(
                self, list(spans), max_workers,
                lambda shard: self._read_spans(path, buffer, shard))
        return self._read_spans(path, buffer, spans)

    def _read_spans(self, path: str, buffer: bytearray,
                    spans: Sequence[tuple[int, int]]) -> list[bytes]:
        payloads = []
        for offset, length in spans:
            payload = bytes(buffer[offset:offset + length])
            if len(payload) != length:
                raise StorageError(
                    f"chunk file {path} truncated: wanted {length} "
                    f"bytes at {offset}, got {len(payload)}")
            payloads.append(payload)
        return payloads

    def delete(self, prefix: str) -> None:
        prefix = prefix.rstrip("/")
        subtree = prefix + "/"
        stale = [key for key in self._objects
                 if key == prefix or key.startswith(subtree)]
        for key in stale:
            del self._objects[key]

    def total_bytes(self, prefix: str = "") -> int:
        if not prefix:
            return sum(len(obj) for obj in self._objects.values())
        subtree = prefix.rstrip("/") + "/"
        return sum(len(obj) for key, obj in self._objects.items()
                   if key == prefix or key.startswith(subtree))


class StripedBackend(StorageBackend):
    """Spread objects over N child backends by hashing the object path.

    One array's chunk objects scatter across the children (CRC-32 of
    the path, stable across processes), so independent chains live on
    independent substrates and a parallel decode fans its reads over
    all stripes.  A co-located chain is one object and therefore never
    splits across stripes — the batched chain read keeps its single
    open + seek pass on whichever child owns the object.

    ``delete`` and ``total_bytes`` take *prefixes* that may cover
    objects on every stripe, so they fan to all children.
    """

    name = "striped"

    def __init__(self, children: Sequence[StorageBackend]):
        children = list(children)
        if not children:
            raise StorageError("a striped backend needs at least one child")
        self.children = children
        self.ephemeral = all(child.ephemeral for child in children)
        # One high-latency stripe makes the composite request-cost
        # dominated: the routing hash cannot steer hot objects away
        # from the slow child, so callers must batch as if every
        # request could land there.
        self.high_latency = any(child.high_latency for child in children)
        # One order-sensitive stripe serializes the composite's write
        # path: the routing hash decides which child sees a write, so
        # any concurrent fan could reorder that child's operations.
        self.serial_writes = any(child.serial_writes for child in children)

    def bind_stats(self, stats: "IOStats") -> None:
        for child in self.children:
            child.bind_stats(stats)

    def child_for(self, path: str) -> StorageBackend:
        """The stripe owning ``path`` (deterministic across processes)."""
        digest = zlib.crc32(path.encode("utf-8"))
        return self.children[digest % len(self.children)]

    def write(self, path: str, payload: bytes) -> None:
        self.child_for(path).write(path, payload)

    def append(self, path: str, payload: bytes) -> int:
        return self.child_for(path).append(path, payload)

    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.child_for(path).read(path, offset, length)

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]], *,
                  max_workers: int = 0) -> list[bytes]:
        return self.child_for(path).read_many(path, spans,
                                              max_workers=max_workers)

    def sync(self, paths: Sequence[str], *, max_workers: int = 0) -> None:
        by_child: dict[int, tuple[StorageBackend, list[str]]] = {}
        for path in paths:
            child = self.child_for(path)
            by_child.setdefault(id(child), (child, []))[1].append(path)
        groups = list(by_child.values())

        def sync_child(group: tuple[StorageBackend, list[str]]) -> None:
            child, child_paths = group
            child.sync(child_paths, max_workers=max_workers)

        if max_workers > 1 and len(groups) > 1:
            # The stripes are independent substrates: their group
            # commits overlap, so the barrier costs the slowest child,
            # not the sum of all of them.
            pool = _sync_pool(self)
            list(pool.map(sync_child, groups))
        else:
            for group in groups:
                sync_child(group)

    def delete(self, prefix: str) -> None:
        for child in self.children:
            child.delete(prefix)

    def total_bytes(self, prefix: str = "") -> int:
        return sum(child.total_bytes(prefix) for child in self.children)

    def close(self) -> None:
        for child in self.children:
            child.close()
        super().close()


#: Default request-size floor for the object store's ranged GETs.  An
#: object-store request costs a fixed round trip regardless of size, so
#: a GET shorter than this floor is extended (clamped to the object's
#: end) and near-by spans are coalesced into one request; the bytes
#: fetched beyond what was asked for are counted in
#: ``IOStats.bytes_over_fetched``.
OBJECT_REQUEST_FLOOR = 64 * 1024


class ObjectStoreBackend(StorageBackend):
    """S3-semantics backend emulated over a local object map.

    The emulation keeps the contract of a real object store without any
    network dependency — committed objects live as immutable blobs in a
    local map (one file per object under ``root``, so a store written
    here has the same on-disk layout as :class:`LocalFileBackend`),
    and the three S3-shaped behaviours the storage stack must survive
    are faithful:

    * **Immutable objects, multipart append.**  ``write`` is a
      whole-object PUT (committed immediately).  An object store has no
      append, so ``append`` *stages a part* of a multipart upload and
      returns the offset the part will occupy; :meth:`sync` is the
      finalize barrier that completes the upload, composing the
      committed object and the staged parts into a new committed
      object.  The write pipeline raises that barrier once per version
      — between placement and the catalog transaction — so a catalog
      row never names bytes still sitting in an incomplete upload.
      :meth:`close` *aborts* pending uploads instead (the S3
      abort-multipart analogue): an upload nobody finalized never
      becomes object bytes.
    * **Ranged GETs.**  ``read``/``read_many`` address committed bytes
      through ``(offset, length)`` range requests.  Spans are sorted,
      each GET is extended to at least ``request_floor`` bytes (clamped
      at the object's end), and overlapping or floor-adjacent spans
      coalesce into one request — per-request cost dominates, so the
      batched read trades bytes for round trips.  Every request is
      counted in ``IOStats.ranged_gets`` and every byte fetched beyond
      the requested spans in ``IOStats.bytes_over_fetched`` (via
      :meth:`bind_stats`).
    * **Read-your-writes.**  A GET only addresses committed bytes; a
      read that needs bytes still staged in a pending upload first
      completes that upload.  Reads entirely inside the committed
      region never finalize, so readers of committed versions proceed
      while a writer is still staging the next version's parts.

    ``durable=True`` (spec ``"object:durable"``) additionally fsyncs
    committed objects at the barrier, stacking the local durability leg
    on top of the finalize — useful when the "object store" is a local
    directory standing in for a remote one.
    """

    name = "object"
    high_latency = True

    def __init__(self, root: str | Path, durable: bool = False,
                 request_floor: int = OBJECT_REQUEST_FLOOR):
        if request_floor < 0:
            raise StorageError(
                f"object store request floor must be >= 0, got "
                f"{request_floor}")
        self.durable = durable
        self.request_floor = request_floor
        self.stats: IOStats | None = None
        # The committed object map: one immutable blob per path.  A
        # local file backend already speaks exactly that layout (and
        # owns the durable-mode fsync machinery), so the emulation
        # composes one rather than reimplementing it.
        self._committed = LocalFileBackend(root, durable=durable)
        self.root = self._committed.root
        # path -> staged parts of that object's pending multipart
        # upload, in arrival order.  Guarded by one lock: the write
        # pipeline stages serially, but reads may finalize and the
        # barrier drains, possibly from other threads.
        self._staged: dict[str, list[bytes]] = {}
        self._stage_lock = threading.Lock()

    def bind_stats(self, stats: "IOStats") -> None:
        self.stats = stats

    # -- introspection -------------------------------------------------
    def pending_parts(self, path: str | None = None) -> int:
        """Staged (not yet finalized) parts for ``path``, or in total.

        The finalize-barrier tests observe this: parts accumulate
        between placements and must drop to zero at the barrier.
        """
        with self._stage_lock:
            if path is not None:
                return len(self._staged.get(path, ()))
            return sum(len(parts) for parts in self._staged.values())

    # -- helpers -------------------------------------------------------
    def _committed_size(self, path: str) -> int:
        target = self._committed._resolve(path)
        try:
            return target.stat().st_size
        except FileNotFoundError:
            return -1  # no committed object (≠ empty object)

    def _finalize_locked(self, path: str) -> None:
        """Complete ``path``'s pending upload (caller holds the lock)."""
        parts = self._staged.pop(path, None)
        if parts:
            self._committed.append(path, b"".join(parts))

    def _matches(self, key: str, prefix: str) -> bool:
        prefix = prefix.rstrip("/")
        return key == prefix or key.startswith(prefix + "/")

    # -- writes --------------------------------------------------------
    def write(self, path: str, payload: bytes) -> None:
        with self._stage_lock:
            # A wholesale PUT supersedes any pending upload of the
            # same object.
            self._staged.pop(path, None)
            self._committed.write(path, payload)

    def append(self, path: str, payload: bytes) -> int:
        with self._stage_lock:
            parts = self._staged.setdefault(path, [])
            offset = max(self._committed_size(path), 0) + \
                sum(len(part) for part in parts)
            parts.append(bytes(payload))
        return offset

    def sync(self, paths: Sequence[str], *, max_workers: int = 0) -> None:
        distinct = list(dict.fromkeys(paths))
        # The emulated finalize is a memory-compose + local append, so
        # it runs serially under the staging lock (offset accounting
        # must never race a concurrent append); a remote backend would
        # fan its complete-multipart round trips at ``max_workers``
        # here instead.
        with self._stage_lock:
            for path in distinct:
                self._finalize_locked(path)
        # Durable mode stacks the local fsync barrier on top of the
        # finalize (fanned at ``max_workers``); otherwise the
        # committed map's sync is a no-op.
        self._committed.sync(distinct, max_workers=max_workers)

    # -- reads ---------------------------------------------------------
    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.read_many(path, [(offset, length)])[0]

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]], *,
                  max_workers: int = 0) -> list[bytes]:
        spans = list(spans)
        if not spans:
            return []
        need = max(offset + length for offset, length in spans)
        with self._stage_lock:
            size = self._committed_size(path)
            if need > max(size, 0) and path in self._staged:
                # Read-your-writes: the request reaches into a pending
                # upload, so complete it first — a GET only addresses
                # committed objects.
                self._finalize_locked(path)
                size = self._committed_size(path)
        if size < 0:
            raise StorageError(f"missing chunk file {self.root / path}")
        for offset, length in spans:
            if offset + length > size:
                raise StorageError(
                    f"chunk file {self.root / path} truncated: wanted "
                    f"{length} bytes at {offset}, got "
                    f"{max(0, size - offset)}")
        gets = self._plan_gets(spans, size)
        payloads = self._committed.read_many(path, gets,
                                             max_workers=max_workers)
        buffers = {start: payload
                   for (start, _), payload in zip(gets, payloads)}
        starts = [start for start, _ in gets]
        results = []
        for offset, length in spans:
            # The GET covering this span is the last one starting at or
            # before it (GETs are disjoint and cover every span).
            index = bisect_right(starts, offset) - 1
            start = starts[index]
            results.append(buffers[start][offset - start:
                                          offset - start + length])
        if self.stats is not None:
            fetched = sum(length for _, length in gets)
            wanted = _union_bytes(spans)
            self.stats.record_ranged_gets(len(gets), fetched - wanted)
        return results

    def _plan_gets(self, spans: Sequence[tuple[int, int]],
                   size: int) -> list[tuple[int, int]]:
        """Coalesce requested spans into ranged-GET requests.

        Each GET runs from its first span's offset to at least
        ``request_floor`` bytes further (clamped at the object's end),
        and a span starting inside that reach merges into the GET
        rather than opening a new request — so near-by chain payloads
        cost one round trip, and no request is ever shorter than the
        floor unless the object itself is.
        """
        gets: list[list[int]] = []  # [start, furthest requested byte]
        for offset, length in sorted(set(spans)):
            if gets:
                start, data_end = gets[-1]
                reach = max(data_end, start + self.request_floor)
                if offset <= reach:
                    gets[-1][1] = max(data_end, offset + length)
                    continue
            gets.append([offset, offset + length])
        return [(start, min(max(data_end, start + self.request_floor),
                            size) - start)
                for start, data_end in gets]

    # -- maintenance ---------------------------------------------------
    def delete(self, prefix: str) -> None:
        with self._stage_lock:
            stale = [key for key in self._staged
                     if self._matches(key, prefix)]
            for key in stale:
                del self._staged[key]
            self._committed.delete(prefix)

    def total_bytes(self, prefix: str = "") -> int:
        # A read-only probe: pending parts are *counted* (they are
        # bytes the caller handed the store, exactly as a local
        # backend's buffered append counts), never finalized — an
        # observation must not commit somebody else's in-flight
        # upload.
        with self._stage_lock:
            staged = sum(
                len(part)
                for key, parts in self._staged.items()
                if not prefix or self._matches(key, prefix)
                for part in parts)
            return self._committed.total_bytes(prefix) + staged

    def close(self) -> None:
        with self._stage_lock:
            # Abort, not finalize: parts nobody synced belong to
            # versions that never committed (the catalog transaction
            # follows the barrier), so persisting them would only
            # manufacture debris for the next repack.
            self._staged.clear()
        self._committed.close()
        super().close()


#: Operation kinds the seeded fault schedule can target.  Reads are
#: deliberately absent: a failed read is what replica *failover*
#: recovers from, and the chaos suite injects those by marking whole
#: nodes dead rather than by schedule — a scheduled read fault on an
#: unreplicated store could never be survived, so it would only ever
#: test the error message.
FAULT_KINDS = ("write", "append", "sync")

#: How far into an instance's life the seeded schedule reaches: fault
#: indices are drawn from ``1..FAULT_HORIZON``.  A finite horizon is
#: what makes chaos workloads terminate — a retried operation
#: eventually runs out of scheduled failures — while staying long
#: enough that faults land mid-version, mid-compensation, and
#: mid-repack across the sweep of seeds.
FAULT_HORIZON = 24


def seeded_fault_schedule(seed: int) -> dict[str, frozenset[int]]:
    """The deterministic fault schedule implied by ``seed``.

    Seed 0 is the fault-free mode (an empty schedule for every kind);
    any other seed derives, per operation kind, a small set of 1-based
    operation indices that will fail.  The derivation uses its own
    :class:`random.Random` instance, so the schedule depends only on
    the seed — never on interleaving, global RNG state, or how many
    backends a test built first.
    """
    if seed < 0:
        raise StorageError(
            f"fault-injection seed must be >= 0, got {seed}")
    if seed == 0:
        return {kind: frozenset() for kind in FAULT_KINDS}
    rng = random.Random(seed)
    return {kind: frozenset(rng.sample(range(1, FAULT_HORIZON + 1),
                                       rng.randint(1, 3)))
            for kind in FAULT_KINDS}


class FaultInjectingBackend(StorageBackend):
    """Deterministic fault injection over any inner backend.

    The wrapper forwards every operation to ``inner`` and keeps a
    per-kind operation counter; when a counter hits an index in the
    seeded schedule the operation fails *the way that kind of fault
    fails in the field*:

    * **write** — raises before a single byte reaches the inner
      backend (the object never changes);
    * **append** — *tears*: a deterministic prefix of the payload
      lands, then the error propagates (the debris stays, exactly like
      a crashed process mid-append; the catalog-after-placement
      transaction is what must make it unobservable);
    * **sync** — raises before the inner barrier runs, so nothing the
      barrier would have made durable (or finalized) gets either;
    * **dead node** — :meth:`mark_dead` makes *every* subsequent
      operation raise until :meth:`revive`, which is how the chaos
      suite and the failover bench take a node offline.

    Injected faults are recorded in ``injected`` (``(kind, index)``
    pairs, in firing order) and counted in ``faults_injected`` so the
    chaos suite can do exact accounting.  With ``seed=0`` the schedule
    is empty and the wrapper must be indistinguishable from ``inner``
    — the conformance grid runs that mode to prove the wrapper itself
    honors the full backend contract.

    The counters are lock-protected (parallel encode fan-outs hammer
    one instance from many threads), and the fault decision depends
    only on ``(seed, kind, index)`` — never on thread interleaving —
    so a schedule replays identically across runs and workers degrees
    for any serial-per-backend write path.
    """

    name = "faulty"
    #: The seeded schedule assigns faults to operation *indices*, so
    #: which placement draws fault #N must not depend on a concurrent
    #: fan's thread interleaving — the commit stage keeps this
    #: backend's write path serial.
    serial_writes = True

    def __init__(self, inner: StorageBackend, seed: int = 0,
                 schedule: "dict[str, frozenset[int]] | None" = None):
        self.inner = inner
        self.seed = seed
        self.ephemeral = inner.ephemeral
        self.high_latency = inner.high_latency
        raw = seeded_fault_schedule(seed) if schedule is None else schedule
        unknown = set(raw) - set(FAULT_KINDS)
        if unknown:
            raise StorageError(
                f"fault schedule names unknown operation kinds "
                f"{sorted(unknown)}; expected a subset of {FAULT_KINDS}")
        self.schedule = {kind: frozenset(raw.get(kind, ()))
                         for kind in FAULT_KINDS}
        self.faults_injected = 0
        self.injected: list[tuple[str, int]] = []
        self._op_counts = dict.fromkeys(FAULT_KINDS, 0)
        self._fault_lock = threading.Lock()
        self._dead = False

    # -- fault controls ------------------------------------------------
    @property
    def dead(self) -> bool:
        return self._dead

    def mark_dead(self) -> None:
        """Take the node offline: every operation raises until
        :meth:`revive`."""
        self._dead = True

    def revive(self) -> None:
        self._dead = False

    def _check_alive(self) -> None:
        if self._dead:
            raise StorageError(
                f"injected fault: node is dead ({self.inner.name} "
                "backend unreachable)")

    def _tick(self, kind: str) -> int | None:
        """Count one operation of ``kind``; return its index when the
        schedule says this one fails, else None."""
        self._check_alive()
        with self._fault_lock:
            self._op_counts[kind] += 1
            index = self._op_counts[kind]
            if index in self.schedule[kind]:
                self.faults_injected += 1
                self.injected.append((kind, index))
                return index
        return None

    # -- forwarding with injection ---------------------------------------
    def bind_stats(self, stats: "IOStats") -> None:
        self.inner.bind_stats(stats)

    def write(self, path: str, payload: bytes) -> None:
        index = self._tick("write")
        if index is not None:
            raise StorageError(
                f"injected fault: write #{index} of {path} failed "
                "before any byte landed")
        self.inner.write(path, payload)

    def append(self, path: str, payload: bytes) -> int:
        index = self._tick("append")
        if index is not None:
            # Torn append: a deterministic prefix lands, then the
            # error.  The tear point depends only on (seed, index, the
            # payload length), so a schedule replays byte-identically.
            torn = 0
            if payload:
                torn = random.Random(
                    f"{self.seed}:torn:{index}").randrange(len(payload))
            if torn:
                self.inner.append(path, payload[:torn])
            raise StorageError(
                f"injected fault: append #{index} of {path} torn after "
                f"{torn}/{len(payload)} bytes")
        return self.inner.append(path, payload)

    def sync(self, paths: Sequence[str], *, max_workers: int = 0) -> None:
        index = self._tick("sync")
        if index is not None:
            raise StorageError(
                f"injected fault: sync #{index} failed before the "
                "barrier was raised")
        self.inner.sync(paths, max_workers=max_workers)

    def read(self, path: str, offset: int, length: int) -> bytes:
        self._check_alive()
        return self.inner.read(path, offset, length)

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]], *,
                  max_workers: int = 0) -> list[bytes]:
        self._check_alive()
        return self.inner.read_many(path, spans, max_workers=max_workers)

    def delete(self, prefix: str) -> None:
        self._check_alive()
        self.inner.delete(prefix)

    def total_bytes(self, prefix: str = "") -> int:
        self._check_alive()
        return self.inner.total_bytes(prefix)

    def close(self) -> None:
        # Cleanup must work even on a "dead" node — the process is
        # shutting the handle down, not talking to the substrate.
        self.inner.close()
        super().close()

    def __getattr__(self, name: str):
        # Transparent introspection (e.g. the object store's
        # ``pending_parts``) so a wrapped backend stays observable in
        # tests.  Private attributes stay local: the executor slots of
        # StorageBackend.close must never resolve to the inner's.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.inner, name)


def _union_bytes(spans: Sequence[tuple[int, int]]) -> int:
    """Bytes covered by at least one ``(offset, length)`` span."""
    total = 0
    covered_to = 0
    for offset, length in sorted(spans):
        end = offset + length
        if end > covered_to:
            total += end - max(offset, covered_to)
            covered_to = end
    return total


def parse_striped_spec(spec: str) -> tuple[int, str]:
    """Validate a ``striped:<n>[:<child>]`` spec string.

    Returns ``(stripes, child_name)``; raises :class:`StorageError` on
    malformed specs so callers can validate configuration before any
    side effect (the CLI's validate-before-side-effects rule).
    """
    parts = spec.split(":")
    if parts[0] != "striped" or len(parts) not in (2, 3):
        raise StorageError(
            f"malformed striped backend spec {spec!r}; expected"
            " 'striped:<n>' or 'striped:<n>:<child>'")
    try:
        stripes = int(parts[1])
    except ValueError:
        raise StorageError(
            f"striped backend spec {spec!r} needs an integer stripe"
            " count") from None
    if stripes < 1:
        raise StorageError(
            f"striped backend spec {spec!r} needs at least one stripe")
    child = parts[2] if len(parts) == 3 else "local"
    if child not in BACKEND_NAMES:
        raise StorageError(
            f"striped backend spec {spec!r} names unknown child backend"
            f" {child!r}; expected one of {BACKEND_NAMES}")
    return stripes, child


def parse_object_spec(spec: str) -> bool:
    """Validate an ``object[:durable]`` spec string.

    Returns the durable flag; raises :class:`StorageError` on malformed
    specs so callers can validate configuration before any side effect
    (the same validate-before-side-effects rule as
    :func:`parse_striped_spec`).
    """
    parts = spec.split(":")
    if parts[0] != "object" or len(parts) > 2:
        raise StorageError(
            f"malformed object backend spec {spec!r}; expected"
            " 'object' or 'object:durable'")
    if len(parts) == 1:
        return False
    if parts[1] != "durable":
        raise StorageError(
            f"object backend spec {spec!r} names unknown mode"
            f" {parts[1]!r}; the only mode is 'durable'")
    return True


def parse_faulty_spec(spec: str) -> tuple[int, str]:
    """Validate a ``faulty:<seed>[:<inner>]`` spec string.

    Returns ``(seed, inner_name)``; raises :class:`StorageError` on
    malformed specs so callers can validate configuration before any
    side effect (the same validate-before-side-effects rule as the
    other spec parsers).  Seed 0 is the fault-free conformance mode.
    """
    parts = spec.split(":")
    if parts[0] != "faulty" or len(parts) not in (2, 3):
        raise StorageError(
            f"malformed faulty backend spec {spec!r}; expected"
            " 'faulty:<seed>' or 'faulty:<seed>:<inner>'")
    try:
        seed = int(parts[1])
    except ValueError:
        raise StorageError(
            f"faulty backend spec {spec!r} needs an integer seed") \
            from None
    if seed < 0:
        raise StorageError(
            f"faulty backend spec {spec!r} needs a seed >= 0")
    inner = parts[2] if len(parts) == 3 else "local"
    if inner not in BACKEND_NAMES:
        raise StorageError(
            f"faulty backend spec {spec!r} names unknown inner backend"
            f" {inner!r}; expected one of {BACKEND_NAMES}")
    return seed, inner


def ensure_backend_spec(spec: str) -> str:
    """Validate a string backend spec without building anything.

    Accepts the :data:`BACKEND_NAMES` registry names plus the
    ``striped:<n>[:<child>]``, ``object[:durable]``, and
    ``faulty:<seed>[:<inner>]`` spec forms — exactly what
    :func:`resolve_backend` accepts as strings.  The CLI and the
    test-suite's ``REPRO_BACKEND`` handling both validate through
    here, so a bad flag or a misconfigured CI matrix cell fails loudly
    before any directory or catalog is created.
    """
    if spec in BACKEND_NAMES:
        return spec
    if spec.startswith("striped"):
        parse_striped_spec(spec)
        return spec
    if spec.startswith("object"):
        parse_object_spec(spec)
        return spec
    if spec.startswith("faulty"):
        parse_faulty_spec(spec)
        return spec
    raise StorageError(
        f"unknown storage backend {spec!r}; expected one of "
        f"{BACKEND_NAMES}, 'object[:durable]',"
        " 'striped:<n>[:<child>]', or 'faulty:<seed>[:<inner>]'")


def default_backend_spec() -> str:
    """The spec used when a caller passes ``backend=None``.

    Defers to the ``REPRO_BACKEND`` environment variable — the CI
    matrix runs the whole storage/query/cluster subset over the object
    path this way, mirroring how ``REPRO_WORKERS`` forces the
    parallelism degree — and falls back to the paper's local files.
    Malformed values are rejected loudly: an env cell silently falling
    back to local files would make the object-backend matrix row test
    nothing.
    """
    raw = os.environ.get("REPRO_BACKEND")
    if raw is None or raw == "":
        return "local"
    try:
        return ensure_backend_spec(raw)
    except StorageError as exc:
        raise StorageError(f"REPRO_BACKEND: {exc}") from None


def resolve_backend(spec, root: str | Path) -> StorageBackend:
    """Turn a backend spec into a concrete backend instance.

    ``spec`` may be None (default: the ``REPRO_BACKEND`` environment
    variable, else local files under ``root``), one of
    :data:`BACKEND_NAMES`, an ``object[:durable]`` spec (the S3-style
    emulation rooted at ``root``), a ``striped:<n>[:<child>]`` spec (N
    stripes under ``root/stripe<i>``, or N in-memory stripes), a
    ``faulty:<seed>[:<inner>]`` spec (deterministic fault injection
    over an inner backend rooted at ``root``), a ready
    :class:`StorageBackend`, or a factory callable invoked with
    ``root`` — the factory form is what lets a cluster coordinator
    construct one independent backend per node.
    """
    if spec is None:
        spec = default_backend_spec()
    if spec == "local":
        return LocalFileBackend(root)
    if spec == "durable":
        return LocalFileBackend(root, durable=True)
    if spec == "memory":
        return InMemoryBackend()
    if isinstance(spec, str) and spec.startswith("object"):
        return ObjectStoreBackend(root, durable=parse_object_spec(spec))
    if isinstance(spec, str) and spec.startswith("faulty"):
        seed, inner = parse_faulty_spec(spec)
        return FaultInjectingBackend(resolve_backend(inner, root),
                                     seed=seed)
    if isinstance(spec, str) and spec.startswith("striped"):
        stripes, child = parse_striped_spec(spec)
        if child == "memory":
            return StripedBackend([InMemoryBackend()
                                   for _ in range(stripes)])
        if child == "object":
            return StripedBackend(
                [ObjectStoreBackend(Path(root) / f"stripe{i}")
                 for i in range(stripes)])
        return StripedBackend(
            [LocalFileBackend(Path(root) / f"stripe{i}",
                              durable=child == "durable")
             for i in range(stripes)])
    if isinstance(spec, StorageBackend):
        return spec
    if callable(spec):
        backend = spec(Path(root))
        if not isinstance(backend, StorageBackend):
            raise StorageError(
                f"backend factory {spec!r} returned {type(backend).__name__},"
                " not a StorageBackend")
        return backend
    raise StorageError(
        f"unknown storage backend {spec!r}; expected one of "
        f"{BACKEND_NAMES}, 'object[:durable]', 'striped:<n>[:<child>]',"
        " 'faulty:<seed>[:<inner>]', a StorageBackend, or a factory"
        " callable")
