"""Pluggable byte-storage backends for the versioned store.

The paper's prototype (Section II) is a single-node, local-disk system;
everything above this module — chunk placement, delta encoding,
compression, the metadata catalog — is byte-oriented and does not care
*where* the bytes live.  :class:`StorageBackend` is that seam: a small
keyed byte-container contract (write / append / read / read_many /
delete) that lets new substrates (memory, sharded stores, eventually
object storage) drop in without touching encoding semantics.

Two implementations ship today:

* :class:`LocalFileBackend` — the paper's local filesystem, one object
  per file under a root directory;
* :class:`InMemoryBackend` — a zero-I/O dict-of-buffers backend for
  tests, benchmarks, and all-in-memory cluster simulation.

``read_many`` is the performance-critical addition: a co-located delta
chain lives at many ``(offset, length)`` spans of *one* object, and the
batched read resolves the whole chain with a single open + seek pass
instead of one ``open()`` per payload.

Paths are backend-relative strings with ``/`` separators (the same
strings the metadata catalog records in chunk locations), so a store
written by one backend can be described identically by another.
"""

from __future__ import annotations

import shutil
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.core.errors import StorageError

#: Names accepted by :func:`resolve_backend` (and the CLI / bench axis).
BACKEND_NAMES = ("local", "memory")

#: A backend spec: a registry name, a ready instance, or a factory
#: called with the store root (so multi-node deployments can build one
#: backend per node).
BackendSpec = "str | StorageBackend | Callable[[Path], StorageBackend] | None"


class StorageBackend(ABC):
    """Abstract keyed byte container beneath the chunk store.

    Implementations must satisfy the shared conformance suite
    (``tests/storage/test_backends.py``): reads of missing objects or
    short spans raise :class:`~repro.core.errors.StorageError`, ``write``
    replaces an object wholesale, ``append`` returns the offset at which
    the payload landed, and ``delete`` removes an object or a whole
    prefix subtree.
    """

    #: Human-readable registry name.
    name: str = "abstract"
    #: True when the backend holds no durable state (nothing on disk).
    ephemeral: bool = False

    @abstractmethod
    def write(self, path: str, payload: bytes) -> None:
        """Create or replace the object at ``path`` with ``payload``."""

    @abstractmethod
    def append(self, path: str, payload: bytes) -> int:
        """Append to the object at ``path``; returns the write offset."""

    @abstractmethod
    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read exactly ``length`` bytes at ``offset`` of ``path``."""

    @abstractmethod
    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]]) -> list[bytes]:
        """Read several ``(offset, length)`` spans of one object.

        The whole batch is served from a single open of ``path`` — this
        is what turns a co-located delta chain into one open + seek
        pass.  Results are returned in span order.
        """

    @abstractmethod
    def delete(self, prefix: str) -> None:
        """Remove the object at ``prefix`` or every object under it."""

    @abstractmethod
    def total_bytes(self, prefix: str = "") -> int:
        """Stored bytes under ``prefix`` (the whole backend when '')."""


class LocalFileBackend(StorageBackend):
    """Local-filesystem backend: one object per file under ``root``."""

    name = "local"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _resolve(self, path: str) -> Path:
        return self.root / path

    def write(self, path: str, payload: bytes) -> None:
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "wb") as handle:
            handle.write(payload)

    def append(self, path: str, payload: bytes) -> int:
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "ab") as handle:
            offset = handle.tell()
            handle.write(payload)
        return offset

    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.read_many(path, [(offset, length)])[0]

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]]) -> list[bytes]:
        target = self._resolve(path)
        try:
            with open(target, "rb") as handle:
                payloads = []
                for offset, length in spans:
                    handle.seek(offset)
                    payload = handle.read(length)
                    if len(payload) != length:
                        raise StorageError(
                            f"chunk file {target} truncated: wanted "
                            f"{length} bytes at {offset}, got "
                            f"{len(payload)}")
                    payloads.append(payload)
        except FileNotFoundError as exc:
            raise StorageError(f"missing chunk file {target}") from exc
        return payloads

    def delete(self, prefix: str) -> None:
        target = self._resolve(prefix)
        if target.is_dir():
            shutil.rmtree(target)
        elif target.exists():
            target.unlink()

    def total_bytes(self, prefix: str = "") -> int:
        base = self._resolve(prefix) if prefix else self.root
        if not base.exists():
            return 0
        if base.is_file():
            return base.stat().st_size
        return sum(f.stat().st_size for f in base.rglob("*") if f.is_file())


class InMemoryBackend(StorageBackend):
    """Dict-of-buffers backend: zero disk I/O, per-instance state.

    Used by tests, benchmark baselines ("how fast without the disk?"),
    and cluster simulation, where every node gets its own instance.
    """

    name = "memory"
    ephemeral = True

    def __init__(self):
        self._objects: dict[str, bytearray] = {}

    def write(self, path: str, payload: bytes) -> None:
        self._objects[path] = bytearray(payload)

    def append(self, path: str, payload: bytes) -> int:
        buffer = self._objects.setdefault(path, bytearray())
        offset = len(buffer)
        buffer += payload
        return offset

    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.read_many(path, [(offset, length)])[0]

    def read_many(self, path: str,
                  spans: Sequence[tuple[int, int]]) -> list[bytes]:
        buffer = self._objects.get(path)
        if buffer is None:
            raise StorageError(f"missing chunk file {path}")
        payloads = []
        for offset, length in spans:
            payload = bytes(buffer[offset:offset + length])
            if len(payload) != length:
                raise StorageError(
                    f"chunk file {path} truncated: wanted {length} "
                    f"bytes at {offset}, got {len(payload)}")
            payloads.append(payload)
        return payloads

    def delete(self, prefix: str) -> None:
        subtree = prefix.rstrip("/") + "/"
        stale = [key for key in self._objects
                 if key == prefix or key.startswith(subtree)]
        for key in stale:
            del self._objects[key]

    def total_bytes(self, prefix: str = "") -> int:
        if not prefix:
            return sum(len(buffer) for buffer in self._objects.values())
        subtree = prefix.rstrip("/") + "/"
        return sum(len(buffer) for key, buffer in self._objects.items()
                   if key == prefix or key.startswith(subtree))


def resolve_backend(spec, root: str | Path) -> StorageBackend:
    """Turn a backend spec into a concrete backend instance.

    ``spec`` may be None (default: local files under ``root``), one of
    :data:`BACKEND_NAMES`, a ready :class:`StorageBackend`, or a factory
    callable invoked with ``root`` — the factory form is what lets a
    cluster coordinator construct one independent backend per node.
    """
    if spec is None or spec == "local":
        return LocalFileBackend(root)
    if spec == "memory":
        return InMemoryBackend()
    if isinstance(spec, StorageBackend):
        return spec
    if callable(spec):
        backend = spec(Path(root))
        if not isinstance(backend, StorageBackend):
            raise StorageError(
                f"backend factory {spec!r} returned {type(backend).__name__},"
                " not a StorageBackend")
        return backend
    raise StorageError(
        f"unknown storage backend {spec!r}; expected one of "
        f"{BACKEND_NAMES}, a StorageBackend, or a factory callable")
